//! Return-to-sender flow control (paper Section 4.5) plus the reliability
//! extensions the paper's lossless Myrinet let it omit.
//!
//! The sender side is a [`RejectQueue`] (see [`crate::queues`]) driven by
//! [`SenderFlow`]: an outstanding-packet window whose slots now also carry
//! retransmission timers (exponential backoff + jitter) and a bounded retry
//! budget, so loss of a frame *or of its ack* recovers by timeout and a
//! peer that never answers is eventually declared dead. The receiver side
//! is an [`AckTracker`] that batches acknowledgements and prefers
//! piggybacking them on reverse-direction data frames ("FM 1.0 optimizes
//! further by piggybacking acknowledgements on ordinary data packets"),
//! plus a per-source [`SeqWindow`] that suppresses duplicates and releases
//! frames in sequence order.
//!
//! Acks travel as 16-bit **ack words** ([`ack_word`]): the low 10 bits name
//! the sender's reject-queue slot, the high 6 bits echo the slot's reuse
//! *generation* (stamped into the frame header, [`crate::frame::WireFrame::slot_gen`]).
//! The tag closes an ABA hazard that only exists once the network can
//! duplicate and delay: a stale ack for a previous occupant of a recycled
//! slot must not release the packet currently in it. The tag is the slot
//! generation rather than the sequence number on purpose — a slot can sit
//! unacknowledged through long backoff while the link's sequence number
//! advances by hundreds, so a seq-derived tag aliases whenever the delta
//! is a multiple of the tag width (observed as falsely-acked, permanently
//! lost frames under 10% injected faults). A generation tag advances once
//! per reuse of that slot, and each reuse requires a completed ack round
//! trip, so a stale ack (bounded lifetime: late duplicates still in
//! flight) can never see its tag again.
//!
//! Both the real threaded runtime (`fm-core::mem`) and the timed simulator
//! (`fm-testbed`) drive these same state machines; the simulator only adds
//! instruction-cost charges around the calls.

use crate::frame::{PiggyAcks, PIGGY_MAX};
use crate::queues::{RejectQueue, REJECT_SLOT_LIMIT};
use fm_myrinet::NodeId;
use std::collections::{BTreeMap, HashMap};

/// How many accepted-but-unacknowledged frames trigger a standalone ack
/// frame when no reverse traffic is available to piggyback on. One full
/// piggyback area's worth.
pub const ACK_BATCH: usize = PIGGY_MAX;

/// Bits of an ack word naming the reject-queue slot.
pub const ACK_SLOT_BITS: u32 = 10;

/// The generation tag carried in an ack word's high bits: the low 6 bits
/// of the slot's reuse generation ([`crate::frame::WireFrame::slot_gen`]).
#[inline]
pub fn gen_tag(gen: u8) -> u8 {
    gen & 0x3F
}

/// Pack a reject-queue slot and the slot's generation tag into the 16-bit
/// ack word carried in frame piggyback areas.
///
/// Returns `None` when `slot` does not fit the 10-bit field. This used to
/// be a `debug_assert!`, which meant a release build would silently pack
/// an out-of-range slot whose low bits alias a *different* slot's ack word
/// — a malformed or hostile frame could then falsely free an in-flight
/// frame on the sender. Callers count refusals (see
/// [`AckTracker::invalid_slots`]) instead of corrupting the window.
#[inline]
pub fn ack_word(slot: u16, gen: u8) -> Option<u16> {
    if (slot as usize) >= REJECT_SLOT_LIMIT {
        return None;
    }
    Some(slot | ((gen_tag(gen) as u16) << ACK_SLOT_BITS))
}

/// Split an ack word back into (slot, generation tag).
#[inline]
pub fn ack_word_parts(word: u16) -> (u16, u8) {
    (
        word & ((1 << ACK_SLOT_BITS) - 1),
        (word >> ACK_SLOT_BITS) as u8,
    )
}

/// Retransmission-timer knobs shared by every slot of a [`SenderFlow`].
/// Time is the endpoint's virtual tick (one tick per `extract`/service
/// pass) — the protocol core has no clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransmitConfig {
    /// Initial per-packet retransmission timeout, in ticks.
    pub rto_initial: u64,
    /// Backoff cap: the rto doubles per timeout up to this.
    pub rto_max: u64,
    /// Timeout retransmissions per packet before the destination is
    /// declared unreachable. Bounce retransmits are not counted — a
    /// bouncing receiver is alive, merely full.
    pub retry_budget: u32,
}

impl Default for RetransmitConfig {
    fn default() -> Self {
        RetransmitConfig {
            rto_initial: 2048,
            rto_max: 1 << 16,
            retry_budget: 16,
        }
    }
}

/// Sender-side flow state: the outstanding-packet window and retransmission
/// queue, parameterized over the packet token kept per outstanding slot.
#[derive(Debug, Clone)]
pub struct SenderFlow<T> {
    reject: RejectQueue<T>,
    retransmit: RetransmitConfig,
    /// Per-slot reuse generation, bumped on every reservation; its low
    /// bits tag outgoing frames and returning acks.
    gens: Vec<u8>,
    /// Per-slot reservation tick, read back on ack for the send→ack RTT.
    sent_at: Vec<u64>,
    /// Per-slot "transmitted more than once" flags (bounce- or
    /// timer-driven alike), cleared on reservation. This is Karn's rule's
    /// input: an ack for a retransmitted slot is ambiguous between
    /// transmissions, so its RTT must never feed the estimator.
    retx: Vec<bool>,
    /// Deterministic xorshift state for retransmission jitter.
    jitter_state: u64,
    /// Statistics (read via the accessor methods below).
    sent: u64,
    retransmitted: u64,
    timer_retransmits: u64,
    acked: u64,
    bounced: u64,
    stray_acks: u64,
}

impl<T> SenderFlow<T> {
    pub fn new(window: usize, retransmit: RetransmitConfig, jitter_seed: u64) -> Self {
        assert!(retransmit.rto_initial > 0, "rto_initial must be positive");
        assert!(retransmit.rto_max >= retransmit.rto_initial);
        SenderFlow {
            reject: RejectQueue::new(window),
            retransmit,
            gens: vec![0; window],
            sent_at: vec![0; window],
            retx: vec![false; window],
            jitter_state: jitter_seed | 1,
            sent: 0,
            retransmitted: 0,
            timer_retransmits: 0,
            acked: 0,
            bounced: 0,
            stray_acks: 0,
        }
    }

    pub fn window(&self) -> usize {
        self.reject.capacity()
    }

    pub fn outstanding(&self) -> usize {
        self.reject.outstanding()
    }

    pub fn can_send(&self) -> bool {
        self.reject.has_space()
    }

    /// Reserve a window slot for a fresh packet, arming its retransmission
    /// timer at `now`. Attach the packet copy and tag with
    /// [`SenderFlow::store`] once it is built around the slot id.
    pub fn begin_send(&mut self, now: u64) -> Option<u16> {
        let slot = self.reject.reserve(now, self.retransmit.rto_initial)?;
        self.gens[slot as usize] = self.gens[slot as usize].wrapping_add(1);
        self.sent_at[slot as usize] = now;
        self.retx[slot as usize] = false;
        self.sent += 1;
        Some(slot)
    }

    /// Has `slot`'s current occupant been transmitted more than once?
    /// Query *before* [`SenderFlow::on_ack`] frees the slot; a valid ack
    /// for a retransmitted slot must be excluded from RTT sampling
    /// (Karn's rule).
    pub fn slot_retransmitted(&self, slot: u16) -> bool {
        self.retx.get(slot as usize).copied().unwrap_or(false)
    }

    /// Replace the base retransmission timeout for *future* reservations
    /// (in-flight slots keep the deadline they were armed with). Clamped
    /// to `[1, rto_max]` so the `new()` invariants keep holding. This is
    /// how the endpoint's adaptive RTT estimator steers the timers.
    pub fn set_rto_initial(&mut self, rto: u64) {
        self.retransmit.rto_initial = rto.clamp(1, self.retransmit.rto_max);
    }

    /// The base retransmission timeout currently armed on fresh sends.
    pub fn rto_initial(&self) -> u64 {
        self.retransmit.rto_initial
    }

    /// The current reuse generation of `slot` — stamp it into the frame
    /// header so the receiver's acks echo it.
    pub fn gen(&self, slot: u16) -> u8 {
        self.gens[slot as usize]
    }

    /// Attach the retransmission copy for `slot`.
    pub fn store(&mut self, slot: u16, packet: T) {
        self.reject.store(slot, gen_tag(self.gens[slot as usize]), packet);
    }

    /// Process one piggybacked ack word. On a valid ack, returns the
    /// send→ack round trip in ticks (`now` minus the slot's reservation
    /// tick); strays and mistagged acks return `None`.
    pub fn on_ack(&mut self, word: u16, now: u64) -> Option<u64> {
        let (slot, tag) = ack_word_parts(word);
        if self.reject.ack(slot, tag) {
            self.acked += 1;
            let sent_at = self.sent_at.get(slot as usize).copied().unwrap_or(now);
            Some(now.saturating_sub(sent_at))
        } else {
            self.stray_acks += 1;
            None
        }
    }

    /// A frame bounced back; park it for retransmission. `gen` is the
    /// bounced frame's own generation tag (validates slot ownership).
    pub fn on_bounce(&mut self, slot: u16, gen: u8, packet: T) -> bool {
        let ok = self.reject.bounce(slot, gen_tag(gen), packet);
        if ok {
            self.bounced += 1;
        } else {
            self.stray_acks += 1;
        }
        ok
    }

    /// Next parked frame to retransmit (slot stays reserved, timer
    /// re-armed from `now`).
    pub fn pop_retransmit(&mut self, now: u64) -> Option<(u16, T)>
    where
        T: Clone,
    {
        let r = self.reject.pop_retransmit(now);
        if let Some((slot, _)) = &r {
            self.retransmitted += 1;
            if let Some(flag) = self.retx.get_mut(*slot as usize) {
                *flag = true;
            }
        }
        r
    }

    /// Frames parked awaiting retransmission.
    pub fn pending_retransmits(&self) -> usize {
        self.reject.returned()
    }

    /// Cheap check: could any retransmission timer have expired by `now`?
    pub fn timer_due(&self, now: u64) -> bool {
        self.reject.timer_due(now)
    }

    /// Fire expired retransmission timers: `retransmit(slot, &packet)` per
    /// retry, `fail(slot, packet)` for packets whose retry budget is
    /// exhausted (the caller declares the destination unreachable).
    pub fn fire_timers(
        &mut self,
        now: u64,
        mut retransmit: impl FnMut(u16, &T),
        fail: impl FnMut(u16, T),
    ) {
        let RetransmitConfig {
            retry_budget,
            rto_max,
            ..
        } = self.retransmit;
        let jitter_state = &mut self.jitter_state;
        let retx = &mut self.retx;
        let mut fired = 0u64;
        self.reject.scan_expired(
            now,
            retry_budget,
            rto_max,
            |rto| {
                // xorshift64: deterministic, cheap, seeded per endpoint so
                // two nodes' retransmit storms decorrelate. Jitter is
                // 0..rto/4.
                let mut x = *jitter_state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *jitter_state = x;
                if rto >= 4 {
                    x % (rto / 4)
                } else {
                    0
                }
            },
            |slot, packet| {
                fired += 1;
                if let Some(flag) = retx.get_mut(slot as usize) {
                    *flag = true;
                }
                retransmit(slot, packet);
            },
            fail,
        );
        self.retransmitted += fired;
        self.timer_retransmits += fired;
    }

    /// Free every outstanding slot whose packet matches `pred` (purging
    /// traffic toward a dead peer), invoking `dropped` per packet.
    pub fn release_where(&mut self, pred: impl FnMut(&T) -> bool, dropped: impl FnMut(T)) {
        self.reject.release_where(pred, dropped);
    }

    // ---- read-only statistics -------------------------------------------

    /// Fresh packets sent (window reservations).
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Packets retransmitted, bounce- and timer-driven together.
    pub fn retransmitted(&self) -> u64 {
        self.retransmitted
    }

    /// The timer-driven subset of [`SenderFlow::retransmitted`].
    pub fn timer_retransmits(&self) -> u64 {
        self.timer_retransmits
    }

    /// Valid acks that freed a slot.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Bounces parked for retransmission.
    pub fn bounced(&self) -> u64 {
        self.bounced
    }

    /// Acks (and bounces) that named a free slot or a stale generation.
    pub fn stray_acks(&self) -> u64 {
        self.stray_acks
    }
}

/// Why [`SeqWindow::buffer`] refused a frame.
///
/// Both variants used to be `debug_assert!`s, so a release build would
/// silently park frames outside the window (pinning memory past the
/// lookahead bound) or overwrite an already-buffered frame (dropping data
/// that had been acknowledged). The checks are now always on; misuse is
/// counted ([`SeqWindow::buffer_misuse`]) and the frame handed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqBufferError {
    /// The sequence number is not strictly ahead of `next_expected()` by
    /// at most the lookahead — it was never classified [`SeqClass::Ahead`].
    OutOfWindow,
    /// A frame with this sequence number is already parked.
    Occupied,
}

/// Classification of an arriving sequence number against a [`SeqWindow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqClass {
    /// Exactly the next expected sequence number: deliver now.
    InOrder,
    /// Already delivered or already buffered: re-acknowledge and drop.
    Duplicate,
    /// Ahead of the expected number but within the lookahead window:
    /// buffer until the gap fills.
    Ahead,
    /// Beyond the lookahead window: refuse (bounce, unacked) so receiver
    /// memory stays bounded even under pathological reordering.
    TooFar,
}

/// Per-source receive window: exactly-once, in-order release of sequenced
/// frames, tolerant of duplication and bounded reordering.
///
/// `next` summarizes everything already released (all seqs strictly before
/// it), so duplicate suppression needs no bitmap; frames ahead of `next`
/// are parked in a map keyed by sequence number until the gap fills.
/// Comparisons use wrapping u32 arithmetic, so the window is correct across
/// sequence-number wraparound.
#[derive(Debug, Clone)]
pub struct SeqWindow<T> {
    next: u32,
    lookahead: u32,
    buffered: HashMap<u32, T>,
    /// Statistics (read via the accessor methods below).
    duplicates: u64,
    too_far: u64,
    buffered_high_water: usize,
    buffer_misuse: u64,
}

impl<T> SeqWindow<T> {
    pub fn new(lookahead: u32) -> Self {
        // `lookahead == 0` is legal: it disables Ahead-buffering entirely,
        // so any out-of-order frame bounces — the paper's original
        // return-to-sender dynamics (delivery guaranteed, ordering by
        // retransmission alone).
        assert!(
            lookahead < i32::MAX as u32,
            "lookahead must leave room for wrapping comparison"
        );
        SeqWindow {
            next: 0,
            lookahead,
            buffered: HashMap::new(),
            duplicates: 0,
            too_far: 0,
            buffered_high_water: 0,
            buffer_misuse: 0,
        }
    }

    /// The next sequence number this window will release.
    pub fn next_expected(&self) -> u32 {
        self.next
    }

    /// Frames parked waiting for a gap to fill.
    pub fn buffered(&self) -> usize {
        self.buffered.len()
    }

    /// Classify an arriving sequence number. Pure; the caller acts on the
    /// class (deliver / re-ack / [`SeqWindow::buffer`] / bounce).
    pub fn classify(&mut self, seq: u32) -> SeqClass {
        let delta = seq.wrapping_sub(self.next) as i32;
        if delta < 0 {
            self.duplicates += 1;
            SeqClass::Duplicate
        } else if delta == 0 {
            SeqClass::InOrder
        } else if delta as u32 <= self.lookahead {
            if self.buffered.contains_key(&seq) {
                self.duplicates += 1;
                SeqClass::Duplicate
            } else {
                SeqClass::Ahead
            }
        } else {
            self.too_far += 1;
            SeqClass::TooFar
        }
    }

    /// The in-order frame was released: advance the expectation.
    pub fn advance(&mut self) {
        self.next = self.next.wrapping_add(1);
    }

    /// Park an [`SeqClass::Ahead`] frame until the gap before it fills.
    ///
    /// Refuses (returning the frame) when `seq` is outside the Ahead range
    /// or already buffered — checked in release builds too, because either
    /// misuse corrupts the window: out-of-window parks defeat the memory
    /// bound, double-inserts silently drop the earlier frame.
    pub fn buffer(&mut self, seq: u32, item: T) -> Result<(), (SeqBufferError, T)> {
        let delta = seq.wrapping_sub(self.next);
        if delta == 0 || delta > self.lookahead {
            self.buffer_misuse += 1;
            return Err((SeqBufferError::OutOfWindow, item));
        }
        if self.buffered.contains_key(&seq) {
            self.buffer_misuse += 1;
            return Err((SeqBufferError::Occupied, item));
        }
        self.buffered.insert(seq, item);
        self.buffered_high_water = self.buffered_high_water.max(self.buffered.len());
        Ok(())
    }

    /// If the next expected frame is parked, release it (advancing the
    /// expectation). Call repeatedly to drain a filled gap.
    pub fn take_ready(&mut self) -> Option<T> {
        let item = self.buffered.remove(&self.next)?;
        self.advance();
        Some(item)
    }

    /// Drop all parked frames (the source died; its unfinished reordering
    /// state must not pin memory).
    pub fn clear_buffered(&mut self) -> usize {
        let n = self.buffered.len();
        self.buffered.clear();
        n
    }

    // ---- read-only statistics -------------------------------------------

    /// Frames recognized as already delivered or already buffered.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Frames refused for landing beyond the lookahead window.
    pub fn too_far(&self) -> u64 {
        self.too_far
    }

    /// Peak number of frames parked at once.
    pub fn buffered_high_water(&self) -> usize {
        self.buffered_high_water
    }

    /// [`SeqWindow::buffer`] calls refused for misuse (out-of-window or
    /// double-insert).
    pub fn buffer_misuse(&self) -> u64 {
        self.buffer_misuse
    }
}

/// Receiver-side acknowledgement batching.
///
/// Uses a `BTreeMap` so drain order is deterministic (node-id order) — the
/// simulator depends on run-to-run reproducibility.
#[derive(Debug, Clone, Default)]
pub struct AckTracker {
    pending: BTreeMap<NodeId, Vec<u16>>,
    /// Statistics (read via the accessor methods below).
    accepted: u64,
    piggybacked: u64,
    standalone_frames: u64,
    invalid_slots: u64,
}

impl AckTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a data frame from `src` occupying sender slot `slot`
    /// with sequence number `seq` was accepted (or recognized as a
    /// duplicate of an accepted frame) and must (re-)acknowledge. The
    /// stored value is the packed [`ack_word`].
    ///
    /// Returns `false` (counting the refusal) when `slot` does not fit the
    /// ack word's 10-bit field — a malformed frame whose ack would alias
    /// another slot on the sender. The frame should be dropped unacked;
    /// the sender recovers it by timeout.
    pub fn on_accept(&mut self, src: NodeId, slot: u16, gen: u8) -> bool {
        match ack_word(slot, gen) {
            Some(word) => {
                self.pending.entry(src).or_default().push(word);
                self.accepted += 1;
                true
            }
            None => {
                self.invalid_slots += 1;
                false
            }
        }
    }

    /// Drop every pending ack toward `dst` (the peer died; acks to it
    /// would only wedge quiescence). Keeps the entry's capacity.
    pub fn purge(&mut self, dst: NodeId) -> usize {
        self.pending.get_mut(&dst).map_or(0, |v| {
            let n = v.len();
            v.clear();
            n
        })
    }

    /// Total acks pending toward `dst`.
    pub fn pending_for(&self, dst: NodeId) -> usize {
        self.pending.get(&dst).map_or(0, Vec::len)
    }

    /// Total acks pending toward anyone.
    pub fn pending_total(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Fill a piggyback area for a data frame headed to `dst` (oldest acks
    /// first).
    ///
    /// Drained destinations keep their (empty) map entry so its `Vec`
    /// retains capacity — on a steady ping-pong the accept/piggyback cycle
    /// then allocates nothing.
    pub fn take_piggy(&mut self, dst: NodeId) -> PiggyAcks {
        let mut p = PiggyAcks::new();
        if let Some(v) = self.pending.get_mut(&dst) {
            let take = v.len().min(PIGGY_MAX);
            for slot in v.drain(..take) {
                let ok = p.push(slot);
                debug_assert!(ok);
            }
            self.piggybacked += take as u64;
        }
        p
    }

    /// Drain ack batches for standalone ack frames, handing each
    /// frame-sized group (<= [`PIGGY_MAX`] slots) to `emit`. With `force`,
    /// every pending ack is drained (used at the end of an extract call so
    /// a sender with no reverse traffic is never starved of acks);
    /// otherwise only destinations with at least [`ACK_BATCH`] pending are
    /// drained. Visitor-style so the common nothing-to-do and
    /// everything-piggybacked cases allocate nothing.
    pub fn take_standalone(&mut self, force: bool, mut emit: impl FnMut(NodeId, &[u16])) {
        for (&node, v) in self.pending.iter_mut() {
            if v.is_empty() || (!force && v.len() < ACK_BATCH) {
                continue;
            }
            let mut start = 0;
            while start < v.len() && (force || v.len() - start >= ACK_BATCH) {
                let take = (v.len() - start).min(PIGGY_MAX);
                self.standalone_frames += 1;
                emit(node, &v[start..start + take]);
                start += take;
            }
            v.drain(..start);
        }
    }

    // ---- read-only statistics -------------------------------------------

    /// Frames accepted (or re-recognized) whose acks were queued.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Acks that rode in data-frame piggyback areas.
    pub fn piggybacked(&self) -> u64 {
        self.piggybacked
    }

    /// Standalone ack frames emitted.
    pub fn standalone_frames(&self) -> u64 {
        self.standalone_frames
    }

    /// [`AckTracker::on_accept`] refusals: slots too wide for the ack word.
    pub fn invalid_slots(&self) -> u64 {
        self.invalid_slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow<T>(window: usize) -> SenderFlow<T> {
        SenderFlow::new(window, RetransmitConfig::default(), 42)
    }

    #[test]
    fn ack_word_packs_slot_and_tag() {
        assert_eq!(ack_word_parts(ack_word(0, 0).unwrap()), (0, 0));
        assert_eq!(ack_word_parts(ack_word(1023, 0x67).unwrap()), (1023, 0x27));
        let w = ack_word(513, 0xFF).unwrap();
        assert_eq!(ack_word_parts(w), (513, 0x3F));
    }

    #[test]
    fn ack_word_refuses_oversized_slots() {
        // 1024 would alias slot 0's word in the 10-bit field; the old
        // debug_assert let release builds do exactly that.
        assert_eq!(ack_word(1024, 0), None);
        assert_eq!(ack_word(u16::MAX, 0x3F), None);
        assert!(ack_word((REJECT_SLOT_LIMIT - 1) as u16, 0).is_some());
    }

    #[test]
    fn sender_window_blocks_then_reopens() {
        let mut s: SenderFlow<()> = flow(2);
        let a = s.begin_send(0).unwrap();
        let b = s.begin_send(0).unwrap();
        assert!(s.begin_send(0).is_none());
        assert!(!s.can_send());
        s.store(a, ());
        s.on_ack(ack_word(a, s.gen(a)).unwrap(), 0);
        assert!(s.can_send());
        let c = s.begin_send(0).unwrap();
        assert_eq!(c, a, "slot recycled");
        assert_eq!(s.outstanding(), 2);
        let _ = b;
    }

    #[test]
    fn bounce_then_retransmit_then_ack() {
        let mut s: SenderFlow<u32> = flow(4);
        let slot = s.begin_send(0).unwrap();
        let gen = s.gen(slot);
        s.store(slot, 777);
        assert!(s.on_bounce(slot, gen, 777));
        assert_eq!(s.pending_retransmits(), 1);
        let (rs, payload) = s.pop_retransmit(0).unwrap();
        assert_eq!((rs, payload), (slot, 777));
        assert_eq!(s.retransmitted(), 1);
        s.on_ack(ack_word(slot, gen).unwrap(), 0);
        assert_eq!(s.acked(), 1);
        assert_eq!(s.outstanding(), 0);
    }

    #[test]
    fn on_ack_reports_round_trip_ticks() {
        let mut s: SenderFlow<()> = flow(2);
        let slot = s.begin_send(100).unwrap();
        let gen = s.gen(slot);
        s.store(slot, ());
        assert_eq!(s.on_ack(ack_word(slot, gen).unwrap(), 175), Some(75));
        // A stray re-ack reports nothing.
        assert_eq!(s.on_ack(ack_word(slot, gen).unwrap(), 200), None);
    }

    #[test]
    fn stray_and_mistagged_acks_counted_not_fatal() {
        let mut s: SenderFlow<()> = flow(2);
        s.on_ack(ack_word(0, 0).unwrap(), 0);
        s.on_ack(ack_word(17, 0).unwrap(), 0);
        assert_eq!(s.stray_acks(), 2);
        let slot = s.begin_send(0).unwrap();
        let gen = s.gen(slot);
        s.store(slot, ());
        // Ack for the same slot under a stale generation must not free it
        // (the previous occupant's tag is gen - 1).
        s.on_ack(ack_word(slot, gen.wrapping_sub(1)).unwrap(), 0);
        assert_eq!(s.stray_acks(), 3);
        assert_eq!(s.outstanding(), 1);
        s.on_ack(ack_word(slot, gen).unwrap(), 0);
        assert_eq!(s.acked(), 1);
        assert_eq!(s.outstanding(), 0);
    }

    #[test]
    fn timer_retransmits_then_declares_peer_dead() {
        let mut s: SenderFlow<u32> = SenderFlow::new(
            4,
            RetransmitConfig {
                rto_initial: 10,
                rto_max: 20,
                retry_budget: 2,
            },
            1,
        );
        let slot = s.begin_send(0).unwrap();
        s.store(slot, 555);
        assert!(!s.timer_due(9));
        let mut retx = 0;
        let mut dead = Vec::new();
        // Drive time forward until the retry budget trips.
        for now in 10..210 {
            if s.timer_due(now) {
                s.fire_timers(now, |_, _| retx += 1, |_, p| dead.push(p));
            }
            if !dead.is_empty() {
                break;
            }
        }
        assert_eq!(retx, 2, "budget of 2 retries before failure");
        assert_eq!(dead, vec![555]);
        assert_eq!(s.outstanding(), 0, "failed slot freed");
        assert_eq!(s.timer_retransmits(), 2);
    }

    #[test]
    fn seq_window_buffer_refuses_misuse() {
        let mut w: SeqWindow<&str> = SeqWindow::new(4);
        assert!(w.buffer(2, "ahead").is_ok());
        // Double-insert hands the frame back instead of overwriting.
        assert_eq!(w.buffer(2, "dup"), Err((SeqBufferError::Occupied, "dup")));
        // seq == next is InOrder, not Ahead; seq past the lookahead and
        // already-delivered (wrapped-negative delta) are out of window.
        assert_eq!(w.buffer(0, "now"), Err((SeqBufferError::OutOfWindow, "now")));
        assert_eq!(w.buffer(5, "far"), Err((SeqBufferError::OutOfWindow, "far")));
        assert_eq!(
            w.buffer(u32::MAX, "old"),
            Err((SeqBufferError::OutOfWindow, "old"))
        );
        assert_eq!(w.buffer_misuse(), 4);
        assert_eq!(w.buffered(), 1, "misuse never parked anything");
        // The valid parked frame still releases once the gap fills.
        w.advance();
        w.advance();
        assert_eq!(w.take_ready(), Some("ahead"));
    }

    #[test]
    fn ack_tracker_piggyback_prefers_oldest() {
        let mut a = AckTracker::new();
        for slot in 0..6 {
            a.on_accept(NodeId(1), slot, 0);
        }
        let p = a.take_piggy(NodeId(1));
        assert_eq!(p.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(a.pending_for(NodeId(1)), 2);
        assert_eq!(a.piggybacked(), 4);
        // No pending acks toward node 2.
        assert!(a.take_piggy(NodeId(2)).is_empty());
    }

    #[test]
    fn ack_tracker_refuses_oversized_slot() {
        let mut a = AckTracker::new();
        assert!(!a.on_accept(NodeId(1), 1024, 0));
        assert_eq!(a.invalid_slots(), 1);
        assert_eq!(a.pending_total(), 0, "no aliased ack queued");
        assert!(a.on_accept(NodeId(1), 1023, 0));
        assert_eq!(a.accepted(), 1);
    }

    fn collect_standalone(a: &mut AckTracker, force: bool) -> Vec<(NodeId, Vec<u16>)> {
        let mut out = Vec::new();
        a.take_standalone(force, |node, slots| out.push((node, slots.to_vec())));
        out
    }

    #[test]
    fn standalone_only_when_batch_reached() {
        let mut a = AckTracker::new();
        a.on_accept(NodeId(1), 0, 0);
        a.on_accept(NodeId(1), 1, 0);
        assert!(collect_standalone(&mut a, false).is_empty(), "below batch");
        a.on_accept(NodeId(1), 2, 0);
        a.on_accept(NodeId(1), 3, 0);
        let out = collect_standalone(&mut a, false);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], (NodeId(1), vec![0, 1, 2, 3]));
        assert_eq!(a.pending_total(), 0);
    }

    #[test]
    fn force_flush_drains_everything_in_node_order() {
        let mut a = AckTracker::new();
        a.on_accept(NodeId(5), 50, 0);
        a.on_accept(NodeId(2), 20, 0);
        a.on_accept(NodeId(2), 21, 0);
        let out = collect_standalone(&mut a, true);
        assert_eq!(
            out,
            vec![(NodeId(2), vec![20, 21]), (NodeId(5), vec![50])],
            "deterministic node order, all drained"
        );
        assert_eq!(a.pending_total(), 0);
    }

    #[test]
    fn big_backlog_splits_into_frame_sized_groups() {
        let mut a = AckTracker::new();
        for slot in 0..10 {
            a.on_accept(NodeId(1), slot, 0);
        }
        let out = collect_standalone(&mut a, true);
        let sizes: Vec<usize> = out.iter().map(|(_, v)| v.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        let all: Vec<u16> = out.into_iter().flat_map(|(_, v)| v).collect();
        assert_eq!(all, (0..10).collect::<Vec<u16>>());
    }

    #[test]
    fn drained_destinations_keep_capacity() {
        // The accept -> piggyback cycle must not shed the per-peer Vec: its
        // retained capacity is what makes the steady-state path allocation
        // free.
        let mut a = AckTracker::new();
        for round in 0..100 {
            a.on_accept(NodeId(1), round, 0);
            let p = a.take_piggy(NodeId(1));
            assert_eq!(p.as_slice(), &[round]);
        }
        assert_eq!(a.pending_total(), 0);
        assert_eq!(a.piggybacked(), 100);
    }
}
