//! Handlers: the consumer functions FM messages carry.
//!
//! "Each message carries a pointer to a sender-specified function (called a
//! handler) that consumes the data at the destination" (paper Section 3.1).
//! In Rust we ship a *handler id* on the wire and register the actual
//! closures per node; sender and receiver must agree on the id assignment
//! (in practice every node registers the same handler table, exactly like
//! linking the same program text on every workstation in 1995).
//!
//! Handlers run during `FM_extract` and may themselves send messages — FM
//! imposes no request/reply restriction ("There are no restrictions on the
//! actions that can be performed by an handler, and it is left to the
//! programmer [to prevent] deadlock situations"). Sends issued from inside
//! a handler go through the [`Outbox`], which the runtime flushes after the
//! handler returns; this keeps the borrow structure safe while preserving
//! FM's semantics (FM sends are asynchronous anyway). Message buffers do
//! not persist beyond the handler's return — handlers get a `&[u8]`, not an
//! owned buffer.

use bytes::Bytes;
use fm_myrinet::NodeId;
use std::fmt;

/// Identifies a registered handler. Carried in every frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HandlerId(pub u16);

impl fmt::Display for HandlerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A message handler: `(outbox, source node, payload)`.
pub type Handler = Box<dyn FnMut(&mut Outbox, NodeId, &[u8]) + Send>;

/// Sends queued by a handler, flushed by the runtime after the handler
/// returns.
#[derive(Debug)]
pub struct Outbox {
    queued: Vec<(NodeId, HandlerId, Bytes)>,
    /// The local node, so handlers can know who they are.
    pub me: NodeId,
}

impl Outbox {
    pub fn new(me: NodeId) -> Self {
        Outbox {
            queued: Vec::new(),
            me,
        }
    }

    /// Queue an `FM_send`-style message (up to 128 B payload).
    pub fn send(&mut self, dest: NodeId, handler: HandlerId, payload: impl Into<Bytes>) {
        let payload = payload.into();
        assert!(
            payload.len() <= crate::FM_FRAME_PAYLOAD,
            "handler sends are single frames (<=128 B); use the segmentation \
             layer for larger messages"
        );
        self.queued.push((dest, handler, payload));
    }

    /// Queue an `FM_send`-style message by copying `payload` (which must
    /// fit one frame). The copy lands in an inline `Bytes`, so — unlike
    /// `send(dst, h, data.to_vec())` — this never touches the heap; echo
    /// handlers on the hot path should prefer it.
    pub fn send_copy(&mut self, dest: NodeId, handler: HandlerId, payload: &[u8]) {
        self.send(dest, handler, Bytes::copy_from_slice(payload));
    }

    /// Queue an `FM_send_4`-style four-word message.
    pub fn send_4(&mut self, dest: NodeId, handler: HandlerId, words: [u32; 4]) {
        let mut buf = [0u8; 16];
        for (i, w) in words.iter().enumerate() {
            buf[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        self.queued.push((dest, handler, Bytes::copy_from_slice(&buf)));
    }

    /// Number of queued sends.
    pub fn len(&self) -> usize {
        self.queued.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queued.is_empty()
    }

    /// Drain the queued sends (runtime use).
    pub fn drain(&mut self) -> impl Iterator<Item = (NodeId, HandlerId, Bytes)> + '_ {
        self.queued.drain(..)
    }

    /// Swap the queued sends with `other` (runtime use). Lets the extract
    /// loop move the batch out for flushing without allocating a Vec per
    /// delivered frame — the runtime keeps one scratch Vec and round-trips
    /// its capacity through here.
    pub(crate) fn swap_queued(&mut self, other: &mut Vec<(NodeId, HandlerId, Bytes)>) {
        std::mem::swap(&mut self.queued, other);
    }
}

/// Per-node handler table.
///
/// Slot 0 is reserved for the internal segmentation handler (see
/// [`crate::seg`]); user registration starts at id 1 unless an explicit id
/// is given.
pub struct HandlerRegistry {
    table: Vec<Option<Handler>>,
}

impl Default for HandlerRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for HandlerRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ids: Vec<u16> = (0..self.table.len() as u16)
            .filter(|&i| self.table[i as usize].is_some())
            .collect();
        f.debug_struct("HandlerRegistry")
            .field("registered", &ids)
            .finish()
    }
}

impl HandlerRegistry {
    pub fn new() -> Self {
        HandlerRegistry { table: Vec::new() }
    }

    /// Register `h` at the next free id (starting at 1).
    pub fn register(&mut self, h: Handler) -> HandlerId {
        let start = self.table.len().max(1);
        if self.table.len() < start {
            self.table.resize_with(start, || None);
        }
        // Reuse a hole if one exists past slot 0.
        for i in 1..self.table.len() {
            if self.table[i].is_none() {
                self.table[i] = Some(h);
                return HandlerId(i as u16);
            }
        }
        self.table.push(Some(h));
        HandlerId((self.table.len() - 1) as u16)
    }

    /// Register `h` at an explicit id (replacing any previous handler).
    pub fn register_at(&mut self, id: HandlerId, h: Handler) {
        let idx = id.0 as usize;
        if self.table.len() <= idx {
            self.table.resize_with(idx + 1, || None);
        }
        self.table[idx] = Some(h);
    }

    /// Remove a handler.
    pub fn unregister(&mut self, id: HandlerId) -> bool {
        self.table
            .get_mut(id.0 as usize)
            .and_then(Option::take)
            .is_some()
    }

    pub fn is_registered(&self, id: HandlerId) -> bool {
        matches!(self.table.get(id.0 as usize), Some(Some(_)))
    }

    /// Temporarily take a handler out of the table so it can be invoked
    /// while the runtime retains `&mut` access to everything else. Must be
    /// paired with [`HandlerRegistry::put_back`].
    pub(crate) fn take(&mut self, id: HandlerId) -> Option<Handler> {
        self.table.get_mut(id.0 as usize).and_then(Option::take)
    }

    pub(crate) fn put_back(&mut self, id: HandlerId, h: Handler) {
        let idx = id.0 as usize;
        debug_assert!(self.table[idx].is_none());
        self.table[idx] = Some(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn register_assigns_increasing_ids_from_1() {
        let mut r = HandlerRegistry::new();
        let a = r.register(Box::new(|_, _, _| {}));
        let b = r.register(Box::new(|_, _, _| {}));
        assert_eq!(a, HandlerId(1));
        assert_eq!(b, HandlerId(2));
        assert!(r.is_registered(a));
        assert!(!r.is_registered(HandlerId(0)), "slot 0 reserved");
    }

    #[test]
    fn unregister_frees_slot_for_reuse() {
        let mut r = HandlerRegistry::new();
        let a = r.register(Box::new(|_, _, _| {}));
        let _b = r.register(Box::new(|_, _, _| {}));
        assert!(r.unregister(a));
        assert!(!r.is_registered(a));
        let c = r.register(Box::new(|_, _, _| {}));
        assert_eq!(c, a, "hole reused");
        assert!(!r.unregister(HandlerId(999)));
    }

    #[test]
    fn take_and_put_back_invoke_handler() {
        let mut r = HandlerRegistry::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = hits.clone();
        let id = r.register(Box::new(move |_, src, data| {
            assert_eq!(src, NodeId(4));
            assert_eq!(data, b"xy");
            h2.fetch_add(1, Ordering::SeqCst);
        }));
        let mut h = r.take(id).unwrap();
        assert!(!r.is_registered(id), "taken out");
        let mut ob = Outbox::new(NodeId(0));
        h(&mut ob, NodeId(4), b"xy");
        r.put_back(id, h);
        assert!(r.is_registered(id));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn outbox_send4_encodes_words_le() {
        let mut ob = Outbox::new(NodeId(9));
        ob.send_4(NodeId(1), HandlerId(2), [1, 2, 3, 0xAABBCCDD]);
        assert_eq!(ob.len(), 1);
        let (dst, h, bytes) = ob.drain().next().unwrap();
        assert_eq!(dst, NodeId(1));
        assert_eq!(h, HandlerId(2));
        assert_eq!(bytes.len(), 16);
        assert_eq!(&bytes[12..16], &0xAABBCCDDu32.to_le_bytes());
    }

    #[test]
    #[should_panic(expected = "single frames")]
    fn outbox_rejects_oversized_send() {
        let mut ob = Outbox::new(NodeId(0));
        ob.send(NodeId(1), HandlerId(1), vec![0u8; 129]);
    }

    #[test]
    fn register_at_explicit_id() {
        let mut r = HandlerRegistry::new();
        r.register_at(HandlerId(40), Box::new(|_, _, _| {}));
        assert!(r.is_registered(HandlerId(40)));
        let next = r.register(Box::new(|_, _, _| {}));
        assert_eq!(next, HandlerId(1), "auto ids fill from the bottom");
    }
}
