//! Ordered, reliable byte streams over Fast Messages — the TCP-shaped
//! client the paper's Section 7 plans ("we are building implementations of
//! MPI, TCP/IP, and the Illinois Concert system's runtime").
//!
//! FM already provides reliable delivery, so a stream layer only has to
//! add *ordering* and *byte framing* on top: each chunk carries a
//! `(port, sequence)` header, the receiver reassembles chunks in sequence
//! (FM may reorder — bounced frames retransmit late), and a zero-length
//! chunk signals end-of-stream. Serendipitously (paper Section 5), FM's
//! 128-byte frame is close to the best size for IP-style traffic — chunks
//! ride the segmentation layer, which rides ordinary frames.
//!
//! A stream is identified by `(peer, port)`; both ends simply open the
//! same port — FM's reliability makes a SYN handshake unnecessary.
//!
//! ```
//! use fm_core::mem::MemCluster;
//! use fm_core::stream::StreamMux;
//! use fm_core::NodeId;
//!
//! let mut nodes = MemCluster::new(2);
//! let mut b = nodes.pop().unwrap();
//! let mut a = nodes.pop().unwrap();
//! let mux_a = StreamMux::attach(&mut a);
//! let mux_b = StreamMux::attach(&mut b);
//!
//! let mut tx = mux_a.open(NodeId(1), 80);
//! let mut rx = mux_b.open(NodeId(0), 80);
//!
//! tx.write(&mut a, b"GET /fm HTTP/1.0\r\n");
//! tx.finish(&mut a);
//!
//! let mut buf = Vec::new();
//! rx.read_to_end(&mut b, &mut buf);
//! assert_eq!(buf, b"GET /fm HTTP/1.0\r\n");
//! ```

use bytes::Bytes;
use fm_myrinet::NodeId;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use crate::fabric::BufferPool;
use crate::handler::HandlerId;
use crate::mem::MemEndpoint;

/// Bytes of stream payload per chunk (one `send_large` message). Kept
/// moderate so interleaved streams share the wire fairly.
pub const CHUNK_BYTES: usize = 4096;

/// Chunk header: port (2) + sequence (4) + flags (1).
const CHUNK_HEADER: usize = 7;
const FLAG_FIN: u8 = 1;

/// Per-stream receive state.
#[derive(Debug, Default)]
struct RecvState {
    /// In-order bytes ready for `read`.
    ready: VecDeque<u8>,
    /// Out-of-order chunks parked by sequence number.
    parked: BTreeMap<u32, (u8, Vec<u8>)>,
    next_seq: u32,
    fin_seen: bool,
    /// Statistics: chunks that arrived out of order.
    reordered: u64,
}

impl RecvState {
    fn admit(&mut self, seq: u32, flags: u8, data: Vec<u8>) {
        if seq < self.next_seq {
            // A duplicate — impossible under FM's exactly-once delivery;
            // dropped silently in release, flagged in debug.
            debug_assert!(false, "duplicate stream chunk {seq}");
            return;
        }
        if seq == self.next_seq {
            self.apply(flags, data);
            while let Some((f, d)) = self.parked.remove(&self.next_seq) {
                self.apply(f, d);
            }
        } else {
            self.reordered += 1;
            self.parked.insert(seq, (flags, data));
        }
    }

    fn apply(&mut self, flags: u8, data: Vec<u8>) {
        self.ready.extend(data);
        if flags & FLAG_FIN != 0 {
            self.fin_seen = true;
        }
        self.next_seq += 1;
    }
}

type StreamKey = (NodeId, u16);

#[derive(Debug, Default)]
struct MuxShared {
    streams: HashMap<StreamKey, RecvState>,
}

/// The stream multiplexer: one per endpoint, dispatching incoming chunks
/// to per-`(peer, port)` reassembly state.
#[derive(Clone)]
pub struct StreamMux {
    shared: Arc<Mutex<MuxShared>>,
    handler: HandlerId,
}

impl StreamMux {
    /// Register the stream dispatcher on an endpoint. Call once per node.
    pub fn attach(ep: &mut MemEndpoint) -> StreamMux {
        let shared: Arc<Mutex<MuxShared>> = Arc::new(Mutex::new(MuxShared::default()));
        let sink = shared.clone();
        let handler = ep.register_large_handler(move |_, src, msg| {
            if msg.len() < CHUNK_HEADER {
                return; // malformed; FM delivered it, the mux ignores it
            }
            let port = u16::from_le_bytes(msg[0..2].try_into().expect("2B"));
            let seq = u32::from_le_bytes(msg[2..6].try_into().expect("4B"));
            let flags = msg[6];
            let data = msg[CHUNK_HEADER..].to_vec();
            sink.lock()
                .streams
                .entry((src, port))
                .or_default()
                .admit(seq, flags, data);
        });
        StreamMux { shared, handler }
    }

    /// Open the stream `(peer, port)`. Both ends open the same port; each
    /// `FmStream` is one *direction* of a full-duplex conversation (open
    /// two ports, or one stream each way on the same port).
    pub fn open(&self, peer: NodeId, port: u16) -> FmStream {
        FmStream {
            mux: self.clone(),
            peer,
            port,
            next_seq: 0,
            fin_sent: false,
            pool: BufferPool::with_limit(2),
        }
    }

    /// Bytes buffered and readable right now for `(peer, port)`.
    pub fn readable(&self, peer: NodeId, port: u16) -> usize {
        self.shared
            .lock()
            .streams
            .get(&(peer, port))
            .map_or(0, |s| s.ready.len())
    }
}

impl std::fmt::Debug for StreamMux {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.shared.lock();
        f.debug_struct("StreamMux")
            .field("streams", &g.streams.len())
            .field("handler", &self.handler)
            .finish()
    }
}

/// One directed byte stream to `peer` on `port`.
///
/// Methods take the endpoint explicitly because the endpoint is
/// single-threaded state owned by the node's thread (see
/// [`crate::mem::MemEndpoint`]); the stream itself is just sequencing
/// state plus a handle on the mux.
#[derive(Debug)]
pub struct FmStream {
    mux: StreamMux,
    peer: NodeId,
    port: u16,
    next_seq: u32,
    fin_sent: bool,
    /// Chunk staging buffers, recycled across writes so steady-state
    /// streaming allocates nothing on the send side.
    pool: BufferPool,
}

impl FmStream {
    pub fn peer(&self) -> NodeId {
        self.peer
    }

    pub fn port(&self) -> u16 {
        self.port
    }

    fn send_chunk(&mut self, ep: &mut MemEndpoint, flags: u8, data: &[u8]) {
        debug_assert!(data.len() <= CHUNK_BYTES);
        let mut msg = self.pool.get(CHUNK_HEADER + data.len());
        msg.extend_from_slice(&self.port.to_le_bytes());
        msg.extend_from_slice(&self.next_seq.to_le_bytes());
        msg.push(flags);
        msg.extend_from_slice(data);
        self.next_seq += 1;
        if let Err(e) = ep.send_large(self.peer, self.mux.handler, &msg) {
            panic!("stream write to {}: {e}", self.peer.0);
        }
        self.pool.put(msg);
    }

    /// Write all of `buf` (blocking; chunks as needed).
    pub fn write(&mut self, ep: &mut MemEndpoint, buf: &[u8]) {
        assert!(!self.fin_sent, "write after finish()");
        if buf.is_empty() {
            return;
        }
        for chunk in buf.chunks(CHUNK_BYTES) {
            self.send_chunk(ep, 0, chunk);
        }
    }

    /// Signal end-of-stream; the peer's reads will return 0 once drained.
    pub fn finish(&mut self, ep: &mut MemEndpoint) {
        if !self.fin_sent {
            self.send_chunk(ep, FLAG_FIN, &[]);
            self.fin_sent = true;
        }
    }

    /// Non-blocking read into `buf`; returns bytes copied (0 means "no
    /// data right now" — check [`FmStream::at_eof`] to distinguish EOF).
    pub fn try_read(&mut self, ep: &mut MemEndpoint, buf: &mut [u8]) -> usize {
        ep.extract();
        let mut g = self.mux.shared.lock();
        let Some(state) = g.streams.get_mut(&(self.peer, self.port)) else {
            return 0;
        };
        let n = state.ready.len().min(buf.len());
        for b in buf.iter_mut().take(n) {
            *b = state.ready.pop_front().expect("len checked");
        }
        n
    }

    /// Blocking read of at least one byte; returns 0 only at end-of-stream.
    pub fn read(&mut self, ep: &mut MemEndpoint, buf: &mut [u8]) -> usize {
        if buf.is_empty() {
            return 0;
        }
        loop {
            let n = self.try_read(ep, buf);
            if n > 0 {
                return n;
            }
            if self.at_eof() {
                return 0;
            }
            std::thread::yield_now();
        }
    }

    /// Read until the peer finishes the stream.
    pub fn read_to_end(&mut self, ep: &mut MemEndpoint, out: &mut Vec<u8>) {
        let mut buf = [0u8; 4096];
        loop {
            let n = self.read(ep, &mut buf);
            if n == 0 {
                return;
            }
            out.extend_from_slice(&buf[..n]);
        }
    }

    /// True when the peer sent FIN and every byte has been consumed.
    pub fn at_eof(&self) -> bool {
        let g = self.mux.shared.lock();
        g.streams
            .get(&(self.peer, self.port))
            .is_some_and(|s| s.fin_seen && s.ready.is_empty() && s.parked.is_empty())
    }

    /// Chunks that arrived out of order on this stream so far (FM does not
    /// guarantee ordering; this layer restores it).
    pub fn reordered_chunks(&self) -> u64 {
        let g = self.mux.shared.lock();
        g.streams
            .get(&(self.peer, self.port))
            .map_or(0, |s| s.reordered)
    }

    /// Convenience: write a whole message and its length prefix (a tiny
    /// record protocol for request/response tests and examples).
    pub fn write_record(&mut self, ep: &mut MemEndpoint, record: &[u8]) {
        let len = (record.len() as u32).to_le_bytes();
        self.write(ep, &len);
        self.write(ep, record);
    }

    /// Convenience: read one length-prefixed record (blocking). `None` at
    /// end-of-stream.
    pub fn read_record(&mut self, ep: &mut MemEndpoint) -> Option<Bytes> {
        let mut len_buf = [0u8; 4];
        let mut got = 0;
        while got < 4 {
            let n = self.read(ep, &mut len_buf[got..]);
            if n == 0 {
                assert_eq!(got, 0, "stream ended mid-record-length");
                return None;
            }
            got += n;
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut data = vec![0u8; len];
        let mut got = 0;
        while got < len {
            let n = self.read(ep, &mut data[got..]);
            assert!(n > 0, "stream ended mid-record ({got}/{len} bytes)");
            got += n;
        }
        Some(Bytes::from(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemCluster;

    fn pair() -> (MemEndpoint, MemEndpoint, StreamMux, StreamMux) {
        let mut nodes = MemCluster::new(2);
        let mut b = nodes.pop().expect("node 1");
        let mut a = nodes.pop().expect("node 0");
        let ma = StreamMux::attach(&mut a);
        let mb = StreamMux::attach(&mut b);
        (a, b, ma, mb)
    }

    #[test]
    fn single_thread_transfer_and_eof() {
        let (mut a, mut b, ma, mb) = pair();
        let mut tx = ma.open(NodeId(1), 7);
        let mut rx = mb.open(NodeId(0), 7);
        // Driving both ends from one thread means nobody extracts while
        // write() blocks, so the whole message must fit the sender's
        // 64-frame window (64 x 114 B of fragment payload). Larger
        // transfers need the receiver on its own thread — see
        // threaded_bulk_transfer below.
        let payload: Vec<u8> = (0..5_000u32).map(|i| (i % 241) as u8).collect();
        tx.write(&mut a, &payload);
        tx.finish(&mut a);
        let mut out = Vec::new();
        rx.read_to_end(&mut b, &mut out);
        assert_eq!(out, payload);
        assert!(rx.at_eof());
        assert_eq!(rx.read(&mut b, &mut [0u8; 8]), 0, "EOF is sticky");
    }

    #[test]
    fn multiple_ports_do_not_mix() {
        let (mut a, mut b, ma, mb) = pair();
        let mut tx1 = ma.open(NodeId(1), 1);
        let mut tx2 = ma.open(NodeId(1), 2);
        let mut rx1 = mb.open(NodeId(0), 1);
        let mut rx2 = mb.open(NodeId(0), 2);
        // Interleave writes on two ports.
        for i in 0..10u8 {
            tx1.write(&mut a, &[i]);
            tx2.write(&mut a, &[100 + i]);
        }
        tx1.finish(&mut a);
        tx2.finish(&mut a);
        let (mut o1, mut o2) = (Vec::new(), Vec::new());
        rx1.read_to_end(&mut b, &mut o1);
        rx2.read_to_end(&mut b, &mut o2);
        assert_eq!(o1, (0..10).collect::<Vec<u8>>());
        assert_eq!(o2, (100..110).collect::<Vec<u8>>());
    }

    #[test]
    fn bidirectional_request_response() {
        let (mut a, mut b, ma, mb) = pair();
        // Port 5 a->b carries requests; port 6 b->a carries responses.
        let mut req_tx = ma.open(NodeId(1), 5);
        let mut req_rx = mb.open(NodeId(0), 5);
        let mut resp_tx = mb.open(NodeId(0), 6);
        let mut resp_rx = ma.open(NodeId(1), 6);

        req_tx.write_record(&mut a, b"what is 6*7?");
        let q = req_rx.read_record(&mut b).expect("request");
        assert_eq!(&q[..], b"what is 6*7?");
        resp_tx.write_record(&mut b, b"42");
        let r = resp_rx.read_record(&mut a).expect("response");
        assert_eq!(&r[..], b"42");
    }

    #[test]
    fn threaded_bulk_transfer() {
        let (mut a, mut b, ma, mb) = pair();
        let payload: Vec<u8> = (0..300_000u32).map(|i| (i * 31 % 256) as u8).collect();
        let expect = payload.clone();
        let mut rx = mb.open(NodeId(0), 9);
        let reader = std::thread::spawn(move || {
            let mut out = Vec::new();
            rx.read_to_end(&mut b, &mut out);
            (out, rx.reordered_chunks())
        });
        let mut tx = ma.open(NodeId(1), 9);
        tx.write(&mut a, &payload);
        tx.finish(&mut a);
        // Keep servicing acks until the reader is done.
        let (out, _reordered) = reader.join().expect("reader");
        assert_eq!(out.len(), expect.len());
        assert_eq!(out, expect);
    }

    #[test]
    fn out_of_order_chunks_reassemble() {
        // Drive RecvState directly with shuffled sequences.
        let mut st = RecvState::default();
        st.admit(2, 0, vec![5, 6]);
        st.admit(0, 0, vec![1, 2]);
        assert_eq!(st.ready.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        st.admit(1, 0, vec![3, 4]);
        assert_eq!(
            st.ready.iter().copied().collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5, 6]
        );
        assert_eq!(st.reordered, 1);
        st.admit(3, FLAG_FIN, vec![]);
        assert!(st.fin_seen);
    }

    #[test]
    fn empty_write_is_noop_and_records_roundtrip_empty() {
        let (mut a, mut b, ma, mb) = pair();
        let mut tx = ma.open(NodeId(1), 3);
        let mut rx = mb.open(NodeId(0), 3);
        tx.write(&mut a, &[]);
        tx.write_record(&mut a, &[]);
        tx.finish(&mut a);
        assert_eq!(rx.read_record(&mut b).expect("empty record").len(), 0);
        assert!(rx.read_record(&mut b).is_none(), "then EOF");
    }
}
