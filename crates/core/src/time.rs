//! Time sources and round-trip estimation for real-network fabrics.
//!
//! The protocol core keeps a single `now: u64` and compares it against
//! retransmission deadlines; *what* that number means is the
//! [`TimeSource`]'s business. The in-memory fabrics use the virtual tick
//! (one unit per `extract` call), which keeps every protocol run
//! deterministic and replayable. A real-socket fabric cannot: wire latency
//! is physical, so a fixed tick timer either spins (ticks racing far ahead
//! of the wire, retransmitting frames that are merely in flight) or stalls
//! (a blocked extract loop freezing every deadline). [`TimeSource::WallMicros`]
//! maps `now` to elapsed wall-clock microseconds instead, and the
//! [`RttEstimator`] adapts the retransmission timeout to the measured ack
//! round trip per RFC 6298 — SRTT/RTTVAR smoothing with Karn's rule
//! (retransmitted slots never contribute samples, because their ack is
//! ambiguous between transmissions).

use std::time::Instant;

/// What one unit of the endpoint's `now` clock means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeSource {
    /// One unit per `extract` call — no real-time dependency, fully
    /// deterministic. The default, and what every in-memory fabric and
    /// the testbed simulator use.
    #[default]
    VirtualTick,
    /// Elapsed wall-clock microseconds since the endpoint's first
    /// `extract`, pinned to strictly monotonic (an extract burst faster
    /// than the microsecond clock still advances `now` by at least one,
    /// so trace stamps never collide and timer math never sees a frozen
    /// clock). The UDP fabric forces this mode.
    WallMicros,
}

/// RFC 6298 retransmission-timeout estimator, in integer clock units
/// (microseconds under [`TimeSource::WallMicros`]).
///
/// First sample: `srtt = rtt`, `rttvar = rtt / 2`. After that:
/// `rttvar = 3/4 rttvar + 1/4 |srtt - rtt|`, `srtt = 7/8 srtt + 1/8 rtt`.
/// The published RTO is `srtt + max(4 * rttvar, 1)` clamped to
/// `[min_rto, max_rto]` — the clamp floor replaces the RFC's 1-second
/// minimum, which would be absurd on a microsecond-scale loopback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RttEstimator {
    srtt: u64,
    rttvar: u64,
    rto: u64,
    min_rto: u64,
    max_rto: u64,
    samples: u64,
}

impl RttEstimator {
    /// Start with `initial_rto` (used until the first sample arrives) and
    /// clamp every adapted RTO into `[min_rto, max_rto]`.
    pub fn new(initial_rto: u64, min_rto: u64, max_rto: u64) -> Self {
        let min_rto = min_rto.max(1);
        let max_rto = max_rto.max(min_rto);
        RttEstimator {
            srtt: 0,
            rttvar: 0,
            rto: initial_rto.clamp(min_rto, max_rto),
            min_rto,
            max_rto,
            samples: 0,
        }
    }

    /// Fold in one send→ack round-trip measurement. The caller enforces
    /// Karn's rule: samples from slots that were ever retransmitted must
    /// not reach this method.
    pub fn on_sample(&mut self, rtt: u64) {
        if self.samples == 0 {
            self.srtt = rtt;
            self.rttvar = rtt / 2;
        } else {
            let deviation = self.srtt.abs_diff(rtt);
            self.rttvar = (3 * self.rttvar + deviation) / 4;
            self.srtt = (7 * self.srtt + rtt) / 8;
        }
        self.samples += 1;
        self.rto = (self.srtt + (4 * self.rttvar).max(1)).clamp(self.min_rto, self.max_rto);
    }

    /// The current retransmission timeout.
    pub fn rto(&self) -> u64 {
        self.rto
    }

    /// Smoothed round-trip time, once at least one sample has landed.
    pub fn srtt(&self) -> Option<u64> {
        (self.samples > 0).then_some(self.srtt)
    }

    /// Round-trip variance estimate, once at least one sample has landed.
    pub fn rttvar(&self) -> Option<u64> {
        (self.samples > 0).then_some(self.rttvar)
    }

    /// Samples folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The clamp bounds `(min_rto, max_rto)` every published RTO obeys.
    pub fn bounds(&self) -> (u64, u64) {
        (self.min_rto, self.max_rto)
    }
}

/// A monotonic microsecond clock for transport-level pacing (handshake
/// retries and the like) that must not depend on the endpoint's
/// configured [`TimeSource`].
#[derive(Debug, Clone, Copy)]
pub struct MicroClock {
    origin: Instant,
}

impl MicroClock {
    pub fn start() -> Self {
        MicroClock {
            origin: Instant::now(),
        }
    }

    /// Microseconds elapsed since [`MicroClock::start`].
    pub fn micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// One round of splitmix64 — the mixer behind the seed derivations here
/// and the trace-id minting in `endpoint.rs`.
#[inline]
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the retransmit-jitter PRNG seed for one endpoint from the run
/// seed and the node id. Pure and stable across processes: a multi-node
/// soak split over several OS processes reproduces the exact per-node
/// jitter sequences of the same soak run in one process, as long as every
/// process was handed the same run seed. (The previous scheme folded the
/// node id into a constant with xor — fine in one address space, but with
/// no run-seed input at all, so separate processes could never be steered
/// from a single seed.)
pub fn derive_jitter_seed(run_seed: u64, node: u16) -> u64 {
    splitmix64(splitmix64(run_seed) ^ ((node as u64) << 17) ^ (node as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes_per_rfc() {
        let mut e = RttEstimator::new(2048, 1, 1 << 16);
        assert_eq!(e.rto(), 2048, "initial RTO holds before any sample");
        assert_eq!(e.srtt(), None);
        e.on_sample(100);
        assert_eq!(e.srtt(), Some(100));
        assert_eq!(e.rttvar(), Some(50));
        assert_eq!(e.rto(), 100 + 200);
    }

    #[test]
    fn converges_to_constant_rtt() {
        let mut e = RttEstimator::new(2048, 1, 1 << 16);
        for _ in 0..64 {
            e.on_sample(500);
        }
        assert_eq!(e.srtt(), Some(500));
        // Variance decays toward zero on a constant trace; the max(.., 1)
        // keeps the RTO strictly above SRTT.
        assert!(e.rttvar().unwrap() <= 1, "{e:?}");
        assert!(e.rto() > 500 && e.rto() <= 510, "{e:?}");
    }

    #[test]
    fn rto_respects_clamp_bounds() {
        let mut e = RttEstimator::new(1000, 400, 5000);
        e.on_sample(1); // tiny RTT: clamped up to min_rto
        assert_eq!(e.rto(), 400);
        for _ in 0..8 {
            e.on_sample(1_000_000); // huge RTT: clamped down to max_rto
        }
        assert_eq!(e.rto(), 5000);
    }

    #[test]
    fn jitter_seed_is_pure_and_decorrelated() {
        assert_eq!(derive_jitter_seed(7, 3), derive_jitter_seed(7, 3));
        assert_ne!(derive_jitter_seed(7, 3), derive_jitter_seed(7, 4));
        assert_ne!(derive_jitter_seed(7, 3), derive_jitter_seed(8, 3));
        // Zero inputs still mix to something non-degenerate.
        assert_ne!(derive_jitter_seed(0, 0), 0);
    }
}
