//! Contexts: multiple logical processes sharing one FM endpoint — a
//! working sketch of the paper's Section-7 plan ("we are exploring the
//! software and hardware issues in extending FM to provide higher
//! performance, multitasking (protection), and preemptive messaging"),
//! along the lines FM 2.x later took.
//!
//! A [`ContextTable`] partitions the 16-bit handler-id space into fixed
//! 256-id context windows. Each [`ContextHandle`] can only register
//! handlers inside its own window, delivery accounting is per-context, and
//! revoking a context atomically unregisters everything it installed —
//! the isolation a multiprogrammed node needs, implemented entirely above
//! the unchanged FM frame format (the context id travels in the high byte
//! of the handler id, so senders name `(context, handler)` pairs exactly
//! like a 1995 job scheduler would have assigned them).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::handler::{HandlerId, Outbox};
use crate::mem::MemEndpoint;
use fm_myrinet::NodeId;

/// Handler ids per context window.
pub const CONTEXT_WINDOW: u16 = 256;

/// A context id (the high byte of the handler-id space). Context 0 is
/// reserved: its window holds the endpoint-internal handlers (segmentation
/// lives at id 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContextId(pub u8);

impl ContextId {
    /// The global handler id for `local` within this context.
    pub fn handler(self, local: u8) -> HandlerId {
        HandlerId(self.0 as u16 * CONTEXT_WINDOW + local as u16)
    }
}

/// Per-context accounting shared with the installed handlers.
#[derive(Debug, Default)]
struct ContextStats {
    delivered: AtomicU64,
    bytes: AtomicU64,
}

/// Manages context allocation on one endpoint.
#[derive(Debug)]
pub struct ContextTable {
    /// Which context ids are live; index 0 reserved.
    live: [bool; 256],
}

impl Default for ContextTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ContextTable {
    pub fn new() -> Self {
        let mut live = [false; 256];
        live[0] = true; // reserved for endpoint internals
        ContextTable { live }
    }

    /// Allocate the next free context.
    pub fn create(&mut self) -> Option<ContextHandle> {
        let id = (1..256).find(|&i| !self.live[i])?;
        self.live[id] = true;
        Some(ContextHandle {
            id: ContextId(id as u8),
            installed: Vec::new(),
            stats: Arc::new(ContextStats::default()),
        })
    }

    /// Number of live contexts (excluding the reserved one).
    pub fn live_count(&self) -> usize {
        self.live[1..].iter().filter(|&&b| b).count()
    }

    /// Revoke a context: every handler it installed is unregistered and
    /// its id becomes reusable. Returns how many handlers were removed.
    pub fn revoke(&mut self, ctx: ContextHandle, ep: &mut MemEndpoint) -> usize {
        let mut removed = 0;
        for hid in &ctx.installed {
            if ep.unregister_handler(*hid) {
                removed += 1;
            }
        }
        self.live[ctx.id.0 as usize] = false;
        removed
    }
}

/// One logical process's capability to use the endpoint.
#[derive(Debug)]
pub struct ContextHandle {
    id: ContextId,
    installed: Vec<HandlerId>,
    stats: Arc<ContextStats>,
}

impl ContextHandle {
    pub fn id(&self) -> ContextId {
        self.id
    }

    /// Register a handler at a *local* id within this context's window.
    /// The wrapper adds per-context delivery accounting.
    ///
    /// # Panics
    /// Panics if the local id is already installed by this context — ids
    /// are a namespace the context owns, so reuse is a caller bug.
    pub fn register(
        &mut self,
        ep: &mut MemEndpoint,
        local: u8,
        mut h: impl FnMut(&mut Outbox, NodeId, &[u8]) + Send + 'static,
    ) -> HandlerId {
        let gid = self.id.handler(local);
        assert!(
            !self.installed.contains(&gid),
            "context {:?} already installed local handler {local}",
            self.id
        );
        let stats = self.stats.clone();
        ep.register_handler_at(gid, move |out, src, data| {
            stats.delivered.fetch_add(1, Ordering::Relaxed);
            stats.bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
            h(out, src, data);
        });
        self.installed.push(gid);
        gid
    }

    /// Messages delivered into this context so far.
    pub fn delivered(&self) -> u64 {
        self.stats.delivered.load(Ordering::Relaxed)
    }

    /// Payload bytes delivered into this context so far.
    pub fn bytes(&self) -> u64 {
        self.stats.bytes.load(Ordering::Relaxed)
    }

    /// Handlers this context has installed.
    pub fn installed(&self) -> &[HandlerId] {
        &self.installed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemCluster;

    #[test]
    fn context_ids_partition_the_handler_space() {
        assert_eq!(ContextId(1).handler(0), HandlerId(256));
        assert_eq!(ContextId(1).handler(255), HandlerId(511));
        assert_eq!(ContextId(2).handler(0), HandlerId(512));
    }

    #[test]
    fn contexts_isolate_and_account_deliveries() {
        let mut nodes = MemCluster::new(2);
        let mut b = nodes.pop().expect("node 1");
        let mut a = nodes.pop().expect("node 0");
        let mut table = ContextTable::new();
        let mut web = table.create().expect("ctx");
        let mut db = table.create().expect("ctx");
        assert_ne!(web.id(), db.id());
        assert_eq!(table.live_count(), 2);

        let h_web = web.register(&mut b, 0, |_, _, _| {});
        let h_db = db.register(&mut b, 0, |_, _, _| {});
        assert_ne!(h_web, h_db, "same local id, different global ids");

        a.send(NodeId(1), h_web, b"www");
        a.send(NodeId(1), h_db, b"sql-1");
        a.send(NodeId(1), h_db, b"sql-2");
        while b.extract() > 0 {}

        assert_eq!(web.delivered(), 1);
        assert_eq!(web.bytes(), 3);
        assert_eq!(db.delivered(), 2);
        assert_eq!(db.bytes(), 10);
    }

    #[test]
    fn revoke_unregisters_everything() {
        let mut nodes = MemCluster::new(2);
        let mut b = nodes.pop().expect("node 1");
        let mut a = nodes.pop().expect("node 0");
        let mut table = ContextTable::new();
        let mut ctx = table.create().expect("ctx");
        let h0 = ctx.register(&mut b, 0, |_, _, _| {});
        let _h1 = ctx.register(&mut b, 1, |_, _, _| {});
        let removed = table.revoke(ctx, &mut b);
        assert_eq!(removed, 2);
        assert_eq!(table.live_count(), 0);

        // Messages to the dead context are consumed as unknown handlers —
        // no cross-context leakage, no crash.
        a.send(NodeId(1), h0, b"zombie");
        b.extract();
        assert_eq!(b.stats().unknown_handler, 1);

        // The id is recyclable.
        let again = table.create().expect("ctx");
        assert_eq!(again.id(), ContextId(1));
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn double_local_registration_is_a_bug() {
        let mut nodes = MemCluster::new(1);
        let mut a = nodes.pop().expect("node 0");
        let mut table = ContextTable::new();
        let mut ctx = table.create().expect("ctx");
        ctx.register(&mut a, 7, |_, _, _| {});
        ctx.register(&mut a, 7, |_, _, _| {});
    }

    #[test]
    fn exhausting_contexts_returns_none() {
        let mut table = ContextTable::new();
        let mut held = Vec::new();
        for _ in 0..255 {
            held.push(table.create().expect("capacity"));
        }
        assert!(table.create().is_none(), "256th user context must fail");
    }
}
