//! # fm-core — Illinois Fast Messages (FM) 1.0
//!
//! The messaging layer the paper contributes, implemented as a real Rust
//! library. FM's interface is deliberately tiny (paper Table 1):
//!
//! | Call | Meaning |
//! |---|---|
//! | `FM_send_4(dest, handler, i0..i3)` | send a four-word message |
//! | `FM_send(dest, handler, buf, size)` | send a message of up to 32 words (128 B) |
//! | `FM_extract()` | dequeue and process received messages |
//!
//! Each message carries a **handler** — a sender-specified function id that
//! consumes the data at the destination, like Active Messages but with no
//! request/reply coupling. Message buffers do not persist past the handler's
//! return.
//!
//! Under the interface sit the paper's two protocol mechanisms:
//!
//! * **four-queue buffer management** ([`queues`]) — LANai send queue,
//!   LANai receive queue, host receive queue, host reject queue,
//!   coordinated with a pair of monotonic counters (`hostsent` /
//!   `lanaisent`) so host and coprocessor each own one counter and
//!   synchronization stays minimal (Section 4.4);
//! * **return-to-sender flow control** ([`flow`]) — senders transmit
//!   optimistically while reserving a local reject-queue slot per
//!   outstanding packet; a full receiver bounces packets back to their
//!   source, which retransmits them later. Buffering grows with a node's
//!   *outstanding* packets, not with cluster size (Section 4.5). Delivery is
//!   guaranteed, ordering is not (Table 3).
//!
//! The protocol logic is pure state machinery ([`endpoint::EndpointCore`])
//! with no I/O or clock, so the same code runs in two harnesses:
//!
//! * [`mem`] — a real runtime across OS threads over in-memory channels
//!   (bytes actually move, handlers actually run); this is what the examples
//!   and most tests use;
//! * `fm-testbed` — the calibrated discrete-event simulation that
//!   regenerates the paper's figures, which reuses [`flow`] for its window
//!   accounting.
//!
//! Messages larger than one frame are *not* part of FM 1.0 — the paper
//! (Section 5) prescribes segmentation and reassembly above the layer. The
//! [`seg`] module implements that prescription as a documented extension
//! used by `fm-mpi` and the examples, and [`stream`] builds ordered byte
//! streams (the paper's TCP-over-FM direction) on top of it.
//!
//! **Beyond the paper — reliability layer.** The paper's fabric (Myrinet)
//! had a bit error rate low enough to treat the wire as perfect; ours is a
//! shared-memory stand-in, so we go further and make loss, duplication and
//! corruption *first-class testable events*: every frame carries a CRC32
//! trailer ([`frame::crc32`]), receivers suppress duplicates and restore
//! order with per-source sequence windows ([`flow::SeqWindow`]), senders
//! run exponential-backoff retransmission timers over the reject queue and
//! declare unresponsive peers dead after a bounded retry budget
//! ([`SendError::PeerUnreachable`]), and [`fault`] injects seeded,
//! deterministic faults underneath it all to prove the machinery works.

pub mod context;
pub mod cost;
pub mod endpoint;
pub mod fabric;
pub mod fault;
pub mod flow;
pub mod frame;
pub mod handler;
pub mod mem;
pub mod queues;
pub mod seg;
pub mod stream;
pub mod switched;
pub mod time;
pub mod udp;

pub use cost::CostModel;
pub use endpoint::{EndpointConfig, EndpointCore, EndpointStats, SendError};
pub use fabric::{spsc_ring, BufferPool, RingConsumer, RingProducer};
pub use fault::{FaultConfig, FaultEvent, FaultInjector, FaultKind, FaultStats, LinkFaults};
pub use flow::{
    ack_word, ack_word_parts, gen_tag, RetransmitConfig, SeqBufferError, SeqClass, SeqWindow,
};
pub use frame::{
    crc32, CodecError, FrameKind, TraceCtx, WireFrame, FM_CRC_BYTES, FM_FRAME_MAX,
    FM_FRAME_PAYLOAD, FM_HEADER_BYTES, FM_HEADER_BYTES_V0, FM_WIRE_VERSION,
};
pub use handler::{Handler, HandlerId, HandlerRegistry, Outbox};
pub use mem::{ClusterRunner, FabricKind, MemCluster, MemEndpoint, ShutdownError};
pub use switched::{SwitchConfig, SwitchRunner, SwitchShard, SwitchStats, SwitchedCluster};
pub use time::{derive_jitter_seed, MicroClock, RttEstimator, TimeSource};
pub use udp::{
    unique_generation, Roster, RosterParseError, UdpConfig, UdpStats, DEFAULT_HELLO_INTERVAL_US,
    UDP_PROTO_VERSION,
};

// The switched runtime routes over the network crate's topology model.
pub use fm_myrinet::SwitchTopology;

// Every endpoint carries an `fm_telemetry::Telemetry` handle (see
// `EndpointCore::telemetry`); re-exported so callers can name the counter /
// metric enums without a separate dependency. Build with the
// `telemetry-off` feature to compile the handle down to nothing.
pub use fm_telemetry::{
    Counter as TelemetryCounter, EventKind as TraceEventKind, Metric as TelemetryMetric,
    Telemetry, TelemetrySnapshot,
};

// FM addresses nodes with the same ids the network does.
pub use fm_myrinet::NodeId;

/// Words in an `FM_send_4` message.
pub const FM_SHORT_WORDS: usize = 4;

/// Maximum words in an `FM_send` message (32 words = 128 bytes, the frame
/// size the paper selects in Section 5).
pub const FM_MAX_WORDS: usize = 32;
