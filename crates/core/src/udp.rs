//! Real-socket UDP transport: the lossy wire the reliability layer was
//! built for.
//!
//! Every in-memory fabric delivers frames perfectly (loss exists only when
//! the [`crate::fault`] injector manufactures it), and the virtual tick
//! clock advances exactly once per `extract`. A UDP socket breaks both
//! assumptions at once: datagrams really can vanish, arrive reordered, or
//! land while the process is descheduled. This module supplies the pieces
//! the endpoint needs to survive that:
//!
//! * a [`Roster`] mapping node ids to socket addresses (static file-style
//!   text first; live addresses are also learned from handshakes);
//! * a hello/hello-ack handshake carrying a protocol **version** and a
//!   per-incarnation **generation**, so a peer that restarted (new
//!   process, fresh sequence space) is *detected* rather than wedging the
//!   stream — the link reports the change and the endpoint calls
//!   [`crate::endpoint::EndpointCore::reset_peer`];
//! * [`UdpLink`], the wiring object `MemEndpoint` drives: nonblocking
//!   sends of already-encoded frames, a drain-until-`WouldBlock` receive
//!   pump, and handshake pacing on its own wall microsecond clock.
//!
//! Control datagrams are distinguished from wire frames by their first
//! byte: every versioned frame starts `0xF0 | version` (v1 = `0xF1`), a
//! legacy v0 frame starts with its kind byte (`0..=2`), and control
//! packets start with [`CTRL_MAGIC`] (`0xE7`), which is neither. A control
//! packet carries its own CRC32; a corrupted one is dropped and the
//! periodic hello retry recovers the exchange.
//!
//! The seeded [`crate::fault::FaultInjector`] composes over this fabric
//! unchanged — it decorates the transmit path *above* the socket, so a
//! loopback soak still sees deterministic drop/dup/corrupt/delay even
//! though the kernel's loopback queue is, in practice, reliable.

use fm_myrinet::NodeId;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::frame::crc32;
use crate::time::MicroClock;

/// Version byte carried in every control datagram. Peers speaking a
/// different version are counted and ignored — a mixed-version cluster
/// fails visibly (no establishment) instead of corrupting streams.
pub const UDP_PROTO_VERSION: u8 = 1;

/// First byte of every control datagram. Chosen to collide with neither
/// the versioned frame marker (`0xF0 | v`) nor a legacy v0 kind byte
/// (`0..=2`).
const CTRL_MAGIC: u8 = 0xE7;

/// Control datagrams are fixed-size: magic, version, kind, reserved,
/// node id (u16 LE), reserved (2), generation (u32 LE), CRC32 (u32 LE).
const CTRL_LEN: usize = 16;

const CTRL_HELLO: u8 = 0;
const CTRL_HELLO_ACK: u8 = 1;

/// Receive buffer size — comfortably above [`crate::frame::FM_FRAME_MAX`]
/// (164 B) so an oversized datagram is read whole and rejected by the
/// decoder instead of truncated into a plausible prefix.
const RECV_BUF: usize = 2048;

/// How often an unestablished peer is re-helloed, in microseconds.
pub const DEFAULT_HELLO_INTERVAL_US: u64 = 20_000;

/// Map node ids to socket addresses. The static half of discovery: every
/// process of a cluster is handed the same roster (a file, a command
/// line, a parent process's stdin), and the hello exchange then confirms
/// liveness, version and generation on top.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Roster {
    addrs: Vec<Option<SocketAddr>>,
}

/// A line the roster text parser could not digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RosterParseError {
    /// 1-based line number.
    pub line: usize,
    pub reason: String,
}

impl std::fmt::Display for RosterParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "roster line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for RosterParseError {}

impl Roster {
    /// An empty roster for a cluster of `n` nodes.
    pub fn new(n: usize) -> Self {
        Roster {
            addrs: vec![None; n],
        }
    }

    /// Record (or overwrite) `node`'s address, growing the roster if it
    /// names a node past the current size.
    pub fn set(&mut self, node: NodeId, addr: SocketAddr) {
        let idx = node.index();
        if idx >= self.addrs.len() {
            self.addrs.resize(idx + 1, None);
        }
        self.addrs[idx] = Some(addr);
    }

    pub fn get(&self, node: NodeId) -> Option<SocketAddr> {
        self.addrs.get(node.index()).copied().flatten()
    }

    /// Cluster size (node ids run `0..len`), including unfilled entries.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Parse the file format: one `<node-id> <addr:port>` pair per line,
    /// blank lines and `#` comments ignored.
    ///
    /// ```text
    /// # two-node loopback pair
    /// 0 127.0.0.1:9000
    /// 1 127.0.0.1:9001
    /// ```
    pub fn parse(text: &str) -> Result<Roster, RosterParseError> {
        let mut roster = Roster::default();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |reason: String| RosterParseError {
                line: i + 1,
                reason,
            };
            let mut parts = line.split_whitespace();
            let (Some(id), Some(addr), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(err(format!("expected `<id> <addr:port>`, got {raw:?}")));
            };
            let id: u16 = id
                .parse()
                .map_err(|e| err(format!("bad node id {id:?}: {e}")))?;
            let addr: SocketAddr = addr
                .parse()
                .map_err(|e| err(format!("bad address {addr:?}: {e}")))?;
            roster.set(NodeId(id), addr);
        }
        Ok(roster)
    }

    /// Serialize back to the [`Roster::parse`] format (unfilled entries
    /// are omitted).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (i, addr) in self.addrs.iter().enumerate() {
            if let Some(addr) = addr {
                out.push_str(&format!("{i} {addr}\n"));
            }
        }
        out
    }
}

/// A generation value unique enough for one cluster's lifetime: wall
/// time, process id and a process-local counter mixed together. Two
/// incarnations of the same node id getting the same generation is the
/// only failure mode (restart would go undetected), so all three inputs
/// have to collide at once.
pub fn unique_generation() -> u32 {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let micros = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u32)
        .unwrap_or(0);
    micros
        ^ std::process::id().rotate_left(16)
        ^ COUNTER
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0x9E37_79B9)
}

/// Everything needed to stand one endpoint up on a UDP socket.
#[derive(Debug, Clone)]
pub struct UdpConfig {
    /// Local bind address (`127.0.0.1:0` picks an ephemeral port; read it
    /// back with `MemEndpoint::udp_local_addr`).
    pub bind: SocketAddr,
    /// Peer addresses; its length is the cluster size. The entry for the
    /// local node is allowed to be absent or stale — the socket binds to
    /// `bind`, not to the roster.
    pub roster: Roster,
    /// This incarnation's generation (default: [`unique_generation`]).
    pub generation: u32,
    /// Hello retry pacing toward unestablished peers, in microseconds.
    pub hello_interval_us: u64,
}

impl UdpConfig {
    pub fn new(bind: SocketAddr, roster: Roster) -> Self {
        UdpConfig {
            bind,
            roster,
            generation: unique_generation(),
            hello_interval_us: DEFAULT_HELLO_INTERVAL_US,
        }
    }
}

/// Wire-level counters for one UDP endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UdpStats {
    /// Frame datagrams handed to the kernel.
    pub datagrams_out: u64,
    /// Datagrams received (frames and control together).
    pub datagrams_in: u64,
    /// Hello datagrams sent.
    pub hellos_sent: u64,
    /// Hello-ack datagrams sent.
    pub hello_acks_sent: u64,
    /// Peer generation changes observed (each one triggered a stream
    /// reset via `EndpointCore::reset_peer`).
    pub generation_changes: u64,
    /// `send_to` failures other than `WouldBlock` (frame treated as lost;
    /// the reliability layer recovers or declares the peer dead).
    pub send_errors: u64,
    /// `send_to` refusals with `WouldBlock` (frame backlogged, retried).
    pub backpressure: u64,
    /// Frames dropped for lack of a roster entry.
    pub no_route: u64,
    /// Control datagrams rejected (bad length, magic payload or CRC).
    pub malformed_ctrl: u64,
    /// Control datagrams from a peer speaking another protocol version.
    pub version_mismatch: u64,
    /// `recv_from` failures other than `WouldBlock`.
    pub recv_errors: u64,
}

impl UdpStats {
    /// Every field as a `("udp_"-prefixed name, value)` pair — the form
    /// the observability exports (gauge columns, telemetry beacons) ship.
    pub fn as_pairs(&self) -> [(&'static str, u64); 11] {
        [
            ("udp_datagrams_out", self.datagrams_out),
            ("udp_datagrams_in", self.datagrams_in),
            ("udp_hellos_sent", self.hellos_sent),
            ("udp_hello_acks_sent", self.hello_acks_sent),
            ("udp_generation_changes", self.generation_changes),
            ("udp_send_errors", self.send_errors),
            ("udp_backpressure", self.backpressure),
            ("udp_no_route", self.no_route),
            ("udp_malformed_ctrl", self.malformed_ctrl),
            ("udp_version_mismatch", self.version_mismatch),
            ("udp_recv_errors", self.recv_errors),
        ]
    }
}

/// Per-peer handshake view.
#[derive(Debug, Clone, Copy, Default)]
struct PeerState {
    /// Last generation seen in a hello/hello-ack from this peer.
    generation: Option<u32>,
    /// A hello-ack (or hello) round trip has completed.
    established: bool,
    /// Next hello retry time (µs on the link clock).
    next_hello: u64,
}

/// One endpoint's UDP wiring: socket, learned roster, handshake state.
/// Driven by `MemEndpoint` exactly like a ring fabric — `send_encoded`
/// from the flush path, [`UdpLink::pump`] from the receive path.
pub struct UdpLink {
    sock: UdpSocket,
    me: NodeId,
    generation: u32,
    peers: Vec<Option<SocketAddr>>,
    state: Vec<PeerState>,
    hello_interval: u64,
    clock: MicroClock,
    recv_buf: Box<[u8; RECV_BUF]>,
    stats: UdpStats,
}

impl std::fmt::Debug for UdpLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpLink")
            .field("me", &self.me)
            .field("generation", &self.generation)
            .field("local", &self.sock.local_addr().ok())
            .field("stats", &self.stats)
            .finish()
    }
}

impl UdpLink {
    /// Bind a fresh socket per `cfg` and wrap it.
    pub(crate) fn bind(me: NodeId, cfg: UdpConfig) -> io::Result<Self> {
        let sock = UdpSocket::bind(cfg.bind)?;
        Self::from_socket(me, sock, cfg.roster, cfg.generation, cfg.hello_interval_us)
    }

    /// Wrap an already-bound socket (the in-process cluster builder binds
    /// all sockets first so the roster can carry real ephemeral ports).
    pub(crate) fn from_socket(
        me: NodeId,
        sock: UdpSocket,
        roster: Roster,
        generation: u32,
        hello_interval_us: u64,
    ) -> io::Result<Self> {
        sock.set_nonblocking(true)?;
        let n = roster.len();
        let peers = (0..n).map(|i| roster.get(NodeId(i as u16))).collect();
        Ok(UdpLink {
            sock,
            me,
            generation,
            peers,
            state: vec![PeerState::default(); n],
            hello_interval: hello_interval_us.max(1),
            clock: MicroClock::start(),
            recv_buf: Box::new([0u8; RECV_BUF]),
            stats: UdpStats::default(),
        })
    }

    pub(crate) fn local_addr(&self) -> io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    pub(crate) fn cluster(&self) -> usize {
        self.peers.len()
    }

    pub(crate) fn stats(&self) -> UdpStats {
        self.stats
    }

    pub(crate) fn generation(&self) -> u32 {
        self.generation
    }

    pub(crate) fn established(&self, peer: NodeId) -> bool {
        self.state
            .get(peer.index())
            .is_some_and(|s| s.established)
    }

    pub(crate) fn peer_generation(&self, peer: NodeId) -> Option<u32> {
        self.state.get(peer.index()).and_then(|s| s.generation)
    }

    /// Send one already-encoded frame toward node `dst`. Returns `false`
    /// only on `WouldBlock` (kernel buffer full: backlog and retry); any
    /// other failure consumes the frame as wire loss — this is the lossy
    /// transport the retransmission timers exist for.
    pub(crate) fn send_encoded(&mut self, dst: usize, bytes: &[u8]) -> bool {
        let Some(addr) = self.peers.get(dst).copied().flatten() else {
            self.stats.no_route += 1;
            return true;
        };
        match self.sock.send_to(bytes, addr) {
            Ok(_) => {
                self.stats.datagrams_out += 1;
                true
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                self.stats.backpressure += 1;
                false
            }
            Err(_) => {
                self.stats.send_errors += 1;
                true
            }
        }
    }

    /// Drain the socket until `WouldBlock`, feeding wire frames to
    /// `frame_sink` and handling control datagrams inline. `reset` is
    /// invoked once per peer whose generation changed — the caller wipes
    /// that peer's stream state ([`crate::endpoint::EndpointCore::reset_peer`]).
    /// Also paces hello retries. Returns the number of frame datagrams
    /// delivered to the sink.
    pub(crate) fn pump(
        &mut self,
        mut frame_sink: impl FnMut(&[u8]),
        mut reset: impl FnMut(NodeId),
    ) -> u64 {
        self.maintain();
        let mut frames = 0u64;
        let mut errors = 0u32;
        loop {
            let (n, from) = match self.sock.recv_from(&mut self.recv_buf[..]) {
                Ok(r) => r,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    // E.g. ECONNREFUSED bounced back from a dead peer's
                    // port: each recv consumes one queued error, so keep
                    // draining (bounded, in case of a persistent failure)
                    // rather than letting errors starve frame reception.
                    self.stats.recv_errors += 1;
                    errors += 1;
                    if errors >= 64 {
                        break;
                    }
                    continue;
                }
            };
            self.stats.datagrams_in += 1;
            if n >= 1 && self.recv_buf[0] == CTRL_MAGIC {
                // Copy out of the receive buffer so the handler can borrow
                // self mutably (control packets are rare and tiny).
                let mut ctrl = [0u8; CTRL_LEN];
                if n == CTRL_LEN {
                    ctrl.copy_from_slice(&self.recv_buf[..CTRL_LEN]);
                    self.on_control(&ctrl, from, &mut reset);
                } else {
                    self.stats.malformed_ctrl += 1;
                }
            } else {
                frames += 1;
                frame_sink(&self.recv_buf[..n]);
            }
        }
        frames
    }

    /// Send due hellos toward peers that have not completed a handshake.
    fn maintain(&mut self) {
        let now = self.clock.micros();
        for idx in 0..self.peers.len() {
            if idx == self.me.index() || self.peers[idx].is_none() {
                continue;
            }
            let st = &self.state[idx];
            if st.established || now < st.next_hello {
                continue;
            }
            self.state[idx].next_hello = now + self.hello_interval;
            self.send_ctrl(CTRL_HELLO, self.peers[idx].unwrap());
            self.stats.hellos_sent += 1;
        }
    }

    fn send_ctrl(&mut self, kind: u8, to: SocketAddr) {
        let buf = encode_ctrl(kind, self.me.0, self.generation);
        match self.sock.send_to(&buf, to) {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Dropped; the hello pacing (or the peer's retry) recovers.
                self.stats.backpressure += 1;
            }
            Err(_) => self.stats.send_errors += 1,
        }
    }

    fn on_control(
        &mut self,
        buf: &[u8; CTRL_LEN],
        from: SocketAddr,
        reset: &mut impl FnMut(NodeId),
    ) {
        let (kind, node, generation) = match decode_ctrl(buf) {
            Ok(parts) => parts,
            Err(CtrlError::Version) => {
                self.stats.version_mismatch += 1;
                return;
            }
            Err(CtrlError::Malformed) => {
                self.stats.malformed_ctrl += 1;
                return;
            }
        };
        let idx = node as usize;
        if node == self.me.0 || idx >= self.peers.len() {
            self.stats.malformed_ctrl += 1;
            return;
        }
        // Learn (or refresh) the peer's live address: a restarted peer may
        // come back from a different ephemeral port than the roster says.
        self.peers[idx] = Some(from);
        let st = &mut self.state[idx];
        if let Some(old) = st.generation {
            if old != generation {
                // The peer restarted: new incarnation, fresh sequence
                // space. Tell the endpoint to reset the streams.
                self.stats.generation_changes += 1;
                reset(NodeId(node));
            }
        }
        st.generation = Some(generation);
        st.established = true;
        if kind == CTRL_HELLO {
            self.send_ctrl(CTRL_HELLO_ACK, from);
            self.stats.hello_acks_sent += 1;
        }
    }
}

enum CtrlError {
    Malformed,
    Version,
}

fn encode_ctrl(kind: u8, node: u16, generation: u32) -> [u8; CTRL_LEN] {
    let mut buf = [0u8; CTRL_LEN];
    buf[0] = CTRL_MAGIC;
    buf[1] = UDP_PROTO_VERSION;
    buf[2] = kind;
    buf[4..6].copy_from_slice(&node.to_le_bytes());
    buf[8..12].copy_from_slice(&generation.to_le_bytes());
    let crc = crc32(&buf[..12]);
    buf[12..16].copy_from_slice(&crc.to_le_bytes());
    buf
}

fn decode_ctrl(buf: &[u8; CTRL_LEN]) -> Result<(u8, u16, u32), CtrlError> {
    let crc = u32::from_le_bytes(buf[12..16].try_into().unwrap());
    if buf[0] != CTRL_MAGIC || crc32(&buf[..12]) != crc {
        return Err(CtrlError::Malformed);
    }
    if buf[1] != UDP_PROTO_VERSION {
        return Err(CtrlError::Version);
    }
    let kind = buf[2];
    if kind != CTRL_HELLO && kind != CTRL_HELLO_ACK {
        return Err(CtrlError::Malformed);
    }
    let node = u16::from_le_bytes(buf[4..6].try_into().unwrap());
    let generation = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    Ok((kind, node, generation))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_text_round_trips() {
        let text = "# pair\n0 127.0.0.1:9000\n\n1 127.0.0.1:9001 # b\n";
        let roster = Roster::parse(text).unwrap();
        assert_eq!(roster.len(), 2);
        assert_eq!(
            roster.get(NodeId(1)).unwrap(),
            "127.0.0.1:9001".parse().unwrap()
        );
        let reparsed = Roster::parse(&roster.to_text()).unwrap();
        assert_eq!(reparsed, roster);
    }

    #[test]
    fn roster_parse_reports_line_numbers() {
        let err = Roster::parse("0 127.0.0.1:9000\nnot a line\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = Roster::parse("0 127.0.0.1:notaport\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("bad address"), "{err}");
    }

    #[test]
    fn control_datagram_round_trips() {
        let buf = encode_ctrl(CTRL_HELLO, 7, 0xDEAD_BEEF);
        assert_eq!(buf[0], CTRL_MAGIC);
        let (kind, node, generation) = decode_ctrl(&buf).ok().unwrap();
        assert_eq!((kind, node, generation), (CTRL_HELLO, 7, 0xDEAD_BEEF));
    }

    #[test]
    fn control_decode_rejects_damage_and_versions() {
        let mut buf = encode_ctrl(CTRL_HELLO_ACK, 3, 42);
        buf[9] ^= 0x10; // corrupt the generation: CRC must catch it
        assert!(matches!(decode_ctrl(&buf), Err(CtrlError::Malformed)));
        let mut buf = encode_ctrl(CTRL_HELLO, 3, 42);
        buf[1] = UDP_PROTO_VERSION + 1;
        let crc = crc32(&buf[..12]).to_le_bytes();
        buf[12..16].copy_from_slice(&crc);
        assert!(matches!(decode_ctrl(&buf), Err(CtrlError::Version)));
        let mut buf = encode_ctrl(CTRL_HELLO, 3, 42);
        buf[2] = 9; // unknown kind
        let crc = crc32(&buf[..12]).to_le_bytes();
        buf[12..16].copy_from_slice(&crc);
        assert!(matches!(decode_ctrl(&buf), Err(CtrlError::Malformed)));
    }

    #[test]
    fn ctrl_magic_collides_with_no_frame_first_byte() {
        // v1 frames start 0xF0|1, legacy v0 frames start with kind 0..=2.
        assert_ne!(CTRL_MAGIC & 0xF0, 0xF0);
        const { assert!(CTRL_MAGIC > 2) };
    }

    #[test]
    fn generations_are_distinct_in_process() {
        let a = unique_generation();
        let b = unique_generation();
        assert_ne!(a, b);
    }
}
