//! Calibrated cost model for the campaign simulator.
//!
//! The live switched runtime (threads over SPSC rings) cannot reach a
//! million endpoints on one machine, so `fm-sim` replays its disciplines —
//! windowed return-to-sender flow control, DRR shard service, per-source
//! receive-ring quotas — as discrete events on `fm-des`. Events need costs;
//! these constants are those costs, **calibrated from the committed live
//! measurements** in `BENCH_scaling.json` rather than invented:
//!
//! | constant | value | derivation |
//! |---|---|---|
//! | [`CostModel::host_frame_ps`] | 1 470 000 | n=2 pair streams 128 B messages at 83.18 MB/s ⇒ the bottleneck pipeline stage (one endpoint servicing one frame) takes 128 / (83.18·2²⁰) s ≈ 1.47 µs |
//! | [`CostModel::shard_frame_ps`] | 390 000 | n=2 p50 one-way latency is 3.33 µs = send host + shard + recv host ⇒ 3.33 − 2·1.47 ≈ 0.39 µs per switch traversal |
//! | [`CostModel::link_hop_ps`] | 160 000 | residual of the n=8→16 latency step (11.26 → 38.91 µs p50 crossing from 1 to 3 switch hops) after queueing: ~0.16 µs of serialization/propagation per extra trunk |
//! | [`CostModel::ack_reverse_ps`] | 500 000 | acks batch four-to-a-frame on the live path; the aggregate reverse delay per acked frame is a fraction of a forward traversal |
//! | [`CostModel::bounce_reverse_ps`] | 700 000 | a bounce is a full (headers-only) frame retracing the path; cheaper than data, dearer than a batched ack |
//!
//! The reverse-path constants are *aggregate* approximations: the simulator
//! routes data frames hop-by-hop through contended switch processes but
//! charges acks and bounces a single delay, because the live runtime's
//! reverse traffic is tiny (4-to-a-frame acks) and never the bottleneck in
//! any committed measurement. The validity envelope — where the simulation
//! is trusted because it was checked against the live runtime — is
//! documented in `DESIGN.md` and enforced by `crates/sim/tests/sim_vs_live.rs`.
//!
//! Everything is a plain `u64` picosecond count (the unit of
//! `fm_des::Time`); this crate deliberately does not depend on `fm-des`,
//! so the simulator converts at its boundary.

/// Per-event costs of the simulated switched runtime, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// One endpoint servicing one 128-byte frame (send-side admission or
    /// receive-side extract+handler). The pipeline bottleneck stage.
    pub host_frame_ps: u64,
    /// One switch shard forwarding one frame (poll, route, push).
    pub shard_frame_ps: u64,
    /// Serialization + propagation of one frame over one trunk.
    pub link_hop_ps: u64,
    /// Aggregate reverse-path delay of an acknowledgement (batched).
    pub ack_reverse_ps: u64,
    /// Aggregate reverse-path delay of a return-to-sender bounce.
    pub bounce_reverse_ps: u64,
    /// Initial retransmission timeout for the simulated timer process.
    pub rto_initial_ps: u64,
    /// Ceiling for the exponentially backed-off timeout.
    pub rto_max_ps: u64,
}

impl CostModel {
    /// The model calibrated from `BENCH_scaling.json` (see module docs).
    pub const CALIBRATED: CostModel = CostModel {
        host_frame_ps: 1_470_000,
        shard_frame_ps: 390_000,
        link_hop_ps: 160_000,
        ack_reverse_ps: 500_000,
        bounce_reverse_ps: 700_000,
        // 50 µs initial: an order of magnitude above the unloaded RTT so
        // timers never fire on a healthy fabric (bounces, not timeouts,
        // drive the common recovery path — same policy as the live
        // EndpointConfig), doubling to a 25.6 ms ceiling (9 doublings).
        rto_initial_ps: 50_000_000,
        rto_max_ps: 25_600_000_000,
    };

    /// One-way unloaded delay of a data frame crossing `switch_hops`
    /// switches (≥ 1): both host stages plus per-switch service and the
    /// trunks between switches. This is the zero-contention floor; under
    /// load the simulator's busy servers add queueing on top.
    pub fn unloaded_path_ps(&self, switch_hops: usize) -> u64 {
        let hops = switch_hops.max(1) as u64;
        2 * self.host_frame_ps + hops * self.shard_frame_ps + (hops - 1) * self.link_hop_ps
    }

    /// The backed-off timeout for retransmission `attempt` (0-based),
    /// clamped to [`CostModel::rto_max_ps`]. Saturating: an absurd attempt
    /// count clamps instead of wrapping to a near-zero timer.
    pub fn rto_ps(&self, attempt: u32) -> u64 {
        let shift = attempt.min(63);
        self.rto_initial_ps
            .saturating_mul(1u64 << shift)
            .min(self.rto_max_ps)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::CALIBRATED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_committed_n2_measurements() {
        let m = CostModel::CALIBRATED;
        // Bandwidth: the bottleneck stage must reproduce 83.18 MB/s ± 2%
        // for 128-byte messages (BENCH_scaling.json, pairs k=1).
        let mbs = 128.0 / (m.host_frame_ps as f64 * 1e-12) / (1u64 << 20) as f64;
        assert!((mbs - 83.18).abs() < 2.0, "calibrated bandwidth {mbs}");
        // Latency: the unloaded 1-hop path must reproduce the 3.33 µs p50.
        let p50_us = m.unloaded_path_ps(1) as f64 * 1e-6;
        assert!((p50_us - 3.33).abs() < 0.05, "calibrated latency {p50_us}");
    }

    #[test]
    fn rto_backs_off_and_clamps() {
        let m = CostModel::CALIBRATED;
        assert_eq!(m.rto_ps(0), m.rto_initial_ps);
        assert_eq!(m.rto_ps(1), 2 * m.rto_initial_ps);
        assert_eq!(m.rto_ps(40), m.rto_max_ps);
        assert_eq!(m.rto_ps(u32::MAX), m.rto_max_ps);
        // Monotone non-decreasing.
        let mut prev = 0;
        for a in 0..20 {
            let r = m.rto_ps(a);
            assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    fn unloaded_path_grows_linearly_in_hops() {
        let m = CostModel::CALIBRATED;
        let h1 = m.unloaded_path_ps(1);
        let h3 = m.unloaded_path_ps(3);
        let h5 = m.unloaded_path_ps(5);
        assert_eq!(h3 - h1, 2 * (m.shard_frame_ps + m.link_hop_ps));
        assert_eq!(h5 - h3, h3 - h1);
        assert_eq!(m.unloaded_path_ps(0), h1, "clamped to one switch");
    }
}
