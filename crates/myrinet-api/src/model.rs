//! Trajectory model of `myri_cmd_send_imm` / `myri_cmd_send` between two
//! hosts, on the same hardware substrate FM uses.
//!
//! The API's command pipeline is strictly synchronous
//! (`API_OUTSTANDING = 1`), so the trajectory computation is exact: each
//! message's chain is
//!
//! ```text
//! host: checksum + command block (PIO) [+ staging memcpy for send()]
//!       + payload PIO (imm) --------------------------+
//! LANai: ... next control-loop boundary ... dispatch   | (send() pulls the
//!        [+ host-DMA pull for send()] + wire DMA <-----+  payload by DMA)
//! switch: 550 ns
//! LANai (rx): ... next loop boundary ... receive processing
//!        + host-DMA into a pool buffer
//! host (rx): poll, checksum verify, copy out of the DMA region,
//!        buffer-return handshake (PIO + next loop boundary)
//! host (tx): completion poll + buffer-return handshake before the next
//!        send may be issued
//! ```

use fm_des::{Duration, Time};
use fm_lanai::{instr, DmaEngine, LanaiChip, DMA_SETUP};
use fm_myrinet::{Network, NetworkConfig, NodeId};
use fm_sbus::{BusOp, HostCpu, SBus};

use crate::consts::*;

/// Which API entry point (Figure 9 plots both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApiVariant {
    /// `myri_cmd_send_imm()`: the host moves the payload with PIO.
    SendImm,
    /// `myri_cmd_send()`: the payload is staged in the DMA region and
    /// pulled by the LANai.
    Send,
}

impl ApiVariant {
    pub fn name(self) -> &'static str {
        match self {
            ApiVariant::SendImm => "Myrinet API (myri_cmd_send_imm())",
            ApiVariant::Send => "Myrinet API (myri_cmd_send())",
        }
    }
}

#[derive(Debug)]
struct ApiNode {
    host: HostCpu,
    bus: SBus,
    chip: LanaiChip,
    /// When the LCP control loop next completes an iteration and checks
    /// for work. The loop re-anchors after every serviced command, so the
    /// polling phase drifts with the work performed (as on real hardware)
    /// instead of staying locked to a global grid.
    next_poll: Time,
    /// When this node's (single) receive-pool buffer is free again —
    /// Table 3's "small number of large buffers": the next incoming packet
    /// cannot be accepted until the host has handed the previous buffer
    /// back.
    pool_free: Time,
}

impl ApiNode {
    fn new() -> Self {
        ApiNode {
            host: HostCpu::new(),
            bus: SBus::new(),
            chip: LanaiChip::new(),
            next_poll: Time::ZERO,
            pool_free: Time::ZERO,
        }
    }

    /// When will the LCP notice work posted at `ready`?
    fn lcp_wake(&mut self, ready: Time) -> Time {
        let period = instr(API_LOOP_INSTR).as_ps();
        let mut next = self.next_poll.max(self.chip.proc_free_at());
        if ready > next {
            let behind = ready.as_ps() - next.as_ps();
            next = Time::from_ps(next.as_ps() + behind.div_ceil(period) * period);
        }
        next
    }

    /// The LCP serviced work until `end`. The loop's other queue checks
    /// happen in the same iteration, so work already pending at `end` is
    /// picked up immediately; fresh work waits for a later boundary of the
    /// grid re-anchored at `end`.
    fn lcp_resume(&mut self, end: Time) {
        self.next_poll = end;
    }
}

fn checksum_time(n: usize) -> Duration {
    HostCpu::instr(API_CHECKSUM_INSTR_PER_8B * (n.div_ceil(8) as u64))
}

/// One message end to end. Returns `(receiver_done, sender_released)` —
/// when the receiving application owns the data, and when the sending host
/// may issue its next command.
#[allow(clippy::too_many_arguments)] // internal sim helper: the args are the experiment
fn api_message(
    variant: ApiVariant,
    s: &mut ApiNode,
    r: &mut ApiNode,
    net: &mut Network,
    src: NodeId,
    dst: NodeId,
    n: usize,
    ready: Time,
) -> (Time, Time) {
    // --- sending host -----------------------------------------------------
    let mut t = s.host.run(ready, HostCpu::instr(API_HOST_CMD_INSTR));
    t = s.host.run(t, checksum_time(n));
    if variant == ApiVariant::Send {
        // Stage the payload into the pinned DMA region and write the
        // gather descriptor; the LCP validates the descriptor as part of
        // dispatch (charged below), and pulls the payload by DMA.
        t = s.host.run(t, HostCpu::memcpy(n));
        let (_, reg_end) = s.bus.transact(t, BusOp::PioWrite(16));
        s.host.block_until(reg_end);
        t = reg_end;
    }
    // Command block across the SBus.
    let (_, cmd_end) = s.bus.transact(t, BusOp::PioWrite(API_CMD_BLOCK_BYTES));
    s.host.block_until(cmd_end);
    t = cmd_end;
    if variant == ApiVariant::SendImm {
        // Payload follows by PIO into the LANai's staging buffer.
        let (_, pio_end) = s.bus.transact(t, BusOp::PioWrite(n));
        s.host.block_until(pio_end);
        t = pio_end;
    }

    // --- sending LANai ------------------------------------------------------
    let wake = s.lcp_wake(t);
    let dispatch = if variant == ApiVariant::Send {
        // Gather-descriptor validation and DMA-region bookkeeping on top
        // of the ordinary dispatch.
        API_DISPATCH_INSTR + API_RETURN_INSTR
    } else {
        API_DISPATCH_INSTR
    };
    let mut lt = s.chip.exec(wake, dispatch);
    if variant == ApiVariant::Send {
        // Pull the payload from the DMA region.
        let (_, pull_end) = s.bus.transact(lt + DMA_SETUP, BusOp::DmaBurst(n));
        s.chip.block_until(pull_end);
        lt = pull_end;
    }
    let (dstart, dend) = s.chip.start_dma(lt, DmaEngine::NetOut, n);
    s.chip.block_until(dend);
    s.lcp_resume(dend);
    let d = net.inject(dstart, src, dst, n);

    // --- receiving LANai ----------------------------------------------------
    // The packet can only be accepted once the pool buffer is back.
    let rwake = r.lcp_wake(d.head_at.max(r.pool_free));
    let rexec = r.chip.exec(rwake, API_RECV_INSTR);
    let (_, rend) = r.chip.start_dma(rexec, DmaEngine::NetIn, n);
    let landed = rend.max(d.tail_at);
    r.chip.block_until(landed);
    // Deliver into a pool buffer in the host DMA region.
    let (_, deliv_end) = r.bus.transact(landed + DMA_SETUP, BusOp::DmaBurst(n));
    r.chip.block_until(deliv_end);
    r.lcp_resume(deliv_end);

    // --- receiving host -------------------------------------------------------
    // Poll the status flag across the SBus, verify the checksum, copy out
    // of the DMA region, then hand the buffer pointer back to the LANai.
    let (_, poll_end) = r
        .bus
        .transact(r.host.free_at().max(deliv_end), BusOp::StatusRead);
    r.host.block_until(poll_end);
    let mut ht = r.host.run(poll_end, checksum_time(n));
    ht = r.host.run(ht, HostCpu::memcpy(n));
    ht = r.host.run(ht, HostCpu::instr(API_HOST_HANDSHAKE_INSTR));
    let (_, ret_end) = r.bus.transact(ht, BusOp::PioWrite(8));
    r.host.block_until(ret_end);
    // The LANai absorbs the return at its next boundary (off the critical
    // path for the receiver, but it occupies the LCP).
    let ret_wake = r.lcp_wake(ret_end);
    let ret_done = r.chip.exec(ret_wake, API_RETURN_INSTR);
    r.lcp_resume(ret_done);
    r.pool_free = ret_done;
    let receiver_done = ht;

    // --- sender-side completion + buffer return --------------------------------
    // The LANai only writes the completion flag after finishing its
    // current pass through the feature-laden control loop; the host then
    // spins on the command-status field and performs the buffer-return
    // handshake that the single-buffer pipeline requires before the next
    // send. (None of this is on the *receiver's* critical path, which is
    // why the API's bandwidth suffers far more than its latency.)
    let flag_at = dend + instr(API_LOOP_INSTR);
    let (_, comp_end) = s.bus.transact(s.host.free_at().max(flag_at), BusOp::StatusRead);
    s.host.block_until(comp_end);
    let hs = s
        .host
        .run(comp_end, HostCpu::instr(API_HOST_HANDSHAKE_INSTR));
    let (_, hret_end) = s.bus.transact(hs, BusOp::PioWrite(8));
    s.host.block_until(hret_end);
    let hret_wake = s.lcp_wake(hret_end);
    let freed = s.chip.exec(hret_wake, API_RETURN_INSTR);
    s.lcp_resume(freed);
    // Host learns the buffer is free with one more status read.
    let (_, free_seen) = s.bus.transact(s.host.free_at().max(freed), BusOp::StatusRead);
    s.host.block_until(free_seen);

    (receiver_done, free_seen)
}

/// Ping-pong one-way latency, paper-style (total / 2 rounds).
pub fn run_api_pingpong(variant: ApiVariant, n: usize, rounds: usize) -> Duration {
    assert!(rounds > 0);
    let mut net = Network::new(NetworkConfig::two_hosts());
    let mut a = ApiNode::new();
    let mut b = ApiNode::new();
    let mut t = Time::ZERO;
    for _ in 0..rounds {
        let (done, _) = api_message(variant, &mut a, &mut b, &mut net, NodeId(0), NodeId(1), n, t);
        let (back, _) = api_message(variant, &mut b, &mut a, &mut net, NodeId(1), NodeId(0), n, done);
        t = back;
    }
    Duration::from_ps(t.as_ps() / (2 * rounds as u64))
}

/// Streaming bandwidth in MB/s (2^20), `count` messages of `n` bytes.
pub fn run_api_stream(variant: ApiVariant, n: usize, count: usize) -> f64 {
    assert!(n > 0 && count > 0);
    let mut net = Network::new(NetworkConfig::two_hosts());
    let mut s = ApiNode::new();
    let mut r = ApiNode::new();
    let mut released = std::collections::VecDeque::with_capacity(API_OUTSTANDING);
    let mut last_done = Time::ZERO;
    for _ in 0..count {
        let ready = if released.len() >= API_OUTSTANDING {
            let t: Time = released.pop_front().expect("len checked");
            t.max(s.host.free_at())
        } else {
            s.host.free_at()
        };
        let (done, freed) = api_message(variant, &mut s, &mut r, &mut net, NodeId(0), NodeId(1), n, ready);
        released.push_back(freed);
        last_done = done;
    }
    let elapsed = last_done.since(Time::ZERO);
    (n as f64 * count as f64) / elapsed.as_secs_f64() / (1u64 << 20) as f64
}

/// Latency sweep for Figure 9(a).
pub fn api_latency_sweep(variant: ApiVariant, sizes: &[usize], rounds: usize) -> Vec<(usize, f64)> {
    sizes
        .iter()
        .map(|&n| (n, run_api_pingpong(variant, n, rounds).as_us_f64()))
        .collect()
}

/// Bandwidth sweep for Figure 9(b).
pub fn api_bandwidth_sweep(variant: ApiVariant, sizes: &[usize], count: usize) -> Vec<(usize, f64)> {
    sizes
        .iter()
        .map(|&n| (n, run_api_stream(variant, n, count)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_wake_math() {
        let p = instr(API_LOOP_INSTR);
        let mut node = ApiNode::new();
        // Work posted before the first poll waits for it.
        assert_eq!(node.lcp_wake(Time::ZERO), Time::ZERO);
        // Work posted mid-cycle waits for the next boundary of the grid
        // anchored at next_poll.
        node.next_poll = Time::ZERO + p;
        assert_eq!(node.lcp_wake(Time::from_ns(1)), Time::ZERO + p);
        assert_eq!(
            node.lcp_wake(Time::ZERO + p + Duration::from_ns(1)),
            Time::ZERO + p + p
        );
        // Servicing work re-anchors the loop at the service end, so work
        // already pending then is taken in the same iteration.
        node.lcp_resume(Time::from_us(1000));
        assert_eq!(node.next_poll, Time::from_us(1000));
        assert_eq!(node.lcp_wake(Time::from_us(999)), Time::from_us(1000));
    }

    #[test]
    fn imm_latency_near_105us() {
        // Table 4: myri_cmd_send_imm t0 = 105 us. Small packets.
        let l = run_api_pingpong(ApiVariant::SendImm, 16, 50).as_us_f64();
        assert!((85.0..130.0).contains(&l), "send_imm t0 ~ 105, got {l}");
    }

    #[test]
    fn dma_variant_slower_than_imm() {
        // Table 4: 121 us vs 105 us.
        let imm = run_api_pingpong(ApiVariant::SendImm, 16, 50).as_us_f64();
        let dma = run_api_pingpong(ApiVariant::Send, 16, 50).as_us_f64();
        assert!(
            dma > imm + 5.0,
            "send() {dma} should exceed send_imm() {imm} by >5us"
        );
    }

    #[test]
    fn bandwidth_far_below_fm_at_small_sizes() {
        // Figure 9(b): at short packet sizes the API delivers well under
        // 2 MB/s while FM delivers 10+.
        let b = run_api_stream(ApiVariant::SendImm, 128, 200);
        assert!(b < 2.5, "API 128B bandwidth {b} MB/s");
    }

    #[test]
    fn n_half_is_kilobytes_not_bytes() {
        // The headline: two orders of magnitude worse than FM's 54 B.
        // Find where bandwidth crosses half of its large-message value.
        let sizes = [256usize, 1024, 2048, 4096, 8192, 16384, 32768];
        let bw: Vec<(usize, f64)> = sizes
            .iter()
            .map(|&n| (n, run_api_stream(ApiVariant::SendImm, n, 60)))
            .collect();
        let r_big = bw.last().expect("nonempty").1;
        let half = r_big / 2.0;
        let n_half = bw
            .iter()
            .find(|&&(_, b)| b >= half)
            .expect("half power reached")
            .0;
        assert!(
            (1000..10_000).contains(&n_half),
            "API n_1/2 ~ thousands of bytes, got {n_half} (curve {bw:?})"
        );
    }

    #[test]
    fn stream_deterministic() {
        let a = run_api_stream(ApiVariant::Send, 512, 100);
        let b = run_api_stream(ApiVariant::Send, 512, 100);
        assert_eq!(a, b);
    }
}
