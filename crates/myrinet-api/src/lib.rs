//! # fm-myrinet-api — the commercial baseline (Myrinet API 2.0)
//!
//! The paper's only available comparison point is Myricom's own messaging
//! layer (Section 4.6), shipped with the March-1995 Myrinet distribution.
//! Its *features* are richer than FM's (Table 3) and each one costs LCP
//! cycles or host/LANai synchronization:
//!
//! | feature | Myrinet API 2.0 | cost modeled here |
//! |---|---|---|
//! | data movement | user space, DMA region, scatter-gather | staging copies + descriptor handshakes |
//! | delivery | *not* guaranteed | no acks (sender recycles buffers locally) |
//! | delivery order | preserved | strictly synchronous command pipeline |
//! | reconfiguration | automatic, continuous | a long feature-laden LCP control loop |
//! | buffering | small number of large buffers | one outstanding send; pointer-return handshakes |
//! | fault detection | message checksums | per-byte host checksum |
//!
//! The model is calibrated to the paper's headline comparison: t0 around
//! 105 µs (`myri_cmd_send_imm`) / 121 µs (`myri_cmd_send`) versus FM's
//! 4.1 µs, and a half-power point three-plus kilobytes versus FM's 54 B —
//! the "two orders of magnitude" the paper's abstract leads with. We do
//! not chase Myricom's exact microsecond internals (the binary is long
//! gone); we charge its *feature list* at the same hardware rates as FM
//! and let the gap emerge.

pub mod consts;
pub mod model;

pub use model::{api_bandwidth_sweep, api_latency_sweep, run_api_pingpong, run_api_stream, ApiVariant};
