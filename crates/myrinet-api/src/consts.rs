//! Cost constants of the Myrinet API 2.0 behavioural model.
//!
//! Everything is charged at the same hardware rates as FM (LANai
//! instructions at 160 ns, host instructions at 20 ns, PIO/DMA per
//! `fm-sbus`); the API differs only in *how much* of each it needs — which
//! is exactly the paper's argument.

/// LANai control-loop period, in LANai instructions. The API's loop
/// services automatic network remapping, route validation, buffer pools
/// and scatter-gather state ("automatic, continuous" reconfiguration —
/// Table 3), so a command posted by the host waits for the next loop
/// boundary: up to 40 µs, 20 µs on average.
pub const API_LOOP_INSTR: u64 = 250;

/// LANai instructions to validate and dispatch one send command (route
/// lookup, buffer bookkeeping, header build).
pub const API_DISPATCH_INSTR: u64 = 200;

/// LANai instructions to process one received packet (validate, choose a
/// buffer, update the pool).
pub const API_RECV_INSTR: u64 = 200;

/// LANai instructions to process a buffer-return command from the host.
pub const API_RETURN_INSTR: u64 = 60;

/// Host instructions to build a send command block.
pub const API_HOST_CMD_INSTR: u64 = 20;

/// Host instructions to initiate/complete one pointer handshake.
pub const API_HOST_HANDSHAKE_INSTR: u64 = 10;

/// Command block size written over the SBus per send (descriptor +
/// scatter-gather list).
pub const API_CMD_BLOCK_BYTES: usize = 32;

/// Host checksum cost: instructions per 8 payload bytes ("message
/// checksums", Table 3). 4 instr / 8 B = 10 ns/B on a 50 MHz host.
pub const API_CHECKSUM_INSTR_PER_8B: u64 = 4;

/// Outstanding sends the API allows before the host must wait for a
/// buffer to come back ("small number of large buffers"). The pointer
/// handshake per buffer is what Section 4.6 blames: "synchronization
/// between the host and the LANai is expensive, yet must be done
/// frequently in the Myrinet API, to pass buffer pointers back and forth".
pub const API_OUTSTANDING: usize = 1;

#[cfg(test)]
mod tests {
    use super::*;
    use fm_lanai::instr;

    #[test]
    fn loop_period_is_40us() {
        assert_eq!(instr(API_LOOP_INSTR).as_us_f64(), 40.0);
    }

    #[test]
    fn dispatch_is_32us() {
        assert_eq!(instr(API_DISPATCH_INSTR).as_us_f64(), 32.0);
    }

    #[test]
    fn checksum_rate_is_10ns_per_byte() {
        // 4 host instructions (20 ns) per 8 bytes.
        let ns_per_byte = API_CHECKSUM_INSTR_PER_8B as f64 * 20.0 / 8.0;
        assert_eq!(ns_per_byte, 10.0);
    }
}
