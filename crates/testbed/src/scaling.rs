//! Switch-scaling experiments — beyond the paper's two-node testbed.
//!
//! The paper measures one pair of workstations on an 8-port switch and
//! argues the approach scales; these experiments exercise the switch model
//! with more of its ports occupied:
//!
//! * [`parallel_pairs`] — k disjoint sender/receiver pairs stream
//!   simultaneously. The crossbar is non-blocking for disjoint ports, so
//!   aggregate bandwidth should scale ~linearly until the port count runs
//!   out.
//! * [`incast`] — k senders stream at one receiver. The receiver's input
//!   port serializes the wire, and the receiving LCP serializes the
//!   processing: per-sender goodput should drop as ~1/k while the total
//!   stays near the single-stream rate, and arbitration should be fair.
//!
//! Both run the LANai-level streamed layer (the network-facing part of the
//! stack) driven by the event engine, since multiple independent senders
//! make arrival interleavings state-dependent.

use fm_des::{Engine, Time};
use fm_lanai::{DmaEngine, LanaiChip, LcpCosts};
use fm_myrinet::{Network, NetworkConfig, NodeId};

/// Result of a multi-flow run.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// Flows (sender count).
    pub flows: usize,
    /// Packet payload bytes.
    pub n: usize,
    /// Per-flow delivered bandwidth, MB/s (2^20), indexed by sender.
    pub per_flow_mbs: Vec<f64>,
    /// Aggregate delivered bandwidth, MB/s.
    pub total_mbs: f64,
    /// Jain's fairness index over the per-flow bandwidths (1.0 = fair).
    pub fairness: f64,
}

fn jain(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let s: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        1.0
    } else {
        s * s / (xs.len() as f64 * sq)
    }
}

#[derive(Debug)]
enum Ev {
    /// Sender `i` is ready to push its next packet.
    SenderReady(usize),
    /// Packet from sender `i` fully arrived at its receiver.
    Arrive {
        sender: usize,
        tail: Time,
    },
}

/// Common driver: `senders[i]` streams `count` packets of `n` bytes to
/// `dest_of(i)`; returns per-sender completion statistics.
fn run_flows(
    flows: usize,
    n: usize,
    count: usize,
    net_cfg: NetworkConfig,
    dest_of: impl Fn(usize) -> NodeId,
    src_of: impl Fn(usize) -> NodeId,
) -> ScalingReport {
    let lcp = LcpCosts::streamed();
    let mut net = Network::new(net_cfg);
    let mut send_chips: Vec<LanaiChip> = (0..flows).map(|_| LanaiChip::new()).collect();
    // One receiver chip per distinct destination node.
    let mut recv_chips: std::collections::HashMap<u16, LanaiChip> = Default::default();
    for i in 0..flows {
        recv_chips.entry(dest_of(i).0).or_default();
    }

    let mut sent = vec![0usize; flows];
    let mut delivered = vec![0usize; flows];
    let mut last_delivery = vec![Time::ZERO; flows];

    let mut eng: Engine<Ev> = Engine::new();
    for i in 0..flows {
        eng.schedule_at(Time::ZERO, Ev::SenderReady(i));
    }

    while let Some((now, ev)) = eng.pop() {
        match ev {
            Ev::SenderReady(i) => {
                if sent[i] >= count {
                    continue;
                }
                let chip = &mut send_chips[i];
                let instr = if sent[i] == 0 {
                    lcp.send_path
                } else {
                    lcp.send_stream_instr()
                };
                let exec = chip.exec(now.max(chip.proc_free_at()), instr);
                let (dstart, dend) = chip.start_dma(exec, DmaEngine::NetOut, n);
                chip.block_until(dend);
                sent[i] += 1;
                let d = net.inject(dstart, src_of(i), dest_of(i), n);
                eng.schedule_at(d.head_at, Ev::Arrive { sender: i, tail: d.tail_at });
                eng.schedule_at(dend, Ev::SenderReady(i));
            }
            Ev::Arrive { sender, tail } => {
                // The destination's LCP services arrivals in order.
                let chip = recv_chips
                    .get_mut(&dest_of(sender).0)
                    .expect("receiver chip exists");
                let instr = lcp.recv_stream_instr();
                let exec = chip.exec(now.max(chip.proc_free_at()), instr);
                let (_, rend) = chip.start_dma(exec, DmaEngine::NetIn, n);
                let complete = rend.max(tail);
                chip.block_until(complete);
                delivered[sender] += 1;
                last_delivery[sender] = complete;
            }
        }
    }

    for (i, d) in delivered.iter().enumerate() {
        assert_eq!(*d, count, "flow {i} lost packets");
    }
    let per_flow_mbs: Vec<f64> = (0..flows)
        .map(|i| {
            let elapsed = last_delivery[i].since(Time::ZERO);
            (n as f64 * count as f64) / elapsed.as_secs_f64() / (1u64 << 20) as f64
        })
        .collect();
    let end = last_delivery.iter().copied().max().unwrap_or(Time::ZERO);
    let total_mbs = (n as f64 * count as f64 * flows as f64)
        / end.since(Time::ZERO).as_secs_f64()
        / (1u64 << 20) as f64;
    ScalingReport {
        flows,
        n,
        fairness: jain(&per_flow_mbs),
        per_flow_mbs,
        total_mbs,
    }
}

/// k disjoint pairs: senders are nodes `0..k`, receivers nodes `k..2k`;
/// all ports distinct, so the crossbar should not block.
pub fn parallel_pairs(k: usize, n: usize, count: usize) -> ScalingReport {
    assert!(k >= 1);
    run_flows(
        k,
        n,
        count,
        NetworkConfig::switched(2 * k),
        move |i| NodeId((k + i) as u16),
        |i| NodeId(i as u16),
    )
}

/// k senders (nodes `1..=k`) stream at node 0.
pub fn incast(k: usize, n: usize, count: usize) -> ScalingReport {
    assert!(k >= 1);
    run_flows(
        k,
        n,
        count,
        NetworkConfig::switched(k + 1),
        |_| NodeId(0),
        |i| NodeId((i + 1) as u16),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_pair_matches_two_node_stream() {
        let pairs = parallel_pairs(1, 128, 2000);
        let two_node = crate::sim::run_stream(
            crate::Layer::LanaiStreamed,
            &crate::TestbedConfig::default(),
            128,
            2000,
        );
        let rel = (pairs.total_mbs - two_node.mbs).abs() / two_node.mbs;
        assert!(
            rel < 0.02,
            "event-driven single pair {} vs trajectory {}",
            pairs.total_mbs,
            two_node.mbs
        );
    }

    #[test]
    fn disjoint_pairs_scale_linearly() {
        let one = parallel_pairs(1, 256, 1500);
        let four = parallel_pairs(4, 256, 1500);
        assert!(
            four.total_mbs > 3.8 * one.total_mbs,
            "crossbar must not block disjoint pairs: {} vs 4x{}",
            four.total_mbs,
            one.total_mbs
        );
        assert!(four.fairness > 0.999, "fairness {}", four.fairness);
    }

    #[test]
    fn incast_shares_the_receiver_fairly() {
        let solo = incast(1, 256, 1200);
        let four = incast(4, 256, 1200);
        // Total bounded by the single receiver...
        assert!(
            four.total_mbs <= 1.05 * solo.total_mbs,
            "incast total {} must not exceed one receiver's rate {}",
            four.total_mbs,
            solo.total_mbs
        );
        // ...and close to it (the receiver stays busy).
        assert!(
            four.total_mbs > 0.9 * solo.total_mbs,
            "incast should keep the receiver saturated: {} vs {}",
            four.total_mbs,
            solo.total_mbs
        );
        // Per-flow roughly 1/4 each.
        for f in &four.per_flow_mbs {
            assert!(
                (0.8..1.3).contains(&(f / (solo.total_mbs / 4.0))),
                "per-flow {} vs expected {}",
                f,
                solo.total_mbs / 4.0
            );
        }
        assert!(four.fairness > 0.98, "fairness {}", four.fairness);
    }

    #[test]
    fn jain_index_properties() {
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[5.0]), 1.0);
        assert!((jain(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One flow hogging: index tends to 1/n.
        let skew = jain(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skew - 0.25).abs() < 1e-12);
    }
}
