//! Switch-scaling experiments — beyond the paper's two-node testbed.
//!
//! The paper measures one pair of workstations on an 8-port switch and
//! argues the approach scales; these experiments exercise the switch model
//! with more of its ports occupied:
//!
//! * [`parallel_pairs`] — k disjoint sender/receiver pairs stream
//!   simultaneously. The crossbar is non-blocking for disjoint ports, so
//!   aggregate bandwidth should scale ~linearly until the port count runs
//!   out.
//! * [`incast`] — k senders stream at one receiver. The receiver's input
//!   port serializes the wire, and the receiving LCP serializes the
//!   processing: per-sender goodput should drop as ~1/k while the total
//!   stays near the single-stream rate, and arbitration should be fair.
//!
//! Two implementations coexist:
//!
//! * **Live** ([`live_parallel_pairs`], [`live_incast`]) — the default: a
//!   real `fm-core` [`SwitchedCluster`] with one thread per endpoint and
//!   per switch shard (pairs) or a deterministic round-robin drive
//!   (incast), moving real encoded frames through real switch shards.
//!   These are what `--bin scaling` and `--bin bench_scaling` run.
//! * **Analytic** ([`parallel_pairs`], [`incast`]) — the original
//!   extrapolation from the two-node timing model, driven by the event
//!   engine over the crossbar's occupancy calculator. Kept behind the
//!   `scaling` bin's `--analytic` flag as a comparison baseline, and
//!   because the LANai-level timing claims (linear crossbar scaling, fair
//!   1/k incast sharing) are only expressible there.
//!
//! The analytic runs use the LANai-level streamed layer (the
//! network-facing part of the stack) driven by the event engine, since
//! multiple independent senders make arrival interleavings
//! state-dependent.

use fm_core::{
    EndpointConfig, HandlerId, SwitchRunner, SwitchTopology, SwitchedCluster,
};
use fm_des::{Engine, Time};
use fm_lanai::{DmaEngine, LanaiChip, LcpCosts};
use fm_myrinet::{Network, NetworkConfig, NodeId};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of a multi-flow run.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// Flows (sender count).
    pub flows: usize,
    /// Packet payload bytes.
    pub n: usize,
    /// Per-flow delivered bandwidth, MB/s (2^20), indexed by sender.
    pub per_flow_mbs: Vec<f64>,
    /// Aggregate delivered bandwidth, MB/s.
    pub total_mbs: f64,
    /// Jain's fairness index over the per-flow bandwidths (1.0 = fair).
    pub fairness: f64,
}

/// Jain's fairness index over per-flow rates: 1.0 = perfectly fair,
/// `1/n` = one flow starves the rest. Public so the DES campaign
/// (`fm-sim`) can cross-check that its fairness gate applies the exact
/// formula the live harness reports.
pub fn jain(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let s: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        1.0
    } else {
        s * s / (xs.len() as f64 * sq)
    }
}

#[derive(Debug)]
enum Ev {
    /// Sender `i` is ready to push its next packet.
    SenderReady(usize),
    /// Packet from sender `i` fully arrived at its receiver.
    Arrive {
        sender: usize,
        tail: Time,
    },
}

/// Common driver: `senders[i]` streams `count` packets of `n` bytes to
/// `dest_of(i)`; returns per-sender completion statistics.
fn run_flows(
    flows: usize,
    n: usize,
    count: usize,
    net_cfg: NetworkConfig,
    dest_of: impl Fn(usize) -> NodeId,
    src_of: impl Fn(usize) -> NodeId,
) -> ScalingReport {
    let lcp = LcpCosts::streamed();
    let mut net = Network::new(net_cfg);
    let mut send_chips: Vec<LanaiChip> = (0..flows).map(|_| LanaiChip::new()).collect();
    // One receiver chip per distinct destination node.
    let mut recv_chips: std::collections::HashMap<u16, LanaiChip> = Default::default();
    for i in 0..flows {
        recv_chips.entry(dest_of(i).0).or_default();
    }

    let mut sent = vec![0usize; flows];
    let mut delivered = vec![0usize; flows];
    let mut last_delivery = vec![Time::ZERO; flows];

    let mut eng: Engine<Ev> = Engine::new();
    for i in 0..flows {
        eng.schedule_at(Time::ZERO, Ev::SenderReady(i));
    }

    while let Some((now, ev)) = eng.pop() {
        match ev {
            Ev::SenderReady(i) => {
                if sent[i] >= count {
                    continue;
                }
                let chip = &mut send_chips[i];
                let instr = if sent[i] == 0 {
                    lcp.send_path
                } else {
                    lcp.send_stream_instr()
                };
                let exec = chip.exec(now.max(chip.proc_free_at()), instr);
                let (dstart, dend) = chip.start_dma(exec, DmaEngine::NetOut, n);
                chip.block_until(dend);
                sent[i] += 1;
                let d = net.inject(dstart, src_of(i), dest_of(i), n);
                eng.schedule_at(d.head_at, Ev::Arrive { sender: i, tail: d.tail_at });
                eng.schedule_at(dend, Ev::SenderReady(i));
            }
            Ev::Arrive { sender, tail } => {
                // The destination's LCP services arrivals in order.
                let chip = recv_chips
                    .get_mut(&dest_of(sender).0)
                    .expect("receiver chip exists");
                let instr = lcp.recv_stream_instr();
                let exec = chip.exec(now.max(chip.proc_free_at()), instr);
                let (_, rend) = chip.start_dma(exec, DmaEngine::NetIn, n);
                let complete = rend.max(tail);
                chip.block_until(complete);
                delivered[sender] += 1;
                last_delivery[sender] = complete;
            }
        }
    }

    for (i, d) in delivered.iter().enumerate() {
        assert_eq!(*d, count, "flow {i} lost packets");
    }
    let per_flow_mbs: Vec<f64> = (0..flows)
        .map(|i| {
            let elapsed = last_delivery[i].since(Time::ZERO);
            (n as f64 * count as f64) / elapsed.as_secs_f64() / (1u64 << 20) as f64
        })
        .collect();
    let end = last_delivery.iter().copied().max().unwrap_or(Time::ZERO);
    let total_mbs = (n as f64 * count as f64 * flows as f64)
        / end.since(Time::ZERO).as_secs_f64()
        / (1u64 << 20) as f64;
    ScalingReport {
        flows,
        n,
        fairness: jain(&per_flow_mbs),
        per_flow_mbs,
        total_mbs,
    }
}

/// k disjoint pairs: senders are nodes `0..k`, receivers nodes `k..2k`;
/// all ports distinct, so the crossbar should not block.
pub fn parallel_pairs(k: usize, n: usize, count: usize) -> ScalingReport {
    assert!(k >= 1);
    run_flows(
        k,
        n,
        count,
        NetworkConfig::switched(2 * k),
        move |i| NodeId((k + i) as u16),
        |i| NodeId(i as u16),
    )
}

/// k senders (nodes `1..=k`) stream at node 0.
pub fn incast(k: usize, n: usize, count: usize) -> ScalingReport {
    assert!(k >= 1);
    run_flows(
        k,
        n,
        count,
        NetworkConfig::switched(k + 1),
        |_| NodeId(0),
        |i| NodeId((i + 1) as u16),
    )
}

// ---- live cluster (fm-core switched runtime) ---------------------------

/// Payload bytes per message in the live experiments — one full FM frame.
pub const LIVE_MSG_BYTES: usize = 128;

/// How the live cluster is wired through switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterWiring {
    /// The original shape: one switch up to 8 hosts, then a single-trunk
    /// chain of switches. Cross-switch flows serialize on shared trunks.
    Tree,
    /// The scaling shape: one switch up to 8 hosts, then a two-level
    /// fat tree (leaves + spines) with per-flow trunk spreading.
    Wide,
}

impl ClusterWiring {
    /// Both modes, for parameterized tests.
    pub const ALL: [ClusterWiring; 2] = [ClusterWiring::Tree, ClusterWiring::Wide];

    /// The topology this wiring gives an `n`-host cluster.
    pub fn topology(self, n: usize) -> SwitchTopology {
        match self {
            ClusterWiring::Tree => SwitchTopology::for_cluster(n),
            ClusterWiring::Wide => SwitchTopology::for_cluster_wide(n),
        }
    }
}

/// Result of a live incast run.
#[derive(Debug, Clone)]
pub struct IncastReport {
    /// Senders.
    pub k: usize,
    /// The send window (= reject-queue capacity) each sender ran with.
    pub window: usize,
    /// Peak reject-queue occupancy observed per sender, sampled every
    /// drive round. The paper's Section 4.5 claim under test: this stays
    /// ≤ `window` — and does not grow with `k`.
    pub peak_outstanding: Vec<usize>,
    /// Messages delivered at the receiver (must equal `k × count`).
    pub delivered: u64,
    /// Frames the receiver bounced back to their senders.
    pub rejected: u64,
    /// Aggregate goodput over the wall-clock run, MB/s (2^20).
    pub total_mbs: f64,
    /// Jain's index over per-sender completion rates (deterministic: from
    /// the drive-round index at which each sender's last message landed).
    pub fairness: f64,
}

/// k disjoint neighbor pairs (`2i → 2i+1`) streaming concurrently over a
/// real [`SwitchedCluster`] of `2k` endpoints — one thread per endpoint,
/// one per switch shard. Neighbor pairing keeps most pairs intra-switch on
/// the standard chain shape, so aggregate bandwidth can scale with the
/// pair count the way disjoint crossbar ports do.
pub fn live_parallel_pairs(k: usize, count: usize) -> ScalingReport {
    live_parallel_pairs_wired(k, count, ClusterWiring::Wide)
}

/// [`live_parallel_pairs`] over an explicit [`ClusterWiring`].
pub fn live_parallel_pairs_wired(k: usize, count: usize, wiring: ClusterWiring) -> ScalingReport {
    assert!(k >= 1);
    let n = 2 * k;
    let topo = wiring.topology(n);
    let mut cluster = SwitchedCluster::new(&topo, EndpointConfig::default());
    let counters: Vec<Arc<AtomicU64>> = (0..k).map(|_| Arc::new(AtomicU64::new(0))).collect();
    for (pair, counter) in counters.iter().enumerate() {
        let c = counter.clone();
        cluster.endpoints[2 * pair + 1].register_handler_at(HandlerId(1), move |_, _, _| {
            c.fetch_add(1, Ordering::Relaxed);
        });
    }
    let (endpoints, shards) = cluster.split();
    let switches = SwitchRunner::start(shards);
    let start = Instant::now();
    let payload = [0xA5u8; LIVE_MSG_BYTES];
    let handles: Vec<_> = endpoints
        .into_iter()
        .enumerate()
        .map(|(i, mut ep)| {
            let pair = i / 2;
            let counter = counters[pair].clone();
            std::thread::spawn(move || {
                if i % 2 == 0 {
                    // Sender: blocking-send the stream, then keep servicing
                    // (retransmissions, acks) until the pair completes.
                    let dst = fm_core::NodeId((i + 1) as u16);
                    for _ in 0..count {
                        ep.send(dst, HandlerId(1), &payload);
                    }
                    while (counter.load(Ordering::Relaxed) as usize) < count {
                        ep.extract();
                        std::thread::yield_now();
                    }
                    (pair, None, ep)
                } else {
                    // Receiver: extract until the stream lands, stamp the
                    // pair's completion time, then drain trailing acks.
                    while (counter.load(Ordering::Relaxed) as usize) < count {
                        ep.extract();
                        std::thread::yield_now();
                    }
                    let done = start.elapsed();
                    for _ in 0..20 {
                        ep.extract();
                        std::thread::yield_now();
                    }
                    (pair, Some(done), ep)
                }
            })
        })
        .collect();
    let mut per_pair = vec![Duration::ZERO; k];
    let mut delivered = 0u64;
    for h in handles {
        let (pair, done, ep) = h.join().expect("flow thread panicked");
        if let Some(done) = done {
            per_pair[pair] = done;
            delivered += ep.stats().delivered;
        }
    }
    switches
        .shutdown(Duration::from_secs(10))
        .expect("switch shards join");
    assert_eq!(delivered, (k * count) as u64, "live pairs lost messages");
    let bytes = (LIVE_MSG_BYTES * count) as f64;
    let per_flow_mbs: Vec<f64> = per_pair
        .iter()
        .map(|d| bytes / d.as_secs_f64() / (1u64 << 20) as f64)
        .collect();
    let slowest = per_pair.iter().copied().max().unwrap_or(Duration::ZERO);
    ScalingReport {
        flows: k,
        n: LIVE_MSG_BYTES,
        fairness: jain(&per_flow_mbs),
        total_mbs: bytes * k as f64 / slowest.as_secs_f64() / (1u64 << 20) as f64,
        per_flow_mbs,
    }
}

/// k senders (hosts `1..=k`) blast `count` messages each at host 0 over a
/// real [`SwitchedCluster`], with a receiver deliberately under-provisioned
/// (small receive ring, throttled extract) so return-to-sender bounces
/// actually happen across the switch path. Deterministic single-threaded
/// drive; samples each sender's reject-queue occupancy every round.
pub fn live_incast(k: usize, count: usize, config: EndpointConfig) -> IncastReport {
    live_incast_wired(k, count, config, ClusterWiring::Wide)
}

/// [`live_incast`] over an explicit [`ClusterWiring`].
pub fn live_incast_wired(
    k: usize,
    count: usize,
    config: EndpointConfig,
    wiring: ClusterWiring,
) -> IncastReport {
    assert!(k >= 1);
    let n = k + 1;
    let topo = wiring.topology(n);
    let mut cluster = SwitchedCluster::new(&topo, config);
    let seen: Arc<std::sync::Mutex<HashSet<(u16, u32)>>> = Default::default();
    let counts: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let s2 = seen.clone();
    let c2 = counts.clone();
    cluster.endpoints[0].register_handler_at(HandlerId(1), move |_, src, data| {
        let v = u32::from_le_bytes(data[..4].try_into().unwrap());
        assert!(
            s2.lock().unwrap().insert((src.0, v)),
            "duplicate delivery of {v} from {src:?}"
        );
        c2[src.index()].fetch_add(1, Ordering::Relaxed);
    });
    let mut payload = [0x5Au8; LIVE_MSG_BYTES];
    let mut queued = vec![0u32; n];
    let mut last_seen = vec![0usize; n];
    let mut finish_round = vec![0usize; n];
    let mut peak = vec![0usize; n];
    let start = Instant::now();
    let mut round = 0usize;
    loop {
        round += 1;
        let mut all_sent = true;
        for src in 1..n {
            while (queued[src] as usize) < count {
                payload[..4].copy_from_slice(&queued[src].to_le_bytes());
                match cluster.endpoints[src].try_send(fm_core::NodeId(0), HandlerId(1), &payload) {
                    Ok(()) => queued[src] += 1,
                    Err(_) => break,
                }
            }
            all_sent &= queued[src] as usize == count;
            peak[src] = peak[src].max(cluster.endpoints[src].outstanding());
        }
        // Throttled receiver: a tiny extract budget keeps it overloaded so
        // the reject path stays hot for the whole run.
        cluster.endpoints[0].extract_budget(2);
        for src in 1..n {
            cluster.endpoints[src].service();
        }
        for shard in &mut cluster.shards {
            shard.pump();
        }
        let mut total = 0usize;
        for src in 1..n {
            let got = counts[src].load(Ordering::Relaxed) as usize;
            if got > last_seen[src] {
                last_seen[src] = got;
                finish_round[src] = round;
            }
            total += got;
        }
        if all_sent && total == k * count {
            break;
        }
        assert!(round < 1_000_000, "live incast wedged");
    }
    let elapsed = start.elapsed();
    let rates: Vec<f64> = (1..n).map(|src| count as f64 / finish_round[src] as f64).collect();
    IncastReport {
        k,
        window: config.window,
        peak_outstanding: peak[1..].to_vec(),
        delivered: (k * count) as u64,
        rejected: cluster.endpoints[0].stats().rejected,
        total_mbs: (LIVE_MSG_BYTES * k * count) as f64
            / elapsed.as_secs_f64()
            / (1u64 << 20) as f64,
        fairness: jain(&rates),
    }
}

/// The receiver/sender sizing [`live_incast`] is normally run with: a
/// 32-frame window against an 8-frame receive ring, so K ≥ 1 senders
/// always overrun the receiver and exercise the bounce path.
pub fn incast_config() -> EndpointConfig {
    EndpointConfig {
        window: 32,
        recv_ring: 8,
        retransmit_per_extract: 8,
        ..Default::default()
    }
}

/// Deterministic trunk-capacity measurement: `k` flows all crossing the
/// trunk(s) between two switches (hosts `i → k+i`), with deliberately
/// shallow wire rings so the trunks — not the endpoints — are the
/// bottleneck. Returns the number of single-threaded drive rounds until
/// every flow lands `count` messages.
///
/// Each drive round a trunk ring carries at most `wire_ring` frames, so
/// rounds scale ~`k·count / (wire_ring · effective_trunks)`: wiring
/// `width` parallel trunks divides the round count by roughly the number
/// of trunks the flow hash actually spreads over. Unlike the wall-clock
/// sweeps this is exact and scheduler-independent, which is what makes
/// the multi-trunk speedup CI-gateable.
pub fn rounds_cross_pairs(k: usize, width: usize, count: usize) -> usize {
    assert!(k >= 1 && width >= 1);
    let ports = (k + width).max(8);
    let topo = SwitchTopology::chain_multi(2 * k, k, width, ports);
    let config = EndpointConfig {
        wire_ring: 8,
        ..Default::default()
    };
    let mut cluster = SwitchedCluster::new(&topo, config);
    let counts: Vec<Arc<AtomicU64>> = (0..k).map(|_| Arc::new(AtomicU64::new(0))).collect();
    for (pair, counter) in counts.iter().enumerate() {
        let c = counter.clone();
        cluster.endpoints[k + pair].register_handler_at(HandlerId(1), move |_, _, _| {
            c.fetch_add(1, Ordering::Relaxed);
        });
    }
    let payload = [0x77u8; LIVE_MSG_BYTES];
    let mut queued = vec![0usize; k];
    let mut round = 0usize;
    loop {
        round += 1;
        let mut all_sent = true;
        for (pair, q) in queued.iter_mut().enumerate() {
            while *q < count {
                match cluster.endpoints[pair].try_send(
                    fm_core::NodeId((k + pair) as u16),
                    HandlerId(1),
                    &payload,
                ) {
                    Ok(()) => *q += 1,
                    Err(_) => break,
                }
            }
            all_sent &= *q == count;
        }
        cluster.drive_round();
        if all_sent
            && counts
                .iter()
                .all(|c| c.load(Ordering::Relaxed) as usize == count)
        {
            return round;
        }
        assert!(round < 1_000_000, "cross-pairs wedged at width {width}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_pair_matches_two_node_stream() {
        let pairs = parallel_pairs(1, 128, 2000);
        let two_node = crate::sim::run_stream(
            crate::Layer::LanaiStreamed,
            &crate::TestbedConfig::default(),
            128,
            2000,
        );
        let rel = (pairs.total_mbs - two_node.mbs).abs() / two_node.mbs;
        assert!(
            rel < 0.02,
            "event-driven single pair {} vs trajectory {}",
            pairs.total_mbs,
            two_node.mbs
        );
    }

    #[test]
    fn disjoint_pairs_scale_linearly() {
        let one = parallel_pairs(1, 256, 1500);
        let four = parallel_pairs(4, 256, 1500);
        assert!(
            four.total_mbs > 3.8 * one.total_mbs,
            "crossbar must not block disjoint pairs: {} vs 4x{}",
            four.total_mbs,
            one.total_mbs
        );
        assert!(four.fairness > 0.999, "fairness {}", four.fairness);
    }

    #[test]
    fn incast_shares_the_receiver_fairly() {
        let solo = incast(1, 256, 1200);
        let four = incast(4, 256, 1200);
        // Total bounded by the single receiver...
        assert!(
            four.total_mbs <= 1.05 * solo.total_mbs,
            "incast total {} must not exceed one receiver's rate {}",
            four.total_mbs,
            solo.total_mbs
        );
        // ...and close to it (the receiver stays busy).
        assert!(
            four.total_mbs > 0.9 * solo.total_mbs,
            "incast should keep the receiver saturated: {} vs {}",
            four.total_mbs,
            solo.total_mbs
        );
        // Per-flow roughly 1/4 each.
        for f in &four.per_flow_mbs {
            assert!(
                (0.8..1.3).contains(&(f / (solo.total_mbs / 4.0))),
                "per-flow {} vs expected {}",
                f,
                solo.total_mbs / 4.0
            );
        }
        assert!(four.fairness > 0.98, "fairness {}", four.fairness);
    }

    #[test]
    fn live_pairs_deliver_and_report() {
        let r = live_parallel_pairs(2, 300);
        assert_eq!(r.flows, 2);
        assert_eq!(r.per_flow_mbs.len(), 2);
        assert!(r.total_mbs > 0.0);
        assert!(r.fairness > 0.0 && r.fairness <= 1.0);
    }

    #[test]
    fn live_incast_keeps_reject_queue_within_window() {
        let r = live_incast(3, 120, incast_config());
        assert_eq!(r.delivered, 360);
        assert!(r.rejected > 0, "under-provisioned receiver must bounce");
        for (i, &p) in r.peak_outstanding.iter().enumerate() {
            assert!(p <= r.window, "sender {i} peak {p} > window {}", r.window);
        }
    }

    #[test]
    fn jain_index_properties() {
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[5.0]), 1.0);
        assert!((jain(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One flow hogging: index tends to 1/n.
        let skew = jain(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skew - 0.25).abs() < 1e-12);
    }
}
