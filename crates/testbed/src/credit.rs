//! A traditional credit/window flow-control protocol — the comparison the
//! paper's Section 5 proposes as future study ("comparing return-to-sender
//! to traditional window protocols, and exploring other dynamic flow
//! control schemes").
//!
//! The scheme: the receiver statically partitions its buffering, granting
//! each sender `credits` slots up front. A sender transmits only while it
//! holds credit; the receiver returns credits (batched) as the application
//! extracts. Consequences, measured by [`run_credit_overload`] against
//! return-to-sender's [`crate::dynamics::run_overload`]:
//!
//! * **no rejections ever** — under overload the wire stays quiet instead
//!   of filling with bounced packets and retransmissions;
//! * **receiver memory scales with the number of senders** (`senders x
//!   credits` slots must be pinned) — exactly the "nonscalable buffering
//!   requirement" the paper's return-to-sender design avoids;
//! * throughput under a fast receiver is limited by the credit-return
//!   round trip when the window is small.

use fm_des::{Duration, Engine, Time};
use std::collections::VecDeque;

/// Parameters of one credit-protocol overload run (mirrors
/// [`crate::dynamics::DynamicsConfig`] where meaningful).
#[derive(Debug, Clone, Copy)]
pub struct CreditConfig {
    /// Messages the sender will inject.
    pub count: usize,
    /// Payload bytes per message.
    pub payload: usize,
    /// One-way frame flight time.
    pub flight: Duration,
    /// Sender injection period.
    pub send_period: Duration,
    /// Receiver extract period — the overload knob.
    pub extract_period: Duration,
    /// Deliveries per extract call.
    pub extract_budget: usize,
    /// Credits granted to the sender (the receiver pins this many slots
    /// *per sender*).
    pub credits: usize,
    /// Credits accumulated before a credit-return frame is sent.
    pub credit_batch: usize,
}

impl Default for CreditConfig {
    fn default() -> Self {
        CreditConfig {
            count: 1000,
            payload: 128,
            flight: Duration::from_us(5),
            send_period: Duration::from_us(2),
            extract_period: Duration::from_us(10),
            extract_budget: usize::MAX,
            credits: 64,
            credit_batch: 4,
        }
    }
}

/// Outcome of a credit-protocol run, aligned with
/// [`crate::dynamics::DynamicsReport`] for side-by-side tables.
#[derive(Debug, Clone, Copy)]
pub struct CreditReport {
    pub elapsed: Duration,
    pub delivered: u64,
    /// Data frames on the wire (always == count: nothing retransmits).
    pub data_frames: u64,
    /// Credit-return frames on the wire.
    pub credit_frames: u64,
    /// Peak frames buffered at the receiver (bounded by `credits`).
    pub peak_receiver_buffer: usize,
    /// Receiver slots that must be reserved per sender (the memory cost
    /// the paper's design avoids): simply `credits`.
    pub reserved_per_sender: usize,
    pub goodput_mbs: f64,
}

#[derive(Debug)]
enum Ev {
    SendTick,
    ExtractTick,
    /// Data frame arrives at the receiver.
    Data,
    /// Credit-return frame arrives at the sender carrying `n` credits.
    Credits(usize),
}

/// Two-node overload run under the credit protocol.
pub fn run_credit_overload(cfg: CreditConfig) -> CreditReport {
    assert!(cfg.credits >= 1 && cfg.credit_batch >= 1);
    let mut eng: Engine<Ev> = Engine::new();
    eng.schedule_at(Time::ZERO, Ev::SendTick);
    eng.schedule_at(Time::ZERO, Ev::ExtractTick);

    let mut sent = 0usize;
    let mut credits = cfg.credits;
    let mut receiver_q: VecDeque<()> = VecDeque::new();
    let mut delivered = 0u64;
    let mut pending_credit_return = 0usize;
    let mut credit_frames = 0u64;
    let mut peak_buffer = 0usize;
    let mut last_delivery = Time::ZERO;

    while let Some((now, ev)) = eng.pop() {
        match ev {
            Ev::SendTick => {
                if sent < cfg.count {
                    if credits > 0 {
                        credits -= 1;
                        sent += 1;
                        eng.schedule_in(cfg.flight, Ev::Data);
                    }
                    // With zero credit the sender idles (no wire traffic at
                    // all — contrast with return-to-sender's bounce storm);
                    // it re-checks on its tick.
                    eng.schedule_in(cfg.send_period, Ev::SendTick);
                }
            }
            Ev::Data => {
                receiver_q.push_back(());
                peak_buffer = peak_buffer.max(receiver_q.len());
                assert!(
                    receiver_q.len() <= cfg.credits,
                    "credit protocol must never overflow the reserved slots"
                );
            }
            Ev::ExtractTick => {
                let mut n = 0;
                while n < cfg.extract_budget && receiver_q.pop_front().is_some() {
                    n += 1;
                }
                delivered += n as u64;
                if n > 0 {
                    last_delivery = now;
                }
                pending_credit_return += n;
                // Return credits in batches (one small frame each).
                while pending_credit_return >= cfg.credit_batch {
                    pending_credit_return -= cfg.credit_batch;
                    credit_frames += 1;
                    eng.schedule_in(cfg.flight, Ev::Credits(cfg.credit_batch));
                }
                if delivered < cfg.count as u64 || pending_credit_return > 0 {
                    // Final flush of a partial batch once the stream ends.
                    if delivered >= cfg.count as u64 && pending_credit_return > 0 {
                        let n = pending_credit_return;
                        pending_credit_return = 0;
                        credit_frames += 1;
                        eng.schedule_in(cfg.flight, Ev::Credits(n));
                    }
                    eng.schedule_in(cfg.extract_period, Ev::ExtractTick);
                }
            }
            Ev::Credits(n) => {
                credits += n;
                debug_assert!(credits <= cfg.credits);
            }
        }
        if delivered >= cfg.count as u64 {
            // Drain remaining events cheaply; nothing further matters.
            if sent >= cfg.count && receiver_q.is_empty() {
                break;
            }
        }
    }

    let elapsed = last_delivery.since(Time::ZERO);
    CreditReport {
        elapsed,
        delivered,
        data_frames: sent as u64,
        credit_frames,
        peak_receiver_buffer: peak_buffer,
        reserved_per_sender: cfg.credits,
        goodput_mbs: if elapsed == Duration::ZERO {
            0.0
        } else {
            (delivered as f64 * cfg.payload as f64) / elapsed.as_secs_f64()
                / (1u64 << 20) as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{run_overload, DynamicsConfig};

    #[test]
    fn fast_receiver_full_delivery() {
        let r = run_credit_overload(CreditConfig {
            count: 500,
            extract_period: Duration::from_us(1),
            ..Default::default()
        });
        assert_eq!(r.delivered, 500);
        assert_eq!(r.data_frames, 500, "no retransmissions, ever");
        assert!(r.peak_receiver_buffer <= 64);
    }

    #[test]
    fn slow_receiver_never_overflows_or_retransmits() {
        let r = run_credit_overload(CreditConfig {
            count: 500,
            send_period: Duration::from_us(1),
            extract_period: Duration::from_us(200),
            extract_budget: 8,
            credits: 16,
            ..Default::default()
        });
        assert_eq!(r.delivered, 500);
        assert_eq!(r.data_frames, 500);
        assert!(r.peak_receiver_buffer <= 16);
        assert!(r.credit_frames >= 500 / 4_u64);
    }

    #[test]
    fn credit_wire_traffic_far_below_bounce_storm() {
        // The paper's proposed comparison, in one assertion: under heavy
        // overload, return-to-sender floods the wire with bounces and
        // retransmissions while the credit protocol sends exactly
        // count + credit frames.
        let overloaded_rts = run_overload(DynamicsConfig {
            count: 500,
            send_period: Duration::from_us(1),
            extract_period: Duration::from_us(500),
            extract_budget: 8,
            recv_ring: 16,
            window: 32,
            ..Default::default()
        });
        let overloaded_credit = run_credit_overload(CreditConfig {
            count: 500,
            send_period: Duration::from_us(1),
            extract_period: Duration::from_us(500),
            extract_budget: 8,
            credits: 16,
            ..Default::default()
        });
        assert_eq!(overloaded_rts.delivered, 500);
        assert_eq!(overloaded_credit.delivered, 500);
        let credit_wire = overloaded_credit.data_frames + overloaded_credit.credit_frames;
        assert!(
            overloaded_rts.wire_frames > 4 * credit_wire,
            "bounce storm {} vs credit traffic {}",
            overloaded_rts.wire_frames,
            credit_wire
        );
        // ...but the credit receiver pins slots per sender, which is the
        // memory cost return-to-sender exists to avoid.
        assert_eq!(overloaded_credit.reserved_per_sender, 16);
    }

    #[test]
    fn small_window_throttles_fast_receiver() {
        // With a tiny window, throughput is limited by the credit-return
        // round trip even though the receiver is fast.
        let big = run_credit_overload(CreditConfig {
            credits: 64,
            extract_period: Duration::from_us(1),
            ..Default::default()
        });
        let tiny = run_credit_overload(CreditConfig {
            credits: 2,
            credit_batch: 1,
            extract_period: Duration::from_us(1),
            ..Default::default()
        });
        assert!(
            big.goodput_mbs > 1.5 * tiny.goodput_mbs,
            "window-limited: {} vs {}",
            big.goodput_mbs,
            tiny.goodput_mbs
        );
    }

    #[test]
    fn deterministic() {
        let cfg = CreditConfig::default();
        let a = run_credit_overload(cfg);
        let b = run_credit_overload(cfg);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.credit_frames, b.credit_frames);
    }
}
