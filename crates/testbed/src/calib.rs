//! Host-side instruction budgets, anchored to the Table-4 rows they
//! reproduce.
//!
//! All counts are SuperSPARC instructions at 20 ns (see
//! `fm-sbus::consts::HOST_INSTR`). The LANai-side budgets live in
//! `fm-lanai::lcp`; this module holds only what the *host program* does.
//!
//! Calibration notes (`fm-bench --bin table4` prints paper-vs-measured):
//!
//! * **hybrid** (Table 4 row 3: t0 3.5 µs, r_inf 21.2 MB/s, n_1/2 44 B) —
//!   the outbound cost is dominated by PIO double-word writes at
//!   23.9 MB/s; the host-side fixed costs below keep the small-packet
//!   stream bottleneck on the *receiving LANai* (recv path + host-delivery
//!   DMA), which is what puts n_1/2 in the 40–55 B range and matches the
//!   paper's observation that "delivering incoming packets to the host is
//!   often the critical bottleneck".
//! * **buffer management** (row 4: +0.3 µs t0, n_1/2 44→53 B) — ~15 host
//!   instructions split across send and extract, plus 2 LANai
//!   instructions.
//! * **flow control** (row 5: +0.3 µs t0, n_1/2 53→54 B) — slot
//!   reservation and ack bookkeeping; acks batch 4-to-a-frame and
//!   piggyback on reverse data, so the steady-state cost is a few
//!   instructions per packet.
//! * **all-DMA** (last FM row: t0 7.5 µs, r_inf 33 MB/s, n_1/2 162 B) —
//!   adds the staging memcpy into the pinned DMA region, a descriptor
//!   write, and a second host/LANai synchronization on the outbound path.

use fm_sbus::HostCpu;
use fm_des::Duration;

/// Host-side per-operation instruction budgets for one layer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostCosts {
    /// `FM_send` fast path: argument marshalling, header build, queue-slot
    /// address computation.
    pub send_setup: u64,
    /// Reading the host receive queue's ready flag/counter (in host
    /// memory, *not* across the SBus — the LANai DMAs the counter to the
    /// host along with the data; this asymmetry is the point of the
    /// design).
    pub poll: u64,
    /// Per-frame extract work: classify the packet, locate the handler,
    /// advance the ring.
    pub extract: u64,
    /// Invoking an (empty) handler: call, arg setup, return.
    pub handler: u64,
    /// Extra send-side bookkeeping when buffer management is on.
    pub bm_send: u64,
    /// Extra extract-side bookkeeping when buffer management is on.
    pub bm_extract: u64,
    /// Flow control: reserve a reject-queue slot, stamp the sequence.
    pub fc_send: u64,
    /// Flow control: per-frame receive-side accounting.
    pub fc_extract: u64,
    /// Flow control: process one arriving ack frame (releases up to
    /// `ack_batch` slots).
    pub fc_ack_process: u64,
    /// Flow control: emit one standalone ack frame (header build; the PIO
    /// cost is charged separately).
    pub fc_ack_send: u64,
    /// all-DMA only: build the DMA descriptor after the staging copy.
    pub dma_descriptor: u64,
}

impl HostCosts {
    /// The minimal (Figure 4) host program.
    pub const fn minimal() -> Self {
        HostCosts {
            send_setup: 6,
            poll: 2,
            extract: 6,
            handler: 4,
            bm_send: 0,
            bm_extract: 0,
            fc_send: 0,
            fc_extract: 0,
            fc_ack_process: 0,
            fc_ack_send: 0,
            dma_descriptor: 8,
        }
    }

    /// Add the four-queue buffer management costs (Figure 7). The other
    /// half of the buffer-management cost is the LANai's 2 instructions
    /// (see `fm-lanai::LcpCosts::buffer_mgmt`).
    pub const fn with_buffer_mgmt(mut self) -> Self {
        self.bm_send = 4;
        self.bm_extract = 4;
        self
    }

    /// Add return-to-sender flow control costs (Figure 8).
    pub const fn with_flow_control(mut self) -> Self {
        self.fc_send = 6;
        self.fc_extract = 6;
        self.fc_ack_process = 4;
        self.fc_ack_send = 6;
        self
    }

    /// Total send-path instructions for this configuration.
    pub const fn send_instr(&self) -> u64 {
        self.send_setup + self.bm_send + self.fc_send
    }

    /// Total per-frame extract-path instructions (poll + classify +
    /// handler + options).
    pub const fn extract_instr(&self) -> u64 {
        self.poll + self.extract + self.handler + self.bm_extract + self.fc_extract
    }

    /// Send-path host time.
    pub fn send_time(&self) -> Duration {
        HostCpu::instr(self.send_instr())
    }

    /// Extract-path host time per frame.
    pub fn extract_time(&self) -> Duration {
        HostCpu::instr(self.extract_instr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_mgmt_adds_about_300ns() {
        let min = HostCosts::minimal();
        let bm = min.with_buffer_mgmt();
        let delta = (bm.send_instr() + bm.extract_instr())
            - (min.send_instr() + min.extract_instr());
        let ns = HostCpu::instr(delta).as_ns_f64();
        // Paper: t0 3.5 -> 3.8 us when buffer management is added; the
        // host carries ~160 ns of it, the LANai the other ~320 ns.
        assert!((100.0..=250.0).contains(&ns), "bm delta {ns} ns");
    }

    #[test]
    fn flow_control_adds_about_300ns() {
        let bm = HostCosts::minimal().with_buffer_mgmt();
        let fc = bm.with_flow_control();
        let delta =
            (fc.send_instr() + fc.extract_instr()) - (bm.send_instr() + bm.extract_instr());
        let ns = HostCpu::instr(delta).as_ns_f64();
        // Paper: t0 3.8 -> 4.1 us when flow control is added.
        assert!((200.0..=320.0).contains(&ns), "fc delta {ns} ns");
    }

    #[test]
    fn composition_is_additive() {
        let full = HostCosts::minimal().with_buffer_mgmt().with_flow_control();
        assert_eq!(
            full.send_instr(),
            HostCosts::minimal().send_setup + full.bm_send + full.fc_send
        );
        assert!(full.extract_instr() > HostCosts::minimal().extract_instr());
    }
}
