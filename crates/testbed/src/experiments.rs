//! Sweeps over packet size — the raw material of every figure.

use fm_des::Duration;

use crate::sim::{run_pingpong, run_stream};
use crate::{Layer, TestbedConfig};

/// The packet sizes the figures sweep (4..600 bytes).
pub const FIGURE_SIZES: [usize; 17] = [
    4, 8, 16, 24, 32, 48, 64, 96, 128, 160, 192, 256, 320, 384, 448, 512, 600,
];

/// Ping-pong rounds per latency point (paper Section 4.1: 50).
pub const PINGPONG_ROUNDS: usize = 50;

/// Packets per bandwidth point (paper Section 4.1: 65 535). The sweeps
/// default to a smaller count that reaches the identical steady state; the
/// bench binaries use the paper's full count.
pub const PAPER_STREAM_COUNT: usize = 65_535;

/// One latency measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyPoint {
    pub n: usize,
    pub one_way: Duration,
}

/// One bandwidth measurement.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthPoint {
    pub n: usize,
    pub mbs: f64,
}

/// One-way latency across packet sizes.
pub fn latency_sweep(
    layer: Layer,
    cfg: &TestbedConfig,
    sizes: &[usize],
    rounds: usize,
) -> Vec<LatencyPoint> {
    sizes
        .iter()
        .map(|&n| LatencyPoint {
            n,
            one_way: run_pingpong(layer, cfg, n, rounds),
        })
        .collect()
}

/// Streaming bandwidth across packet sizes.
pub fn bandwidth_sweep(
    layer: Layer,
    cfg: &TestbedConfig,
    sizes: &[usize],
    count: usize,
) -> Vec<BandwidthPoint> {
    sizes
        .iter()
        .map(|&n| BandwidthPoint {
            n,
            mbs: run_stream(layer, cfg, n, count).mbs,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sweep_is_monotone_in_size() {
        let cfg = TestbedConfig::default();
        let pts = latency_sweep(Layer::LanaiStreamed, &cfg, &[16, 128, 512], 10);
        assert!(pts[0].one_way < pts[1].one_way);
        assert!(pts[1].one_way < pts[2].one_way);
    }

    #[test]
    fn bandwidth_sweep_is_monotone_in_size() {
        let cfg = TestbedConfig::default();
        let pts = bandwidth_sweep(Layer::FullFm, &cfg, &[16, 128, 512], 1500);
        assert!(pts[0].mbs < pts[1].mbs);
        assert!(pts[1].mbs < pts[2].mbs);
    }

    #[test]
    fn figure_sizes_sorted_unique() {
        let mut s = FIGURE_SIZES.to_vec();
        s.dedup();
        assert_eq!(s.len(), FIGURE_SIZES.len());
        assert!(FIGURE_SIZES.windows(2).all(|w| w[0] < w[1]));
    }
}
