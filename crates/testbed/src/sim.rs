//! Trajectory simulation of the paper's two experiments — ping-pong latency
//! and streaming bandwidth — for every [`Layer`].
//!
//! Every time increment below maps to a named constant: LANai instruction
//! budgets come from `fm-lanai::LcpCosts`, host budgets from
//! [`crate::calib::HostCosts`], bus and link costs from `fm-sbus` and
//! `fm-myrinet`. The hardware resources are busy-until timelines
//! (`HostCpu`, `SBus`, `LanaiChip`, `Network`), so contention — e.g. an
//! arriving acknowledgement's DMA delaying the sender's next PIO burst on
//! the same SBus — falls out of the resource model rather than being
//! hand-waved.
//!
//! Semantics faithful to the paper worth calling out:
//!
//! * the LCP is a *sequential* program that blocks on its DMA operations
//!   (Figure 2); streaming wins by consolidating checks, not by overlap;
//! * outbound "hybrid" data crosses the SBus as processor double-word
//!   writes (23.9 MB/s) while inbound data is always a LANai-initiated DMA
//!   burst (Section 4.3);
//! * with buffer management on, the receiving LCP drains *all* arrived
//!   packets with its inner `while`, then delivers them to the host in one
//!   aggregated DMA (Section 4.4);
//! * the host's send trigger is a posted store: the host continues while
//!   the write buffer drains it across the SBus, but the LANai only sees
//!   `hostsent` change when the bus transaction completes;
//! * acknowledgements batch four-to-a-frame, piggyback on reverse data in
//!   ping-pong, and consume real resources (reverse link, sender-side
//!   LANai and host cycles) in streams.

use fm_des::{Duration, Time};
use fm_lanai::{DmaEngine, LanaiChip, DMA_SETUP};
use fm_myrinet::{Network, NetworkConfig, NodeId};
use fm_sbus::{BusOp, HostCpu, SBus};

use crate::calib::HostCosts;
use crate::{Layer, TestbedConfig};

/// One simulated workstation (host CPU + SBus + LANai NIC).
#[derive(Debug)]
struct SimNode {
    host: HostCpu,
    bus: SBus,
    chip: LanaiChip,
    /// When the LANai's host DMA engine finishes its current delivery.
    /// Tracked here (rather than blocking the LCP) because the paper's LCP
    /// "blindly" programs the engine and returns to servicing the fast
    /// network channels — the delivery DMA runs concurrently.
    host_dma_free: Time,
}

impl SimNode {
    fn new() -> Self {
        SimNode {
            host: HostCpu::new(),
            bus: SBus::new(),
            chip: LanaiChip::new(),
            host_dma_free: Time::ZERO,
        }
    }
}

/// Outcome of one streaming-bandwidth run.
#[derive(Debug, Clone, Copy)]
pub struct StreamReport {
    /// Packet payload size (bytes).
    pub n: usize,
    /// Packets sent.
    pub count: usize,
    /// Time from start until the last packet was consumed.
    pub elapsed: Duration,
    /// Delivered bandwidth in the paper's MB/s (1 MB = 2^20 B).
    pub mbs: f64,
    /// Standalone acknowledgement frames emitted (flow-control layers).
    pub ack_frames: u64,
    /// Host-delivery DMA bursts issued on the receiver (aggregation makes
    /// this smaller than `count` when buffer management is on).
    pub delivery_bursts: u64,
}

fn host_costs(layer: Layer) -> HostCosts {
    let mut c = HostCosts::minimal();
    if layer.buffer_mgmt() {
        c = c.with_buffer_mgmt();
    }
    if layer.flow_control() {
        c = c.with_flow_control();
    }
    c
}

// ---------------------------------------------------------------------------
// LANai-to-LANai (Figure 3)
// ---------------------------------------------------------------------------

fn lanai_stream(layer: Layer, n: usize, count: usize) -> StreamReport {
    let lcp = layer.lcp();
    let mut net = Network::new(NetworkConfig::two_hosts());
    let mut s = LanaiChip::new();
    let mut r = LanaiChip::new();
    let mut last = Time::ZERO;
    for k in 0..count {
        // Sender: hostsent was preloaded, packets live in LANai SRAM.
        let instr = if k == 0 {
            lcp.send_path
        } else {
            lcp.send_stream_instr()
        };
        let exec_done = s.exec(s.proc_free_at(), instr);
        let (dstart, dend) = s.start_dma(exec_done, DmaEngine::NetOut, n);
        s.block_until(dend);
        let d = net.inject(dstart, NodeId(0), NodeId(1), n);
        // Receiver: wake on head, arm the incoming-channel DMA, block.
        let rinstr = if k == 0 {
            lcp.recv_path
        } else {
            lcp.recv_stream_instr()
        };
        let rready = r.proc_free_at().max(d.head_at);
        let rexec = r.exec(rready, rinstr);
        let (_, rend) = r.start_dma(rexec, DmaEngine::NetIn, n);
        let complete = rend.max(d.tail_at);
        r.block_until(complete);
        last = complete;
    }
    let elapsed = last.since(Time::ZERO);
    StreamReport {
        n,
        count,
        elapsed,
        mbs: mbs(n, count, elapsed),
        ack_frames: 0,
        delivery_bursts: 0,
    }
}

fn lanai_pingpong(layer: Layer, n: usize, rounds: usize) -> Duration {
    let lcp = layer.lcp();
    let mut net = Network::new(NetworkConfig::two_hosts());
    let mut a = LanaiChip::new();
    let mut b = LanaiChip::new();
    let mut t = Time::ZERO;
    for _ in 0..rounds {
        t = lanai_half_trip(&lcp, &mut net, &mut a, &mut b, NodeId(0), NodeId(1), n, t);
        t = lanai_half_trip(&lcp, &mut net, &mut b, &mut a, NodeId(1), NodeId(0), n, t);
    }
    Duration::from_ps(t.as_ps() / (2 * rounds as u64))
}

#[allow(clippy::too_many_arguments)]
fn lanai_half_trip(
    lcp: &fm_lanai::LcpCosts,
    net: &mut Network,
    s: &mut LanaiChip,
    r: &mut LanaiChip,
    src: NodeId,
    dst: NodeId,
    n: usize,
    ready: Time,
) -> Time {
    let exec_done = s.exec(ready, lcp.send_path);
    let (dstart, dend) = s.start_dma(exec_done, DmaEngine::NetOut, n);
    s.block_until(dend);
    let d = net.inject(dstart, src, dst, n);
    let rexec = r.exec(r.proc_free_at().max(d.head_at), lcp.recv_path);
    let (_, rend) = r.start_dma(rexec, DmaEngine::NetIn, n);
    let complete = rend.max(d.tail_at);
    r.block_until(complete);
    complete
}

// ---------------------------------------------------------------------------
// Host-to-host (Figures 4, 7, 8)
// ---------------------------------------------------------------------------

/// Sender-side chain: host hands packet `k` to its LANai; returns the time
/// the packet is visible to the LCP (`hostsent` updated).
#[allow(clippy::too_many_arguments)]
fn host_submit(
    layer: Layer,
    hc: &HostCosts,
    node: &mut SimNode,
    n: usize,
    ready: Time,
) -> Time {
    let mut t = node.host.run(ready, HostCpu::instr(hc.send_instr()));
    if layer.all_dma() {
        // Staging copy into the pinned DMA region, then a descriptor.
        t = node.host.run(t, HostCpu::memcpy(n));
        t = node.host.run(t, HostCpu::instr(hc.dma_descriptor));
        let (_, desc_end) = node.bus.transact(t, BusOp::PioWrite(8));
        node.host.block_until(desc_end);
        t = desc_end;
    } else {
        // Hybrid: the host spools the packet straight into the LANai send
        // queue with double-word stores; the store buffer keeps the CPU
        // coupled to the bus for the duration.
        let (_, pio_end) = node.bus.transact(t, BusOp::PioWrite(n));
        node.host.block_until(pio_end);
        t = pio_end;
    }
    // Trigger: bump `hostsent`. A posted store — the host moves on, the
    // LANai sees it when the bus transaction lands.
    let (_, trig_end) = node.bus.transact(t, BusOp::PioWrite(8));
    node.host.run(t, HostCpu::instr(1));
    trig_end
}

/// Sender-LANai chain: LCP notices the packet and puts it on the wire.
/// Returns the network delivery report.
#[allow(clippy::too_many_arguments)] // internal sim helper: the args are the experiment
fn lanai_send(
    layer: Layer,
    lcp: &fm_lanai::LcpCosts,
    node: &mut SimNode,
    net: &mut Network,
    src: NodeId,
    dst: NodeId,
    n: usize,
    ready: Time,
    streaming: bool,
) -> (fm_myrinet::DeliveredPacket, Time) {
    let instr = if streaming {
        lcp.send_stream_instr()
    } else {
        lcp.send_path
    };
    let mut t = node.chip.exec(ready, instr);
    if layer.all_dma() {
        // Pull the packet from host memory into LANai SRAM first.
        t = node.chip.exec(t, lcp.host_dma_path);
        let setup_done = t + DMA_SETUP;
        let (_, pull_end) = node.bus.transact(setup_done, BusOp::DmaBurst(n));
        node.chip.block_until(pull_end);
        t = pull_end;
    }
    let (dstart, dend) = node.chip.start_dma(t, DmaEngine::NetOut, n);
    node.chip.block_until(dend);
    (net.inject(dstart, src, dst, n), dend)
}

/// Receiver-LANai chain for one packet: arm the channel DMA, block until
/// the packet is in LANai SRAM. Returns the completion time.
fn lanai_recv(
    lcp: &fm_lanai::LcpCosts,
    node: &mut SimNode,
    d: fm_myrinet::DeliveredPacket,
    n: usize,
    streaming: bool,
) -> Time {
    let instr = if streaming {
        lcp.recv_stream_instr()
    } else {
        lcp.recv_isolated_instr()
    };
    let rexec = node.chip.exec(node.chip.proc_free_at().max(d.head_at), instr);
    let (_, rend) = node.chip.start_dma(rexec, DmaEngine::NetIn, n);
    let complete = rend.max(d.tail_at);
    node.chip.block_until(complete);
    complete
}

/// Deliver a burst of packets (total `bytes`) from LANai SRAM to the host
/// receive queue via the host DMA engine. Returns host-visible time.
///
/// The LCP only pays the instructions to *program* the engine (it must
/// wait for the engine to be free — its registers are single-set — but
/// never for the transfer itself): the host DMA proceeds concurrently with
/// the LCP servicing the next packets on the network channels.
fn deliver_burst(lcp: &fm_lanai::LcpCosts, node: &mut SimNode, bytes: usize, ready: Time) -> Time {
    let program_at = ready.max(node.host_dma_free);
    let t = node
        .chip
        .exec(program_at, lcp.host_dma_path + lcp.host_dma_per_burst);
    let setup_done = t + DMA_SETUP;
    let (_, dma_end) = node.bus.transact(setup_done, BusOp::DmaBurst(bytes));
    node.host_dma_free = dma_end;
    dma_end
}

/// Host-to-host ping-pong: one round trip, returning the completion time.
/// `fc` piggybacks acknowledgements on the reverse data frame, so flow
/// control adds instructions but no extra frames (Section 4.5).
#[allow(clippy::too_many_arguments)]
fn host_half_trip(
    layer: Layer,
    lcp: &fm_lanai::LcpCosts,
    hc: &HostCosts,
    net: &mut Network,
    s: &mut SimNode,
    r: &mut SimNode,
    src: NodeId,
    dst: NodeId,
    n: usize,
    ready: Time,
) -> Time {
    let at_lanai = host_submit(layer, hc, s, n, ready);
    let (d, _) = lanai_send(layer, lcp, s, net, src, dst, n, at_lanai, false);
    let complete = lanai_recv(lcp, r, d, n, false);
    let delivered = deliver_burst(lcp, r, n, complete);
    // Host extract: poll the ring flag, classify, run the (empty) handler;
    // flow control also books the piggybacked ack.
    let mut instr = hc.extract_instr();
    if layer.flow_control() {
        instr += hc.fc_ack_process;
    }
    r.host.run(r.host.free_at().max(delivered), HostCpu::instr(instr))
}

fn host_pingpong(layer: Layer, n: usize, rounds: usize) -> Duration {
    let lcp = layer.lcp();
    let hc = host_costs(layer);
    let mut net = Network::new(NetworkConfig::two_hosts());
    let mut a = SimNode::new();
    let mut b = SimNode::new();
    let mut t = Time::ZERO;
    for _ in 0..rounds {
        t = host_half_trip(layer, &lcp, &hc, &mut net, &mut a, &mut b, NodeId(0), NodeId(1), n, t);
        t = host_half_trip(layer, &lcp, &hc, &mut net, &mut b, &mut a, NodeId(1), NodeId(0), n, t);
    }
    Duration::from_ps(t.as_ps() / (2 * rounds as u64))
}

/// Host-to-host streaming bandwidth with send-queue backpressure, receive
/// aggregation and (optionally) windowed flow control with batched acks.
fn host_stream(layer: Layer, cfg: &TestbedConfig, n: usize, count: usize) -> StreamReport {
    let lcp = layer.lcp();
    let hc = host_costs(layer);
    let fc = layer.flow_control();
    assert!(
        !fc || cfg.window >= 2 * cfg.ack_batch,
        "flow-control window must be at least two ack batches"
    );
    let agg_max = if layer.buffer_mgmt() { cfg.agg_max.max(1) } else { 1 };
    // How far the receiver pipeline may lag behind the sender loop. With
    // flow control it must stay close enough that the ack covering packet
    // k-window is computed before iteration k needs it.
    let lookahead = if fc {
        (cfg.window - 2 * cfg.ack_batch).max(1)
    } else {
        (2 * cfg.agg_max).max(8)
    };

    let mut net = Network::new(NetworkConfig::two_hosts());
    let mut snd = SimNode::new();
    let mut rcv = SimNode::new();

    // Per-packet timelines (count is at most 65 535; a Vec is fine).
    let mut at_lanai = vec![Time::ZERO; count]; // hostsent visible
    let mut lanai_sent = vec![Time::ZERO; count]; // outbound DMA done
    let mut heads = vec![Time::ZERO; count];
    let mut tails = vec![Time::ZERO; count];
    let mut consumed = vec![Time::ZERO; count]; // receiver host done with frame
    let mut ack_released = vec![Time::ZERO; count]; // sender host saw the ack

    let mut ack_frames = 0u64;
    let mut delivery_bursts = 0u64;

    // Receiver-side incremental state.
    let mut next_recv = 0usize; // next packet the receiver LCP will take
    let mut last_extract_end = Time::ZERO;
    let mut acks_emitted = 0usize;

    // Process the receiver pipeline for all packets with index < limit.
    // One-packet lookahead from the sender loop guarantees heads/tails are
    // known for everything below `limit`.
    macro_rules! advance_receiver {
        ($limit:expr) => {
            while next_recv < $limit {
                // The streamed LCP's inner receive loop: take every packet
                // that has already arrived (up to the aggregation cap),
                // then deliver the batch in one host DMA.
                let mut burst = vec![next_recv];
                let mut complete = lanai_recv(
                    &lcp,
                    &mut rcv,
                    fm_myrinet::DeliveredPacket {
                        head_at: heads[next_recv],
                        tail_at: tails[next_recv],
                    },
                    n,
                    next_recv != 0,
                );
                next_recv += 1;
                while burst.len() < agg_max
                    && next_recv < $limit
                    && heads[next_recv] <= rcv.chip.proc_free_at()
                {
                    burst.push(next_recv);
                    complete = lanai_recv(
                        &lcp,
                        &mut rcv,
                        fm_myrinet::DeliveredPacket {
                            head_at: heads[next_recv],
                            tail_at: tails[next_recv],
                        },
                        n,
                        true,
                    );
                    next_recv += 1;
                }
                let host_visible = deliver_burst(&lcp, &mut rcv, n * burst.len(), complete);
                delivery_bursts += 1;
                // Host extracts each frame of the burst.
                for &j in &burst {
                    last_extract_end = rcv
                        .host
                        .run(rcv.host.free_at().max(host_visible), HostCpu::instr(hc.extract_instr()));
                    consumed[j] = last_extract_end;
                }
                // Flow control: emit one ack frame per full batch (plus a
                // final flush at stream end, handled after the main loop).
                if fc {
                    let batch_end = burst[burst.len() - 1];
                    while acks_emitted + cfg.ack_batch <= batch_end + 1 {
                        let upto = acks_emitted + cfg.ack_batch - 1;
                        let t = emit_ack(
                            &lcp,
                            &hc,
                            cfg,
                            &mut net,
                            &mut rcv,
                            &mut snd,
                            consumed[upto],
                        );
                        for j in acks_emitted..=upto {
                            ack_released[j] = t;
                        }
                        acks_emitted = upto + 1;
                        ack_frames += 1;
                    }
                }
            }
        };
    }

    for k in 0..count {
        // --- sender host -------------------------------------------------
        let mut ready = snd.host.free_at();
        if fc && k >= cfg.window {
            // The window admits `window` outstanding packets; wait for the
            // ack covering packet k-window. The one-packet receiver
            // lookahead plus batched acks guarantee it has been computed
            // as long as window >= 2 * ack_batch (asserted above).
            ready = ready.max(ack_released[k - cfg.window]);
        }
        if k >= cfg.send_queue {
            // LANai send queue is full until slot k-send_queue drains; the
            // host discovers this with a status read across the SBus.
            let free_slot = lanai_sent[k - cfg.send_queue];
            if free_slot > ready {
                snd.host.block_until(free_slot);
                let (_, st_end) = snd.bus.transact(snd.host.free_at(), BusOp::StatusRead);
                snd.host.block_until(st_end);
                ready = snd.host.free_at();
            }
        }
        at_lanai[k] = host_submit(layer, &hc, &mut snd, n, ready);

        // --- sender LANai + network --------------------------------------
        let streaming = k != 0 && snd.chip.proc_free_at() >= at_lanai[k];
        let (d, dend) = lanai_send(
            layer,
            &lcp,
            &mut snd,
            &mut net,
            NodeId(0),
            NodeId(1),
            n,
            at_lanai[k],
            streaming,
        );
        lanai_sent[k] = dend;
        heads[k] = d.head_at;
        tails[k] = d.tail_at;

        // --- receiver, lagging `lookahead` packets so the LCP's inner
        // receive loop has arrivals to aggregate ---------------------------
        advance_receiver!(k.saturating_sub(lookahead) + 1);
    }
    advance_receiver!(count);

    // Final ack flush (partial batch) so accounting closes.
    if fc && acks_emitted < count {
        let t = emit_ack(&lcp, &hc, cfg, &mut net, &mut rcv, &mut snd, consumed[count - 1]);
        ack_released[acks_emitted..count].fill(t);
        ack_frames += 1;
    }

    let elapsed = last_extract_end.since(Time::ZERO);
    StreamReport {
        n,
        count,
        elapsed,
        mbs: mbs(n, count, elapsed),
        ack_frames,
        delivery_bursts,
    }
}

/// Emit one standalone ack frame from the receiver back to the sender and
/// charge its full path: receiver host + PIO, receiver LANai send, reverse
/// wire, sender LANai receive + host-delivery DMA, sender host processing.
/// Returns the time the sender host has processed the ack.
fn emit_ack(
    lcp: &fm_lanai::LcpCosts,
    hc: &HostCosts,
    cfg: &TestbedConfig,
    net: &mut Network,
    rcv: &mut SimNode,
    snd: &mut SimNode,
    ready: Time,
) -> Time {
    // Receiver host builds and spools the ack frame.
    let t = rcv.host.run(ready, HostCpu::instr(hc.fc_ack_send));
    let (_, pio_end) = rcv.bus.transact(t, BusOp::PioWrite(cfg.ack_bytes));
    rcv.host.block_until(pio_end);
    let (_, trig_end) = rcv.bus.transact(pio_end, BusOp::PioWrite(8));
    // Receiver LANai sends it (acks travel as ordinary small packets).
    // Charge the send-path instructions to the LCP's own timeline without
    // stalling it until the host's command lands — in between it keeps
    // servicing the receive channel; the wire injection itself respects
    // the command arrival and the engine's availability.
    let work = rcv.chip.exec(rcv.chip.proc_free_at(), lcp.send_path);
    let (dstart, _) = rcv
        .chip
        .start_dma(work.max(trig_end), DmaEngine::NetOut, cfg.ack_bytes);
    let d = net.inject(dstart, NodeId(1), NodeId(0), cfg.ack_bytes);
    // Sender-side LANai receives and delivers it like any packet — again
    // charging its instruction cost without stalling the forward pipeline.
    let work = snd.chip.exec(snd.chip.proc_free_at(), lcp.recv_isolated_instr());
    let (_, rend) = snd
        .chip
        .start_dma(work.max(d.head_at), DmaEngine::NetIn, cfg.ack_bytes);
    let complete = rend.max(d.tail_at);
    // Deliver the ack into the sender's host receive queue. The 8-byte
    // burst's bus occupancy (~140 ns) is negligible against the forward
    // PIO stream, and pushing it through the busy-until bus model would
    // wrongly reserve the bus at a *future* instant (the busy-until model
    // needs time-ordered transactions), stalling forward PIO issued for
    // earlier times — so the ack delivery is modeled off-bus: engine setup
    // plus the burst's own transfer time.
    let program_at = complete.max(snd.host_dma_free);
    let t = snd
        .chip
        .exec(program_at, lcp.host_dma_path + lcp.host_dma_per_burst);
    let host_visible = t + DMA_SETUP + fm_sbus::consts::dma_burst_time(cfg.ack_bytes);
    snd.host_dma_free = host_visible;
    // The sender host notices the ack during one of its polls. Charge the
    // processing instructions to the host timeline, but do not stall the
    // host waiting for the ack to arrive — polls interleave with its send
    // work, and the slots only matter once the window actually fills.
    let instr = HostCpu::instr(hc.poll + hc.fc_ack_process);
    snd.host.run(snd.host.free_at(), instr);
    host_visible + instr
}

fn mbs(n: usize, count: usize, elapsed: Duration) -> f64 {
    if elapsed == Duration::ZERO {
        return 0.0;
    }
    (n as f64 * count as f64) / elapsed.as_secs_f64() / (1u64 << 20) as f64
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// One-way latency for `n`-byte packets, measured as the paper does: a
/// message ping-ponged `rounds` times, total time divided by `2 * rounds`.
pub fn run_pingpong(layer: Layer, _cfg: &TestbedConfig, n: usize, rounds: usize) -> Duration {
    assert!(rounds > 0);
    if layer.host_coupled() {
        host_pingpong(layer, n, rounds)
    } else {
        lanai_pingpong(layer, n, rounds)
    }
}

/// Streaming bandwidth: `count` back-to-back `n`-byte packets, bandwidth =
/// volume / elapsed (paper Section 4.1: 65 535 packets).
pub fn run_stream(layer: Layer, cfg: &TestbedConfig, n: usize, count: usize) -> StreamReport {
    assert!(count > 0 && n > 0);
    if layer.host_coupled() {
        host_stream(layer, cfg, n, count)
    } else {
        lanai_stream(layer, n, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: TestbedConfig = TestbedConfig {
        send_queue: 8,
        agg_max: 8,
        window: 16,
        ack_batch: 4,
        ack_bytes: 8,
    };

    #[test]
    fn lanai_streamed_t0_matches_paper() {
        // Table 4: streamed t0 = 3.5 us (latency at tiny packets).
        let l = run_pingpong(Layer::LanaiStreamed, &CFG, 4, 50);
        let us = l.as_us_f64();
        assert!((3.2..3.9).contains(&us), "streamed t0 ~ 3.5, got {us}");
    }

    #[test]
    fn lanai_baseline_slower_than_streamed() {
        let b = run_pingpong(Layer::LanaiBaseline, &CFG, 128, 50);
        let s = run_pingpong(Layer::LanaiStreamed, &CFG, 128, 50);
        assert!(b > s, "baseline {b} must exceed streamed {s}");
        // Table 4: baseline t0 = 4.2 us.
        let us = run_pingpong(Layer::LanaiBaseline, &CFG, 4, 50).as_us_f64();
        assert!((3.9..4.6).contains(&us), "baseline t0 ~ 4.2, got {us}");
    }

    #[test]
    fn lanai_streams_reach_link_bandwidth() {
        // Both LCP loops saturate the 76.3 MB/s link for large packets
        // (Figure 3b).
        for layer in [Layer::LanaiBaseline, Layer::LanaiStreamed] {
            let r = run_stream(layer, &CFG, 4096, 2000);
            assert!(
                r.mbs > 0.9 * 76.3,
                "{layer:?} large-packet bw {} MB/s",
                r.mbs
            );
        }
    }

    #[test]
    fn lanai_latency_exceeds_theoretical_peak() {
        // Figure 3a: both measured curves sit above the Appendix-A bound.
        for n in [16usize, 128, 512] {
            let model = fm_myrinet::analytic::latency_ns(n);
            for layer in [Layer::LanaiBaseline, Layer::LanaiStreamed] {
                let sim = run_pingpong(layer, &CFG, n, 10).as_ns_f64();
                assert!(
                    sim > model,
                    "{layer:?} at {n}B: sim {sim}ns vs model {model}ns"
                );
            }
        }
    }

    #[test]
    fn lanai_bandwidth_below_theoretical_peak() {
        for n in [64usize, 256, 600] {
            let model = fm_myrinet::analytic::bandwidth_mbs(n);
            for layer in [Layer::LanaiBaseline, Layer::LanaiStreamed] {
                let sim = run_stream(layer, &CFG, n, 3000).mbs;
                assert!(
                    sim < model,
                    "{layer:?} at {n}B: sim {sim} vs model {model} MB/s"
                );
            }
        }
    }

    #[test]
    fn hybrid_beats_alldma_on_small_latency() {
        // Figure 4a: all-DMA pays a staging copy and an extra
        // synchronization; hybrid is leaner for short packets.
        let h = run_pingpong(Layer::Hybrid, &CFG, 16, 20);
        let d = run_pingpong(Layer::AllDma, &CFG, 16, 20);
        assert!(
            d.as_ns_f64() - h.as_ns_f64() > 1000.0,
            "all-DMA {d} should exceed hybrid {h} by >1us at 16B"
        );
    }

    #[test]
    fn alldma_beats_hybrid_on_large_bandwidth() {
        // Figure 4b: DMA's 48 MB/s beats PIO's 23.9 MB/s once packets are
        // large; the curves cross.
        let h = run_stream(Layer::Hybrid, &CFG, 600, 3000);
        let d = run_stream(Layer::AllDma, &CFG, 600, 3000);
        assert!(
            d.mbs > h.mbs,
            "all-DMA {} must beat hybrid {} at 600B",
            d.mbs,
            h.mbs
        );
        // And hybrid wins for small packets.
        let hs = run_stream(Layer::Hybrid, &CFG, 32, 3000);
        let ds = run_stream(Layer::AllDma, &CFG, 32, 3000);
        assert!(
            hs.mbs > ds.mbs,
            "hybrid {} must beat all-DMA {} at 32B",
            hs.mbs,
            ds.mbs
        );
    }

    #[test]
    fn hybrid_bandwidth_near_pio_limit() {
        // Table 4: hybrid r_inf = 21.2 MB/s (PIO-bound).
        let r = run_stream(Layer::Hybrid, &CFG, 600, 5000);
        assert!(
            (19.0..24.5).contains(&r.mbs),
            "hybrid 600B bw {} MB/s",
            r.mbs
        );
    }

    #[test]
    fn switch_interp_costs_3us_latency() {
        // Table 4: t0 3.8 -> 6.8 us when the switch() is added.
        let bm = run_pingpong(Layer::HybridBufMgmt, &CFG, 16, 20);
        let sw = run_pingpong(Layer::HybridBufMgmtSwitch, &CFG, 16, 20);
        let delta_us = sw.as_us_f64() - bm.as_us_f64();
        assert!(
            (2.7..3.4).contains(&delta_us),
            "switch() latency delta {delta_us} us"
        );
    }

    #[test]
    fn flow_control_nearly_free() {
        // Figure 8 / Table 4: +0.3us t0, ~0.5 MB/s bandwidth cost.
        let bm_l = run_pingpong(Layer::HybridBufMgmt, &CFG, 128, 20);
        let fm_l = run_pingpong(Layer::FullFm, &CFG, 128, 20);
        let dl = fm_l.as_us_f64() - bm_l.as_us_f64();
        assert!((0.1..0.8).contains(&dl), "fc latency delta {dl} us");

        let bm_b = run_stream(Layer::HybridBufMgmt, &CFG, 256, 3000);
        let fm_b = run_stream(Layer::FullFm, &CFG, 256, 3000);
        let rel = (bm_b.mbs - fm_b.mbs) / bm_b.mbs;
        assert!(
            (-0.01..0.15).contains(&rel),
            "fc bandwidth cost {rel} ({} vs {})",
            bm_b.mbs,
            fm_b.mbs
        );
        assert!(fm_b.ack_frames > 0, "stream mode must emit acks");
    }

    #[test]
    fn aggregation_reduces_delivery_bursts() {
        let no_bm = run_stream(Layer::Hybrid, &CFG, 64, 2000);
        let bm = run_stream(Layer::HybridBufMgmt, &CFG, 64, 2000);
        assert_eq!(no_bm.delivery_bursts, 2000, "no aggregation without bm");
        assert!(
            bm.delivery_bursts < 2000,
            "bm must aggregate ({} bursts)",
            bm.delivery_bursts
        );
    }

    #[test]
    fn stream_is_deterministic() {
        let a = run_stream(Layer::FullFm, &CFG, 128, 1000);
        let b = run_stream(Layer::FullFm, &CFG, 128, 1000);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.ack_frames, b.ack_frames);
    }

    #[test]
    fn headline_fm_numbers() {
        // Abstract: ~25 us one-way for 4-word messages, ~32 us for 128 B;
        // wait — those are the paper's *cluster* numbers including switch
        // hops and measurement overheads; our calibrated model must land
        // in the right regime: a few microseconds of software on both
        // sides. We assert the FM layer's simulated latency brackets.
        let l16 = run_pingpong(Layer::FullFm, &CFG, 16, 50).as_us_f64();
        let l128 = run_pingpong(Layer::FullFm, &CFG, 128, 50).as_us_f64();
        assert!(l16 < l128);
        assert!((4.0..10.0).contains(&l16), "16B latency {l16} us");
        assert!((8.0..18.0).contains(&l128), "128B latency {l128} us");
    }
}
