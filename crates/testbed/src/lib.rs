//! # fm-testbed — the simulated SPARCstation/Myrinet testbed
//!
//! Composes the hardware substrates (`fm-des`, `fm-myrinet`, `fm-sbus`,
//! `fm-lanai`) and the FM protocol machinery (`fm-core::flow`) into the
//! two-workstation testbed of the paper, and runs its experiments:
//! ping-pong latency (50 round trips, halved) and streaming bandwidth
//! (65 535 packets), exactly as Section 4.1 specifies.
//!
//! ## Simulation method
//!
//! The figure experiments are *feed-forward pipelines with computable
//! feedback* (the only feedback paths are the send-queue-full stall, the
//! flow-control window and the acknowledgement return). For these, the
//! testbed uses a **trajectory simulation**: every hardware resource (host
//! CPU, SBus, LANai processor, DMA engines, link, switch port) is a
//! busy-until timeline, and each packet's end-to-end chain is computed in
//! order. This is exact for pipelines of this shape, bit-deterministic, and
//! auditable — each time increment maps to a named constant from the paper.
//! The general event-driven engine (`fm-des::Engine`) drives the
//! protocol-dynamics experiments ([`dynamics`]) where arrival interleaving
//! is not statically known (rejection storms under overload).
//!
//! ## Layers
//!
//! [`Layer`] enumerates the messaging-layer configurations of Table 4; each
//! maps onto an LCP cost profile (`fm-lanai::LcpCosts`) plus host-side
//! budgets ([`calib::HostCosts`]).

pub mod calib;
pub mod credit;
pub mod dynamics;
pub mod experiments;
pub mod faults;
pub mod scaling;
pub mod sim;

pub use experiments::{bandwidth_sweep, latency_sweep, BandwidthPoint, LatencyPoint};
pub use faults::{run_loss_point, run_loss_sweep, FaultPoint, FaultSweepConfig};
pub use sim::{run_pingpong, run_stream, StreamReport};

use fm_lanai::LcpCosts;

/// The messaging-layer configurations measured in the paper (Table 4 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Figure 3 "Baseline": the naive LCP main loop, LANai-to-LANai only.
    LanaiBaseline,
    /// Figure 3 "Streamed": consolidated-check LCP, LANai-to-LANai only.
    LanaiStreamed,
    /// Figure 4 "Streamed + hybrid": host PIO out, DMA in.
    Hybrid,
    /// Figure 4 "Streamed + all DMA": DMA both directions (staging copy).
    AllDma,
    /// Figure 7 "+ buffer management": the four-queue scheme.
    HybridBufMgmt,
    /// Figure 7 "+ switch()": simulated packet interpretation in the LCP.
    HybridBufMgmtSwitch,
    /// Figure 8: buffer management + return-to-sender flow control —
    /// **the complete FM 1.0 layer**.
    FullFm,
    /// Table 4 penultimate FM row: the full layer plus `switch()`.
    FullFmSwitch,
}

impl Layer {
    /// Every layer, in Table-4 order.
    pub const ALL: [Layer; 8] = [
        Layer::LanaiBaseline,
        Layer::LanaiStreamed,
        Layer::Hybrid,
        Layer::HybridBufMgmt,
        Layer::FullFm,
        Layer::HybridBufMgmtSwitch,
        Layer::FullFmSwitch,
        Layer::AllDma,
    ];

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Layer::LanaiBaseline => "Baseline (LANai only)",
            Layer::LanaiStreamed => "Streamed (LANai only)",
            Layer::Hybrid => "Streamed + hybrid",
            Layer::AllDma => "Streamed + all DMA",
            Layer::HybridBufMgmt => "Streamed + hybrid + buff. mgmt.",
            Layer::HybridBufMgmtSwitch => "Streamed + hybrid + buff. mgmt. + switch()",
            Layer::FullFm => "Fast Messages 1.0 (+ flow control)",
            Layer::FullFmSwitch => "FM + flow control + switch()",
        }
    }

    /// Does this layer involve the hosts at all?
    pub fn host_coupled(self) -> bool {
        !matches!(self, Layer::LanaiBaseline | Layer::LanaiStreamed)
    }

    /// Does this layer use DMA (with a staging copy) on the outbound path?
    pub fn all_dma(self) -> bool {
        matches!(self, Layer::AllDma)
    }

    /// Four-queue buffer management active?
    pub fn buffer_mgmt(self) -> bool {
        matches!(
            self,
            Layer::HybridBufMgmt
                | Layer::HybridBufMgmtSwitch
                | Layer::FullFm
                | Layer::FullFmSwitch
        )
    }

    /// Return-to-sender flow control active?
    pub fn flow_control(self) -> bool {
        matches!(self, Layer::FullFm | Layer::FullFmSwitch)
    }

    /// The LCP instruction profile for this layer.
    pub fn lcp(self) -> LcpCosts {
        let base = match self {
            Layer::LanaiBaseline => LcpCosts::baseline(),
            _ => LcpCosts::streamed(),
        };
        let mut c = base;
        if self.host_coupled() {
            c = c.with_host_delivery();
        }
        if self.buffer_mgmt() {
            c = c.with_buffer_mgmt();
        }
        if matches!(self, Layer::HybridBufMgmtSwitch | Layer::FullFmSwitch) {
            c = c.with_switch_interp();
        }
        c
    }
}

/// Testbed sizing parameters (queue depths etc.).
#[derive(Debug, Clone, Copy)]
pub struct TestbedConfig {
    /// LANai send queue depth, in packets.
    pub send_queue: usize,
    /// Host-delivery aggregation limit per DMA burst (buffer management
    /// batches undelivered packets into one transfer; Section 4.4).
    pub agg_max: usize,
    /// Flow-control window (reject-queue capacity), packets.
    pub window: usize,
    /// Acks per acknowledgement frame (batched; Section 4.5).
    pub ack_batch: usize,
    /// Wire bytes of a standalone ack frame.
    pub ack_bytes: usize,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            send_queue: 8,
            agg_max: 8,
            window: 16,
            ack_batch: 4,
            ack_bytes: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_predicates_consistent() {
        assert!(!Layer::LanaiBaseline.host_coupled());
        assert!(!Layer::LanaiStreamed.buffer_mgmt());
        assert!(Layer::FullFm.buffer_mgmt());
        assert!(Layer::FullFm.flow_control());
        assert!(!Layer::HybridBufMgmt.flow_control());
        assert!(Layer::AllDma.all_dma());
        assert!(!Layer::Hybrid.all_dma());
    }

    #[test]
    fn lcp_profiles_follow_layers() {
        assert_eq!(Layer::LanaiBaseline.lcp(), LcpCosts::baseline());
        assert_eq!(Layer::LanaiStreamed.lcp(), LcpCosts::streamed());
        assert!(Layer::Hybrid.lcp().host_dma_path > 0);
        assert_eq!(Layer::Hybrid.lcp().buffer_mgmt, 0);
        assert!(Layer::HybridBufMgmt.lcp().buffer_mgmt > 0);
        assert!(Layer::HybridBufMgmtSwitch.lcp().interp_switch > 0);
        assert_eq!(Layer::FullFm.lcp().interp_switch, 0);
        assert!(Layer::FullFmSwitch.lcp().interp_switch > 0);
    }

    #[test]
    fn all_layers_listed_once() {
        let mut set = std::collections::HashSet::new();
        for l in Layer::ALL {
            assert!(set.insert(l), "{l:?} duplicated");
        }
        assert_eq!(set.len(), 8);
    }
}
