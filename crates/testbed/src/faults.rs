//! Loss-sweep experiment: goodput and tail latency vs injected fault rate.
//!
//! The figure experiments assume the Myrinet's near-zero bit error rate
//! (paper §2); this experiment deliberately breaks that assumption. The
//! real protocol engine (`fm-core::EndpointCore`, with its CRC trailer,
//! sequence windows and retransmission timers) runs on the discrete-event
//! engine while the harness plays a faulty wire: every frame — data *and*
//! ack alike — can be dropped, duplicated, bit-flipped or delayed, with
//! per-run seeded randomness so each point of the sweep is exactly
//! reproducible.
//!
//! Corruption goes through the *actual codec*: the frame is encoded, one
//! random bit of the image is flipped, and the decoder gets to object.
//! A frame whose damage is caught (always, for single-bit flips — see the
//! CRC property tests) simply never reaches the peer's protocol state,
//! exactly as a receiver discarding a bad-CRC frame.
//!
//! The emitted numbers feed `BENCH_faults.json` (via the `bench_faults`
//! binary): delivered goodput and p50/p99 end-to-end message latency as a
//! function of the injected fault rate.

use fm_core::endpoint::{EndpointConfig, EndpointCore};
use fm_core::{HandlerId, NodeId, WireFrame};
use fm_des::rng::Xoshiro256;
use fm_des::{Duration, Engine, Time};
use std::sync::{Arc, Mutex};

/// Parameters of one loss-sweep point.
#[derive(Debug, Clone, Copy)]
pub struct FaultSweepConfig {
    /// Messages node 0 streams at node 1.
    pub count: usize,
    /// Payload bytes per message (>= 4: the first word carries the
    /// message index for latency tracking; <= 128).
    pub payload: usize,
    /// One-way frame flight time.
    pub flight: Duration,
    /// Sender injection period.
    pub send_period: Duration,
    /// Receiver extract period.
    pub extract_period: Duration,
    /// Endpoint sizing.
    pub window: usize,
    pub recv_ring: usize,
    /// Retransmission timing, in endpoint extract ticks (the protocol
    /// engine has no wall clock). Small values recover losses quickly at
    /// the cost of occasional spurious retransmissions — which the
    /// receiver's dedup window absorbs.
    pub rto_initial: u64,
    pub rto_max: u64,
    pub retry_budget: u32,
    /// Root seed for the fault schedule.
    pub seed: u64,
    /// Injected delays hold a frame for `1..=max_extra_flights` extra
    /// flight times (reordering it past its successors).
    pub max_extra_flights: u64,
}

impl Default for FaultSweepConfig {
    fn default() -> Self {
        FaultSweepConfig {
            count: 5_000,
            payload: 128,
            flight: Duration::from_us(5),
            send_period: Duration::from_us(2),
            extract_period: Duration::from_us(4),
            window: 64,
            recv_ring: 64,
            rto_initial: 32,
            rto_max: 1 << 10,
            retry_budget: 64,
            seed: 0x10_55,
            max_extra_flights: 4,
        }
    }
}

/// Outcome of one loss-sweep point.
#[derive(Debug, Clone, Copy)]
pub struct FaultPoint {
    /// The injected per-category fault rate.
    pub rate: f64,
    /// Messages delivered (the run asserts this equals `count`, exactly
    /// once each, in order).
    pub delivered: u64,
    /// Harness-side injection counters.
    pub injected_drops: u64,
    pub injected_dups: u64,
    pub injected_corrupt: u64,
    pub injected_delays: u64,
    /// Corrupted frames the codec rejected (must equal `injected_corrupt`:
    /// single-bit flips never decode).
    pub crc_rejected: u64,
    /// Protocol recovery counters (sender + receiver).
    pub retransmitted: u64,
    pub timer_retransmits: u64,
    pub duplicates_suppressed: u64,
    /// Simulated time to the last delivery.
    pub elapsed: Duration,
    /// Delivered payload bandwidth, MB/s (2^20).
    pub goodput_mbs: f64,
    /// End-to-end message latency percentiles (inject -> handler).
    pub p50: Duration,
    pub p99: Duration,
}

#[derive(Debug)]
enum Ev {
    SendTick,
    ExtractTick,
    /// A (possibly duplicated/delayed) frame lands at node `0`/`1`.
    Deliver(u8, WireFrame),
}

/// Run one point of the sweep: two nodes, `rate` applied independently to
/// drop / duplication / corruption / delay on every frame in both
/// directions.
///
/// # Panics
/// If any message is lost, duplicated or delivered out of order — the
/// sweep doubles as an end-to-end exactly-once check.
pub fn run_loss_point(rate: f64, cfg: FaultSweepConfig) -> FaultPoint {
    assert!((0.0..=0.5).contains(&rate), "rate {rate} out of range");
    assert!((4..=128).contains(&cfg.payload));
    let ep_cfg = EndpointConfig {
        window: cfg.window,
        recv_ring: cfg.recv_ring,
        rto_initial: cfg.rto_initial,
        rto_max: cfg.rto_max,
        retry_budget: cfg.retry_budget,
        ..Default::default()
    };
    let mut sender = EndpointCore::new(NodeId(0), ep_cfg);
    let mut receiver = EndpointCore::new(NodeId(1), ep_cfg);

    // The handler records delivered message indices; the event loop stamps
    // them with the simulated delivery time right after each extract.
    let delivered_idx: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let d2 = delivered_idx.clone();
    receiver.register_handler_at(
        HandlerId(1),
        Box::new(move |_, _, data| {
            d2.lock().unwrap().push(u32::from_le_bytes(data[..4].try_into().unwrap()));
        }),
    );

    let mut rng = Xoshiro256::seed_from_u64(cfg.seed ^ (rate * 1e9) as u64);
    let mut inject_time: Vec<Time> = Vec::with_capacity(cfg.count);
    let mut deliver_time: Vec<Option<Time>> = vec![None; cfg.count];
    let mut stamped = 0usize; // delivered_idx entries already time-stamped

    let mut eng: Engine<Ev> = Engine::new();
    eng.schedule_at(Time::ZERO, Ev::SendTick);
    eng.schedule_at(Time::ZERO, Ev::ExtractTick);

    let mut sent = 0usize;
    let mut injected_drops = 0u64;
    let mut injected_dups = 0u64;
    let mut injected_corrupt = 0u64;
    let mut injected_delays = 0u64;
    let mut crc_rejected = 0u64;
    let mut last_delivery = Time::ZERO;

    // The faulty wire: every outgoing frame rolls each fault category
    // independently. Delivery events carry the decoded frame.
    macro_rules! flush {
        ($ep:expr, $me:expr) => {
            while let Some(frame) = $ep.pop_outgoing() {
                let dst: u8 = if $me == 0 { 1 } else { 0 };
                if rng.next_bool(rate) {
                    injected_drops += 1;
                    continue;
                }
                let copies = if rng.next_bool(rate) {
                    injected_dups += 1;
                    2
                } else {
                    1
                };
                for _ in 0..copies {
                    let mut flight = cfg.flight;
                    if rng.next_bool(rate) {
                        injected_delays += 1;
                        let extra = rng.next_range(1, cfg.max_extra_flights + 1);
                        flight = Duration::from_ps(cfg.flight.as_ps() * (1 + extra));
                    }
                    if rng.next_bool(rate) {
                        injected_corrupt += 1;
                        // Through the real codec: encode, flip one bit,
                        // let the CRC judge.
                        let enc = frame.encode();
                        let mut damaged = enc.to_vec();
                        let bit = rng.next_below(damaged.len() as u64 * 8) as u32;
                        fm_core::fault::flip_bit(&mut damaged, bit);
                        match WireFrame::decode(&bytes::Bytes::from(damaged)) {
                            Ok(f) => eng.schedule_in(flight, Ev::Deliver(dst, f)),
                            Err(_) => crc_rejected += 1, // discarded at the NIC
                        }
                    } else {
                        eng.schedule_in(flight, Ev::Deliver(dst, frame.clone()));
                    }
                }
            }
        };
    }

    // Wedge guard: a healthy run needs a few events per message plus the
    // periodic ticks; blowing far past that means the protocol stopped
    // making progress (e.g. a falsely-freed window slot leaving a receiver
    // waiting forever). Panic with the state rather than spin silently.
    let event_cap = 1_000 * cfg.count as u64 + 100_000;
    let mut events = 0u64;

    while let Some((now, ev)) = eng.pop() {
        events += 1;
        assert!(
            events <= event_cap,
            "loss sweep wedged at rate {rate}: {events} events, sent {sent}/{}, \
             delivered {stamped}, sender quiescent {}, receiver quiescent {}\n\
             sender: {:?}\nreceiver: {:?}",
            cfg.count,
            sender.is_quiescent(),
            receiver.is_quiescent(),
            sender.stats(),
            receiver.stats(),
        );
        match ev {
            Ev::SendTick => {
                if sent < cfg.count {
                    let mut payload = vec![0xA5u8; cfg.payload];
                    payload[..4].copy_from_slice(&(sent as u32).to_le_bytes());
                    if sender
                        .try_send(NodeId(1), HandlerId(1), bytes::Bytes::from(payload))
                        .is_ok()
                    {
                        inject_time.push(now);
                        sent += 1;
                    } else {
                        sender.extract(usize::MAX);
                    }
                    eng.schedule_in(cfg.send_period, Ev::SendTick);
                } else if !sender.is_quiescent() {
                    sender.extract(usize::MAX);
                    eng.schedule_in(cfg.send_period, Ev::SendTick);
                }
                flush!(&mut sender, 0);
            }
            Ev::ExtractTick => {
                receiver.extract(usize::MAX);
                flush!(&mut receiver, 1);
                {
                    let idx = delivered_idx.lock().unwrap();
                    for &i in &idx[stamped..] {
                        last_delivery = now;
                        deliver_time[i as usize] = Some(now);
                    }
                    stamped = idx.len();
                }
                // Keep ticking until the *sender* quiesces too: a timer
                // retransmit arriving after the receiver has gone quiet
                // is re-acked into the AckTracker, and only an extract
                // flushes acks onto the wire.
                if stamped < cfg.count || !receiver.is_quiescent() || !sender.is_quiescent() {
                    eng.schedule_in(cfg.extract_period, Ev::ExtractTick);
                }
            }
            Ev::Deliver(node, frame) => {
                let (ep, me) = if node == 0 {
                    (&mut sender, 0u8)
                } else {
                    (&mut receiver, 1u8)
                };
                ep.on_wire(frame);
                if me == 0 {
                    flush!(&mut sender, 0);
                } else {
                    flush!(&mut receiver, 1);
                }
            }
        }
        if stamped >= cfg.count && sender.is_quiescent() && receiver.is_quiescent() {
            break;
        }
    }

    // Exactly once, in order: indices 0..count verbatim.
    {
        let idx = delivered_idx.lock().unwrap();
        assert_eq!(idx.len(), cfg.count, "lost or duplicated messages");
        for (expect, &got) in idx.iter().enumerate() {
            assert_eq!(got as usize, expect, "delivered out of order");
        }
    }
    assert!(
        !sender.is_dead(NodeId(1)),
        "retry budget too small for rate {rate}"
    );
    assert_eq!(
        crc_rejected, injected_corrupt,
        "a corrupted frame slipped past the CRC"
    );

    // Inject→deliver latency percentiles via the shared fm-telemetry
    // histogram (log2-linear buckets, ≤1/32 relative quantization) — the
    // same extractor the bench gate reads, replacing this module's old
    // sorted-Vec percentile code.
    let lat = fm_telemetry::Histogram::new();
    for (d, i) in deliver_time.iter().zip(&inject_time) {
        lat.record(d.expect("all delivered").since(*i).as_ps());
    }
    let pct = |p: f64| Duration::from_ps(lat.quantile(p));

    let elapsed = last_delivery.since(Time::ZERO);
    FaultPoint {
        rate,
        delivered: stamped as u64,
        injected_drops,
        injected_dups,
        injected_corrupt,
        injected_delays,
        crc_rejected,
        retransmitted: sender.stats().retransmitted + receiver.stats().retransmitted,
        timer_retransmits: sender.stats().timer_retransmits + receiver.stats().timer_retransmits,
        duplicates_suppressed: sender.stats().duplicates + receiver.stats().duplicates,
        elapsed,
        goodput_mbs: if elapsed == Duration::ZERO {
            0.0
        } else {
            (stamped as f64 * cfg.payload as f64) / elapsed.as_secs_f64() / (1u64 << 20) as f64
        },
        p50: pct(0.50),
        p99: pct(0.99),
    }
}

/// Run the full sweep.
pub fn run_loss_sweep(rates: &[f64], cfg: FaultSweepConfig) -> Vec<FaultPoint> {
    rates.iter().map(|&r| run_loss_point(r, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FaultSweepConfig {
        FaultSweepConfig {
            count: 600,
            ..Default::default()
        }
    }

    #[test]
    fn clean_wire_needs_no_recovery() {
        let p = run_loss_point(0.0, small());
        assert_eq!(p.delivered, 600);
        assert_eq!(p.injected_drops + p.injected_corrupt + p.injected_dups, 0);
        assert_eq!(p.retransmitted, 0, "{p:?}");
        assert_eq!(p.timer_retransmits, 0, "{p:?}");
    }

    #[test]
    fn lossy_wire_recovers_exactly_once() {
        let p = run_loss_point(0.05, small());
        assert_eq!(p.delivered, 600);
        assert!(p.injected_drops > 0 && p.injected_corrupt > 0);
        assert!(p.timer_retransmits > 0, "drops recover via timers: {p:?}");
        assert!(p.duplicates_suppressed > 0, "{p:?}");
    }

    #[test]
    fn latency_and_recovery_grow_with_loss() {
        let clean = run_loss_point(0.0, small());
        let lossy = run_loss_point(0.10, small());
        assert!(lossy.p99 > clean.p99, "{clean:?} vs {lossy:?}");
        assert!(lossy.retransmitted + lossy.timer_retransmits > clean.retransmitted);
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run_loss_point(0.03, small());
        let b = run_loss_point(0.03, small());
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.injected_drops, b.injected_drops);
        assert_eq!(a.p99, b.p99);
    }
}
