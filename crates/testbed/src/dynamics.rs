//! Protocol dynamics under overload — an event-driven experiment.
//!
//! The figure experiments run the receiver at full speed, so
//! return-to-sender rejection never fires (matching the paper's
//! steady-state numbers). This module asks the question the paper's
//! Section 5 leaves open ("interesting areas for future study include
//! comparing return-to-sender to traditional window protocols"): *what
//! happens when the receiver polls slowly?* Packets bounce, retransmit and
//! eventually land; memory stays bounded by the sender's reject queue.
//!
//! Unlike the trajectory experiments, arrival interleaving here depends on
//! runtime state (bounces race with fresh sends), so this harness runs the
//! real protocol engine (`fm-core::EndpointCore`) on the discrete-event
//! engine (`fm-des::Engine`), with frame flight times taken from the
//! calibrated FM layer.

use fm_core::endpoint::{EndpointConfig, EndpointCore};
use fm_core::{HandlerId, NodeId, WireFrame};
use fm_des::{Duration, Engine, Time};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Parameters of one overload run.
#[derive(Debug, Clone, Copy)]
pub struct DynamicsConfig {
    /// Messages the sender will inject.
    pub count: usize,
    /// Payload bytes per message (<= 128).
    pub payload: usize,
    /// One-way frame flight time (use the calibrated FM latency).
    pub flight: Duration,
    /// Sender injection period (0 = as fast as the window allows, paced at
    /// `flight / 4`).
    pub send_period: Duration,
    /// Receiver extract period — the overload knob.
    pub extract_period: Duration,
    /// Deliveries per extract call.
    pub extract_budget: usize,
    /// Endpoint sizing.
    pub window: usize,
    pub recv_ring: usize,
    /// Receiver reorder-window lookahead. Defaults to 0, which disables
    /// the beyond-paper Ahead-buffering so the experiment reproduces the
    /// paper's pure return-to-sender dynamics: a full receiver bounces,
    /// period. Raise it to study how the reliability layer's reorder
    /// buffering tames the bounce storm.
    pub reorder_window: u32,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig {
            count: 1000,
            payload: 128,
            flight: Duration::from_us(5),
            send_period: Duration::from_us(2),
            extract_period: Duration::from_us(10),
            extract_budget: usize::MAX,
            window: 64,
            recv_ring: 32,
            reorder_window: 0,
        }
    }
}

/// Outcome of one overload run.
#[derive(Debug, Clone, Copy)]
pub struct DynamicsReport {
    /// Wall-clock (simulated) time until the last delivery.
    pub elapsed: Duration,
    pub delivered: u64,
    /// Incoming frames the receiver bounced.
    pub rejected: u64,
    /// Retransmissions the sender issued.
    pub retransmitted: u64,
    /// Peak sender memory, in outstanding frames (bounded by the window).
    pub peak_outstanding: usize,
    /// Delivered payload bandwidth in MB/s (2^20).
    pub goodput_mbs: f64,
    /// Total frames that crossed the wire (data + returns + acks).
    pub wire_frames: u64,
}

#[derive(Debug)]
enum Ev {
    SendTick,
    ExtractTick,
    Deliver(u8, WireFrame),
}

/// Run a two-node overload experiment: node 0 streams `count` messages at
/// node 1, which extracts only every `extract_period`.
pub fn run_overload(cfg: DynamicsConfig) -> DynamicsReport {
    assert!(cfg.payload <= 128);
    let ep_cfg = EndpointConfig {
        window: cfg.window,
        recv_ring: cfg.recv_ring,
        reorder_window: cfg.reorder_window,
        ..Default::default()
    };
    let mut sender = EndpointCore::new(NodeId(0), ep_cfg);
    let mut receiver = EndpointCore::new(NodeId(1), ep_cfg);
    let delivered = Arc::new(AtomicU64::new(0));
    let d2 = delivered.clone();
    receiver.register_handler_at(
        HandlerId(1),
        Box::new(move |_, _, _| {
            d2.fetch_add(1, Ordering::Relaxed);
        }),
    );

    let payload = vec![0xA5u8; cfg.payload];
    let send_period = if cfg.send_period == Duration::ZERO {
        Duration::from_ps((cfg.flight.as_ps() / 4).max(1))
    } else {
        cfg.send_period
    };

    let mut eng: Engine<Ev> = Engine::new();
    eng.schedule_at(Time::ZERO, Ev::SendTick);
    eng.schedule_at(Time::ZERO, Ev::ExtractTick);

    let mut sent = 0usize;
    let mut wire_frames = 0u64;
    let mut peak_outstanding = 0usize;
    let mut last_delivery_time = Time::ZERO;
    let mut last_delivered_count = 0u64;

    while let Some((now, ev)) = eng.pop() {
        match ev {
            Ev::SendTick => {
                if sent < cfg.count {
                    if sender
                        .try_send(NodeId(1), HandlerId(1), payload.clone())
                        .is_ok()
                    {
                        sent += 1;
                    } else {
                        // Window full: service the protocol (retransmits,
                        // ack processing) like a real FM_send spin would.
                        sender.extract(usize::MAX);
                    }
                    eng.schedule_in(send_period, Ev::SendTick);
                } else if !sender.is_quiescent() {
                    sender.extract(usize::MAX);
                    eng.schedule_in(send_period, Ev::SendTick);
                }
                peak_outstanding = peak_outstanding.max(sender.outstanding());
                flush(&mut sender, 0, cfg.flight, &mut eng, &mut wire_frames);
            }
            Ev::ExtractTick => {
                receiver.extract(cfg.extract_budget);
                flush(&mut receiver, 1, cfg.flight, &mut eng, &mut wire_frames);
                let d = delivered.load(Ordering::Relaxed);
                if d > last_delivered_count {
                    last_delivered_count = d;
                    last_delivery_time = now;
                }
                if d < cfg.count as u64 || !receiver.is_quiescent() {
                    eng.schedule_in(cfg.extract_period, Ev::ExtractTick);
                }
            }
            Ev::Deliver(node, frame) => {
                let ep = if node == 0 { &mut sender } else { &mut receiver };
                ep.on_wire(frame);
                flush(
                    if node == 0 { &mut sender } else { &mut receiver },
                    node,
                    cfg.flight,
                    &mut eng,
                    &mut wire_frames,
                );
            }
        }
        if delivered.load(Ordering::Relaxed) >= cfg.count as u64
            && sender.is_quiescent()
            && receiver.is_quiescent()
        {
            break;
        }
    }

    let d = delivered.load(Ordering::Relaxed);
    let elapsed = last_delivery_time.since(Time::ZERO);
    DynamicsReport {
        elapsed,
        delivered: d,
        rejected: receiver.stats().rejected,
        retransmitted: sender.stats().retransmitted,
        peak_outstanding,
        goodput_mbs: if elapsed == Duration::ZERO {
            0.0
        } else {
            (d as f64 * cfg.payload as f64) / elapsed.as_secs_f64() / (1u64 << 20) as f64
        },
        wire_frames,
    }
}

/// Ship an endpoint's queued frames: each becomes a Deliver event at the
/// peer after one flight time.
fn flush(
    ep: &mut EndpointCore,
    me: u8,
    flight: Duration,
    eng: &mut Engine<Ev>,
    wire_frames: &mut u64,
) {
    while let Some(f) = ep.pop_outgoing() {
        let dst = if me == 0 { 1 } else { 0 };
        debug_assert_eq!(f.dst, NodeId(dst as u16));
        *wire_frames += 1;
        eng.schedule_in(flight, Ev::Deliver(dst, f));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_receiver_no_rejections() {
        let r = run_overload(DynamicsConfig {
            count: 500,
            extract_period: Duration::from_us(1),
            recv_ring: 256,
            ..Default::default()
        });
        assert_eq!(r.delivered, 500);
        assert_eq!(r.rejected, 0);
        assert_eq!(r.retransmitted, 0);
    }

    #[test]
    fn slow_receiver_bounces_but_everything_lands() {
        let r = run_overload(DynamicsConfig {
            count: 500,
            send_period: Duration::from_us(1),
            extract_period: Duration::from_us(200),
            extract_budget: 8,
            recv_ring: 8,
            window: 32,
            ..Default::default()
        });
        assert_eq!(r.delivered, 500, "{r:?}");
        assert!(r.rejected > 0, "overload must cause rejections: {r:?}");
        assert!(r.retransmitted > 0);
        assert!(r.peak_outstanding <= 32, "window bounds sender memory");
        assert!(r.wire_frames > 500, "returns/acks add wire traffic");
    }

    #[test]
    fn goodput_degrades_with_slower_extract() {
        let fast = run_overload(DynamicsConfig {
            count: 400,
            extract_period: Duration::from_us(5),
            ..Default::default()
        });
        let slow = run_overload(DynamicsConfig {
            count: 400,
            extract_period: Duration::from_us(500),
            extract_budget: 4,
            recv_ring: 8,
            ..Default::default()
        });
        assert!(
            fast.goodput_mbs > slow.goodput_mbs,
            "fast {} vs slow {}",
            fast.goodput_mbs,
            slow.goodput_mbs
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = DynamicsConfig {
            count: 300,
            extract_period: Duration::from_us(50),
            recv_ring: 16,
            ..Default::default()
        };
        let a = run_overload(cfg);
        let b = run_overload(cfg);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.wire_frames, b.wire_frames);
    }
}
