//! # fm-lanai — the Myrinet network coprocessor and its control programs
//!
//! The LANai 2.3 is the paper's central constraint: a ~5 MIPS CISC
//! coprocessor (one instruction per 3–4 cycles at the 25 MHz SBus clock)
//! that must keep up with a 76.3 MB/s link. Spooling a 128-byte packet takes
//! 1.6 µs — "the equivalent of only about eight to ten LANai instructions"
//! (Section 2). Every instruction in the LANai control program's inner loop
//! is therefore directly visible in latency and half-power point, which is
//! why the paper's Figure 3/7 experiments vary the LCP and measure the
//! damage.
//!
//! This crate provides:
//! * [`chip`] — the hardware resources: the sequential LCP processor and the
//!   three DMA engines (incoming channel, outgoing channel, host), modeled
//!   as busy-until resources with the Appendix-A setup cost;
//! * [`lcp`] — instruction budgets for each LCP variant the paper measures
//!   (*baseline*, *streamed*, ± buffer management, ± simulated packet
//!   interpretation), with each budget anchored to the Table-4 row it
//!   reproduces.

pub mod chip;
pub mod consts;
pub mod lcp;

pub use chip::{DmaEngine, LanaiChip};
pub use consts::*;
pub use lcp::{LcpCosts, LcpVariant};
