//! LANai 2.3 timing constants (paper Section 2 and Appendix A).

use fm_des::Duration;

/// LANai clock cycle: the chip runs at the SBus clock (20–25 MHz); we use
/// 25 MHz = 40 ns, the value Appendix A uses (8 cycles x 40 ns = 320 ns DMA
/// setup).
pub const CYCLE: Duration = Duration(40_000);

/// Cycles per LANai instruction: "executing one instruction every 3–4
/// cycles" (Section 2). We use 4, making one instruction 160 ns; at that
/// rate spooling a 128-byte packet (1.6 µs of wire time) equals 10
/// instructions, matching the paper's "eight to ten".
pub const CYCLES_PER_INSTR: u64 = 4;

/// Time per LANai instruction.
pub const INSTR: Duration = Duration(CYCLE.0 * CYCLES_PER_INSTR);

/// DMA engine setup: 8 cycles = 320 ns (Appendix A).
pub const DMA_SETUP: Duration = Duration(CYCLE.0 * 8);

/// On-board SRAM: 128 KB (Section 5 compares this against HPAM's 1 MB).
pub const SRAM_BYTES: usize = 128 * 1024;

/// Time for `n` LANai instructions.
#[inline]
pub const fn instr(n: u64) -> Duration {
    Duration(INSTR.0 * n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_myrinet::consts::wire_time;

    #[test]
    fn instruction_is_160ns() {
        assert_eq!(INSTR, Duration::from_ns(160));
        assert_eq!(instr(10), Duration::from_ns(1600));
    }

    #[test]
    fn dma_setup_matches_appendix_a() {
        assert_eq!(DMA_SETUP, Duration::from_ns(320));
    }

    #[test]
    fn spooling_128_bytes_is_8_to_10_instructions() {
        // Paper Section 2: the sanity check that ties the instruction cost
        // to the link rate.
        let spool = wire_time(128);
        let instrs = spool.as_ps() / INSTR.as_ps();
        assert!((8..=10).contains(&instrs), "{instrs} instructions");
    }

    #[test]
    fn mips_is_about_5() {
        let ips = 1e12 / INSTR.as_ps() as f64;
        assert!((5e6..8e6).contains(&ips), "{ips} instr/s");
    }
}
