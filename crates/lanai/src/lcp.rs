//! LANai control program (LCP) instruction budgets.
//!
//! The paper's Figure 2 gives pseudocode for two main-loop organizations:
//!
//! * **baseline** — the straightforward loop: every iteration re-checks the
//!   send condition (`hostsent != lanaisent` *and* channel free) and the
//!   receive condition, sends at most one packet and receives at most one
//!   packet, then loops;
//! * **streamed** — consolidates the checks and turns each arm into an inner
//!   `while`, so a burst of sends (or receives) pays the condition checks
//!   and loop overhead once per *burst boundary* rather than once per
//!   packet.
//!
//! We charge each step of those programs an instruction count. The counts
//! are not arbitrary: each constant is anchored to a Table-4 row (see the
//! field docs), and `fm-testbed`'s calibration tests assert that the
//! simulated t0 / n_1/2 land near the paper's values.
//!
//! A key structural point (Section 4.2): even the streamed LCP *blocks*
//! on its DMA operations — the pseudocode's "send packet" / "receive
//! packet" are sequential steps of a sequential program. The streaming win
//! comes from skipping redundant checks, not from overlap. This is why the
//! measured latency slope in Figure 3(a) is roughly twice the Appendix-A
//! model's 12.5 ns/B (the receive DMA is armed only after the packet is
//! detected) and why both curves sit well above "theoretical peak".

/// Which main-loop organization the LCP uses (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LcpVariant {
    /// Figure 2(a): re-check everything every iteration.
    Baseline,
    /// Figure 2(b): consolidated checks, streaming inner loops.
    Streamed,
}

/// Instruction budgets for one LCP configuration.
///
/// All counts are in LANai instructions (160 ns each, see
/// [`crate::consts::INSTR`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcpCosts {
    pub variant: LcpVariant,
    /// Send path on an isolated packet: detect `hostsent != lanaisent`,
    /// compute the buffer address, program the outgoing-channel DMA, bump
    /// `lanaisent`. Anchors the send-side share of Table 4's t0 (4.2 µs
    /// baseline / 3.5 µs streamed, split with `recv_path`).
    pub send_path: u64,
    /// Receive path on an isolated packet: detect a packet on the receive
    /// channel, program the incoming-channel DMA, post-process.
    pub recv_path: u64,
    /// Extra instructions per packet when the loop immediately continues
    /// with more work (ring-pointer wrap checks, DMA-completion polling,
    /// and — for baseline — the redundant other-direction checks that the
    /// streamed loop hoists out). Charged only in back-to-back operation,
    /// which is why it moves n_1/2 (315 B baseline vs 249 B streamed,
    /// Table 4) but not the single-packet latency t0.
    pub stream_extra: u64,
    /// Programming the host DMA engine to deliver received packets into the
    /// host receive queue (host-coupled layers only; zero in the Figure-3
    /// LANai-only experiments).
    pub host_dma_path: u64,
    /// Per-*burst* cost of the host-delivery DMA when buffer management
    /// aggregates several received packets into a single transfer
    /// (Section 4.4: "packets to be aggregated and transferred with a
    /// single DMA operation").
    pub host_dma_per_burst: u64,
    /// Extra per-packet queue bookkeeping when FM's four-queue buffer
    /// management is enabled (Table 4: n_1/2 44 -> 53 B costs ~2
    /// instructions on the receive bottleneck).
    pub buffer_mgmt: u64,
    /// The simulated `switch()` packet-interpretation cost added to the
    /// streaming receive loop in Section 4.4's third experiment. 19
    /// instructions = 3.0 µs, reproducing Table 4's t0 jump from 3.8 µs to
    /// 6.8 µs and n_1/2 from 53 B to 127 B.
    pub interp_switch: u64,
}

impl LcpCosts {
    /// Figure 2(a) baseline loop. Calibration: t0 = 4.2 µs, n_1/2 = 315 B
    /// (Table 4 row 1).
    pub const fn baseline() -> Self {
        LcpCosts {
            variant: LcpVariant::Baseline,
            send_path: 9,
            recv_path: 10,
            stream_extra: 12,
            host_dma_path: 0,
            host_dma_per_burst: 0,
            buffer_mgmt: 0,
            interp_switch: 0,
        }
    }

    /// Figure 2(b) streamed loop. Calibration: t0 = 3.5 µs, n_1/2 = 249 B
    /// (Table 4 row 2). All host-coupled layers build on this one.
    pub const fn streamed() -> Self {
        LcpCosts {
            variant: LcpVariant::Streamed,
            send_path: 7,
            recv_path: 7,
            stream_extra: 10,
            host_dma_path: 0,
            host_dma_per_burst: 0,
            buffer_mgmt: 0,
            interp_switch: 0,
        }
    }

    /// Enable host delivery (Figures 4+): the LCP programs the host DMA
    /// engine after each receive (or each aggregated burst).
    pub const fn with_host_delivery(mut self) -> Self {
        self.host_dma_path = 3;
        self.host_dma_per_burst = 2;
        self
    }

    /// Enable FM's four-queue buffer management (Figure 7, second curve).
    pub const fn with_buffer_mgmt(mut self) -> Self {
        self.buffer_mgmt = 2;
        self
    }

    /// Add the simulated `switch()` interpretation (Figure 7, third curve).
    pub const fn with_switch_interp(mut self) -> Self {
        self.interp_switch = 19;
        self
    }

    /// Per-packet receive-side instructions in back-to-back streaming
    /// (the bandwidth-test bottleneck).
    pub const fn recv_stream_instr(&self) -> u64 {
        self.recv_path + self.stream_extra + self.buffer_mgmt + self.interp_switch
    }

    /// Receive-side instructions for an isolated packet (the latency
    /// path): no streaming extras, but queue bookkeeping and the simulated
    /// `switch()` interpretation are per-packet costs and apply here too.
    pub const fn recv_isolated_instr(&self) -> u64 {
        self.recv_path + self.buffer_mgmt + self.interp_switch
    }

    /// Per-packet send-side instructions in back-to-back streaming.
    pub const fn send_stream_instr(&self) -> u64 {
        self.send_path + self.stream_extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::{instr, DMA_SETUP};
    use fm_des::Duration;
    use fm_myrinet::consts::{wire_time, SWITCH_LATENCY};

    /// Closed-form one-way latency of the LANai-only layer for packet size
    /// `n` (the Figure-3 configuration): sender path + outgoing DMA +
    /// switch + receiver path + incoming DMA.
    fn one_way(c: &LcpCosts, n: usize) -> Duration {
        instr(c.send_path)
            + DMA_SETUP
            + wire_time(n)
            + SWITCH_LATENCY
            + instr(c.recv_path)
            + DMA_SETUP
            + wire_time(n)
    }

    /// Closed-form streaming per-packet time (receive side, the
    /// bottleneck).
    fn per_packet_stream(c: &LcpCosts, n: usize) -> Duration {
        instr(c.recv_stream_instr()) + DMA_SETUP + wire_time(n)
    }

    #[test]
    fn baseline_t0_near_4_2us() {
        let t0 = one_way(&LcpCosts::baseline(), 0);
        let us = t0.as_us_f64();
        assert!((3.9..4.5).contains(&us), "baseline t0 = {us} us");
    }

    #[test]
    fn streamed_t0_near_3_5us() {
        let t0 = one_way(&LcpCosts::streamed(), 0);
        let us = t0.as_us_f64();
        assert!((3.2..3.8).contains(&us), "streamed t0 = {us} us");
    }

    #[test]
    fn n_half_ordering_and_magnitude() {
        // n_1/2 = fixed-cost / 12.5 ns per byte in the serial model.
        let nb = per_packet_stream(&LcpCosts::baseline(), 0).as_ns_f64() / 12.5;
        let ns = per_packet_stream(&LcpCosts::streamed(), 0).as_ns_f64() / 12.5;
        assert!(ns < nb, "streamed must have smaller n_1/2");
        assert!((260.0..360.0).contains(&nb), "baseline n_1/2 ~ 315 B, got {nb}");
        assert!((200.0..290.0).contains(&ns), "streamed n_1/2 ~ 249 B, got {ns}");
    }

    #[test]
    fn switch_interp_adds_3us() {
        let plain = LcpCosts::streamed().with_host_delivery().with_buffer_mgmt();
        let interp = plain.with_switch_interp();
        let delta = instr(interp.interp_switch);
        assert_eq!(delta, Duration::from_ns(19 * 160));
        assert!((2.9..3.2).contains(&delta.as_us_f64()));
        assert_eq!(
            interp.recv_stream_instr() - plain.recv_stream_instr(),
            19
        );
    }

    #[test]
    fn builders_compose() {
        let c = LcpCosts::streamed()
            .with_host_delivery()
            .with_buffer_mgmt()
            .with_switch_interp();
        assert_eq!(c.variant, LcpVariant::Streamed);
        assert!(c.host_dma_path > 0);
        assert!(c.buffer_mgmt > 0);
        assert!(c.interp_switch > 0);
        // Baseline remains untouched by the builder pattern.
        assert_eq!(LcpCosts::baseline().host_dma_path, 0);
    }
}
