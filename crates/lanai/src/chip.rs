//! The LANai chip: one sequential processor plus three autonomous DMA
//! engines (incoming channel, outgoing channel, host), each a busy-until
//! resource. The processor *programs* an engine (paying instruction and
//! setup costs) and may then either block on it — the sequential style of
//! the paper's Figure-2 pseudocode — or continue and poll completion later.

use crate::consts::{instr, DMA_SETUP, SRAM_BYTES};
use fm_des::{Duration, Time};
use fm_myrinet::consts::wire_time;
use fm_sbus::consts::dma_burst_time;

/// Identifies one of the LANai's three DMA engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaEngine {
    /// Network receive channel -> LANai SRAM.
    NetIn,
    /// LANai SRAM -> network send channel.
    NetOut,
    /// LANai SRAM <-> host memory across the SBus.
    Host,
}

/// One LANai chip's resources.
#[derive(Debug, Clone)]
pub struct LanaiChip {
    proc_free: Time,
    net_in_free: Time,
    net_out_free: Time,
    host_free: Time,
    proc_busy: Duration,
    instructions: u64,
}

impl Default for LanaiChip {
    fn default() -> Self {
        Self::new()
    }
}

impl LanaiChip {
    pub fn new() -> Self {
        LanaiChip {
            proc_free: Time::ZERO,
            net_in_free: Time::ZERO,
            net_out_free: Time::ZERO,
            host_free: Time::ZERO,
            proc_busy: Duration::ZERO,
            instructions: 0,
        }
    }

    /// Execute `n` LCP instructions starting no earlier than `now`; returns
    /// completion time. The processor is sequential, so bursts serialize.
    pub fn exec(&mut self, now: Time, n: u64) -> Time {
        let start = now.max(self.proc_free);
        let end = start + instr(n);
        self.proc_free = end;
        self.proc_busy += instr(n);
        self.instructions += n;
        end
    }

    /// Block the processor until `until` (a blocking wait on a DMA engine,
    /// as in the Figure-2 pseudocode steps).
    pub fn block_until(&mut self, until: Time) {
        if until > self.proc_free {
            self.proc_free = until;
        }
    }

    fn engine_free(&mut self, e: DmaEngine) -> &mut Time {
        match e {
            DmaEngine::NetIn => &mut self.net_in_free,
            DmaEngine::NetOut => &mut self.net_out_free,
            DmaEngine::Host => &mut self.host_free,
        }
    }

    /// Start a DMA of `n` bytes on engine `e` at (no earlier than) `now`.
    /// Returns `(start, end)`: `start` is when the engine begins moving data
    /// (after its 320 ns setup and any earlier transfer on the same engine),
    /// `end` when the last byte has moved.
    ///
    /// The data phase rate depends on the engine: the channel engines move
    /// one byte per 12.5 ns (the link rate); the host engine moves data at
    /// the SBus burst rate. For [`DmaEngine::Host`], the caller must *also*
    /// reserve the SBus itself (see `fm-sbus`) — this method only accounts
    /// for the engine's occupancy.
    pub fn start_dma(&mut self, now: Time, e: DmaEngine, n: usize) -> (Time, Time) {
        let free = self.engine_free(e);
        let setup_start = now.max(*free);
        let start = setup_start + DMA_SETUP;
        let data = match e {
            DmaEngine::NetIn | DmaEngine::NetOut => wire_time(n),
            DmaEngine::Host => dma_burst_time(n),
        };
        let end = start + data;
        *free = end;
        (start, end)
    }

    /// When engine `e` is next free.
    pub fn dma_free_at(&mut self, e: DmaEngine) -> Time {
        *self.engine_free(e)
    }

    pub fn proc_free_at(&self) -> Time {
        self.proc_free
    }

    /// Total instructions executed (for MIPS-budget reporting).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    pub fn proc_busy_total(&self) -> Duration {
        self.proc_busy
    }

    /// SRAM capacity check helper: would `bytes` of queue space fit?
    pub fn fits_in_sram(bytes: usize) -> bool {
        bytes <= SRAM_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_serializes_bursts() {
        let mut c = LanaiChip::new();
        let e1 = c.exec(Time::ZERO, 10); // 1600 ns
        let e2 = c.exec(Time::ZERO, 5); // queued behind
        assert_eq!(e1, Time::from_ns(1600));
        assert_eq!(e2, Time::from_ns(2400));
        assert_eq!(c.instructions(), 15);
    }

    #[test]
    fn dma_engines_are_independent() {
        let mut c = LanaiChip::new();
        let (_, out_end) = c.start_dma(Time::ZERO, DmaEngine::NetOut, 128);
        let (_, in_end) = c.start_dma(Time::ZERO, DmaEngine::NetIn, 128);
        assert_eq!(out_end, in_end, "different engines run concurrently");
        // Same engine serializes (setup included each time).
        let (s2, _) = c.start_dma(Time::ZERO, DmaEngine::NetOut, 128);
        assert_eq!(s2, out_end + DMA_SETUP);
    }

    #[test]
    fn net_dma_timing_matches_appendix_a() {
        let mut c = LanaiChip::new();
        let (start, end) = c.start_dma(Time::ZERO, DmaEngine::NetOut, 128);
        assert_eq!(start, Time::from_ns(320));
        assert_eq!(end, Time::from_ns(320 + 1600));
    }

    #[test]
    fn host_dma_slower_per_byte_than_wire_for_same_bytes() {
        let mut c = LanaiChip::new();
        let (_, net_end) = c.start_dma(Time::ZERO, DmaEngine::NetOut, 1024);
        let (_, host_end) = c.start_dma(Time::ZERO, DmaEngine::Host, 1024);
        // 48 MB/s < 76.3 MB/s, so host DMA takes longer.
        assert!(host_end > net_end);
    }

    #[test]
    fn block_until_moves_processor_forward_only() {
        let mut c = LanaiChip::new();
        c.block_until(Time::from_ns(500));
        c.block_until(Time::from_ns(100));
        assert_eq!(c.proc_free_at(), Time::from_ns(500));
    }

    #[test]
    fn sram_capacity() {
        assert!(LanaiChip::fits_in_sram(64 * 1024));
        assert!(!LanaiChip::fits_in_sram(256 * 1024));
    }
}
