//! Integration tests for fm-mpi on the switch-routed fabric: the
//! topology-aware collectives across multi-switch wirings, the
//! collective-tag epoch wrap, and the handler-before-extract construction
//! guard for externally wired endpoints.

use fm_core::endpoint::EndpointConfig;
use fm_core::{HandlerId, NodeId, SwitchRunner, SwitchTopology, SwitchedCluster};
use fm_mpi::matching::Envelope;
use fm_mpi::{Communicator, MpiCluster, ReduceOp, Tag};

fn run_comms<T: Send + 'static>(
    comms: Vec<Communicator>,
    f: impl Fn(&mut Communicator) -> T + Send + Sync + Clone + 'static,
) -> Vec<T> {
    let handles: Vec<_> = comms
        .into_iter()
        .map(|mut c| {
            let f = f.clone();
            std::thread::spawn(move || {
                let out = f(&mut c);
                // Drain trailing acks so the shard threads can park.
                for _ in 0..10 {
                    c.progress();
                    std::thread::yield_now();
                }
                (c.rank(), out)
            })
        })
        .collect();
    let mut results: Vec<_> = handles.into_iter().map(|h| h.join().expect("rank")).collect();
    results.sort_by_key(|(r, _)| *r);
    results.into_iter().map(|(_, t)| t).collect()
}

/// The full collective suite on a 12-rank two-switch chain: every payload
/// crossing the trunk at most once per direction is the tentpole claim;
/// here we check the *answers* stay right when the tree spans switches.
#[test]
fn chain_cluster_collectives_agree() {
    let out = run_comms(MpiCluster::switched(12), |c| {
        c.barrier();
        let b = c.bcast(3, &if c.rank() == 3 { vec![7u8; 33] } else { vec![] });
        let r = c.reduce(5, &[c.rank() as f64, 1.0], ReduceOp::Sum).unwrap();
        let a = c.allreduce(&[c.rank() as f64], ReduceOp::Max).unwrap();
        c.barrier();
        (b, r, a)
    });
    let sum: f64 = (0..12).map(|r| r as f64).sum();
    for (rank, (b, r, a)) in out.iter().enumerate() {
        assert_eq!(b, &vec![7u8; 33], "rank {rank} bcast");
        if rank == 5 {
            assert_eq!(r, &Some(vec![sum, 12.0]), "root reduce");
        } else {
            assert!(r.is_none(), "rank {rank} is not the reduce root");
        }
        assert_eq!(a, &vec![11.0], "rank {rank} allreduce");
    }
}

/// 16 ranks on the fat tree: power-of-two size takes the
/// recursive-doubling allreduce path across spines, and every rank must
/// end with bit-identical bytes.
#[test]
fn fat_tree_allreduce_is_bit_identical() {
    let out = run_comms(MpiCluster::switched_wide(16), |c| {
        // Awkward values whose sum depends on order in general — recursive
        // doubling's symmetric pairing makes every rank compute the same
        // combination order anyway.
        let mine = vec![(c.rank() as f64 + 0.1) * 1e10, 1.0 / (c.rank() as f64 + 3.0)];
        let v = c.allreduce(&mine, ReduceOp::Sum).unwrap();
        c.barrier();
        v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>()
    });
    for (rank, bits) in out.iter().enumerate() {
        assert_eq!(bits, &out[0], "rank {rank} drifted from rank 0");
    }
}

/// Gather/scatter/alltoall still work when the wiring is a multi-switch
/// chain (they are rank-space algorithms riding the same fabric).
#[test]
fn chain_cluster_data_movement() {
    let n = 12usize;
    let out = run_comms(MpiCluster::switched(n), move |c| {
        let me = c.rank();
        let chunks: Option<Vec<Vec<u8>>> = (me == 0).then(|| {
            (0..n).map(|r| vec![r as u8; 4]).collect()
        });
        let mine = c.scatter(0, chunks.as_deref());
        let rows = c.gather(11, &mine);
        c.barrier();
        (mine, rows)
    });
    for (rank, (mine, _)) in out.iter().enumerate() {
        assert_eq!(mine, &vec![rank as u8; 4]);
    }
    let rows = out[11].1.as_ref().expect("rank 11 gathered");
    for (src, row) in rows.iter().enumerate() {
        assert_eq!(row, &vec![src as u8; 4]);
    }
}

/// Regression for the collective-tag overflow: sub-spaces are 0x1000 tags
/// apart, and before the epoch wrap a long-running job's 4096th barrier
/// aliased into the bcast space. Run well past 4096 collectives,
/// interleaving kinds, with epoch-stamped payload checks.
#[test]
fn tag_epochs_survive_4096_collectives() {
    let out = run_comms(MpiCluster::new(3), |c| {
        let mut checked = 0u32;
        for epoch in 0..4104u32 {
            c.barrier();
            let payload = if c.rank() == 0 {
                epoch.to_le_bytes().to_vec()
            } else {
                vec![]
            };
            let got = c.bcast(0, &payload);
            assert_eq!(
                u32::from_le_bytes(got.try_into().expect("4B")),
                epoch,
                "bcast crossed epochs after the tag wrap"
            );
            checked += 1;
        }
        checked
    });
    assert_eq!(out, vec![4104, 4104, 4104]);
}

/// The reduce path wraps too: alternate reduce and allreduce past the
/// wrap point and keep verifying results.
#[test]
fn reduce_epochs_survive_the_wrap() {
    let out = run_comms(MpiCluster::new(2), |c| {
        for epoch in 0..4100u32 {
            let v = c
                .allreduce(&[c.rank() as f64 + epoch as f64], ReduceOp::Sum)
                .unwrap();
            assert_eq!(v, vec![2.0 * epoch as f64 + 1.0], "epoch {epoch}");
        }
        true
    });
    assert_eq!(out, vec![true, true]);
}

/// Build a switched cluster by hand, fire an eager MPI message at an
/// endpoint that has not been wrapped yet, and only then adopt it. The
/// frame must sit in the fabric/ring until the first extract *after*
/// registration — and then deliver exactly once.
#[test]
fn adopting_an_unwrapped_endpoint_races_an_eager_sender() {
    let topo = SwitchTopology::for_cluster(4);
    let cluster = SwitchedCluster::with_switch_config(
        &topo,
        EndpointConfig {
            window: 64,
            recv_ring: 256,
            ..Default::default()
        },
        Default::default(),
    );
    let (mut endpoints, shards) = cluster.split();
    let runner = SwitchRunner::start(shards);
    let ep1 = endpoints.remove(1);
    let mut ep0 = endpoints.remove(0);

    // Eager sender: a fully formed MPI envelope leaves rank 0 before rank
    // 1 has any handler registered.
    let env = Envelope {
        tag: Tag(5),
        seq: 0,
        src: 0,
        data: b"early bird".to_vec(),
    };
    ep0.send_large(NodeId(1), HandlerId(0), &env.encode())
        .expect("send from rank 0");
    // Let the fabric carry it to rank 1's downlink.
    for _ in 0..50 {
        ep0.extract();
        std::thread::yield_now();
    }

    // Adoption registers the handler before rank 1's first extract, so
    // the guard passes and the message is still deliverable.
    let mut c1 = Communicator::adopt(ep1, 4);
    let (src, tag, data) = c1.recv(Some(0), Some(Tag(5)));
    assert_eq!((src, tag, data.as_slice()), (0, Tag(5), &b"early bird"[..]));
    assert_eq!(c1.match_pending(), 0, "nothing left over");
    // Drain the delivery ack back to rank 0.
    for _ in 0..50 {
        ep0.extract();
        c1.progress();
        std::thread::yield_now();
    }
    drop(runner);
}

/// The other side of the race: extracting before handlers register
/// consumes (and acks) the data frame as unknown-handler — a silent,
/// unrecoverable loss. `adopt` must refuse such an endpoint loudly.
#[test]
#[should_panic(expected = "handlers must register before the first extract")]
fn adopt_rejects_an_endpoint_that_already_extracted() {
    let topo = SwitchTopology::for_cluster(2);
    let cluster = SwitchedCluster::with_switch_config(
        &topo,
        EndpointConfig::default(),
        Default::default(),
    );
    let (mut endpoints, shards) = cluster.split();
    let runner = SwitchRunner::start(shards);
    let mut ep1 = endpoints.remove(1);
    let mut ep0 = endpoints.remove(0);

    let env = Envelope {
        tag: Tag(5),
        seq: 0,
        src: 0,
        data: b"lost".to_vec(),
    };
    ep0.send_large(NodeId(1), HandlerId(0), &env.encode())
        .expect("send from rank 0");
    // The bug being guarded against: extract with an empty handler table.
    for _ in 0..10_000 {
        ep0.extract();
        ep1.extract();
        if ep1.stats().unknown_handler > 0 || ep1.stats().delivered > 0 {
            break;
        }
        std::thread::yield_now();
    }
    assert!(
        ep1.stats().unknown_handler > 0 || ep1.stats().delivered > 0,
        "frame never arrived; cannot exercise the guard"
    );
    drop(runner);
    let _ = Communicator::adopt(ep1, 2); // panics
}

/// Malformed reduce contributions surface as an error at the MPI level on
/// the switched wiring too (release-guard policy: a peer's bug is
/// reported, not aborted on). Rank 1 calls the collective with the wrong
/// vector length; rank 0 must get `LengthMismatch`, not a panic.
#[test]
fn switched_mismatched_reduce_is_an_error() {
    let out = run_comms(MpiCluster::switched(4), |c| {
        let mine = if c.rank() == 1 {
            vec![1.0, 2.0] // wrong length
        } else {
            vec![1.0]
        };
        c.reduce(0, &mine, ReduceOp::Sum).map(|_| ())
    });
    assert_eq!(
        out[0],
        Err(fm_mpi::MpiError::LengthMismatch {
            src: 1,
            got: 2,
            expect: 1
        }),
        "rank 0 must report the peer's bad contribution"
    );
}
