//! MPI collectives under lossy fabric: a fixed-seed soak on a 16-endpoint
//! switched cluster with 5% per-frame drop/duplicate/corrupt on every
//! link. FM's protocol machinery (checksums, retransmit, per-source
//! windows) plus the MPI sequence layer must deliver every collective
//! exactly once: identical allreduce bytes on every rank, no stray
//! messages left in any matching queue, and the endpoint ledgers clean.

use fm_core::endpoint::EndpointConfig;
use fm_core::{FaultConfig, SwitchTopology};
use fm_mpi::{Communicator, MpiCluster, ReduceOp};

const RANKS: usize = 16;
const ROUNDS: usize = 40;
const SEED: u64 = 0xFACE_0FF5;

#[test]
fn collectives_survive_5pct_faults_exactly_once() {
    let topo = SwitchTopology::for_cluster(RANKS);
    let comms = MpiCluster::switched_with_faults(
        &topo,
        EndpointConfig {
            window: 256,
            recv_ring: 1024,
            ..Default::default()
        },
        FaultConfig::uniform(SEED, 0.05),
    );

    let handles: Vec<_> = comms
        .into_iter()
        .map(|mut c: Communicator| {
            std::thread::spawn(move || {
                let mut sums = Vec::with_capacity(ROUNDS);
                for round in 0..ROUNDS {
                    c.barrier();
                    // Values vary per round so a replayed stale payload
                    // cannot masquerade as the current epoch's.
                    let mine = [c.rank() as f64 + round as f64, (round as f64) * 0.5];
                    let v = c
                        .allreduce(&mine, ReduceOp::Sum)
                        .expect("aligned contributions despite corruption faults");
                    sums.push(v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>());
                }
                c.barrier();
                // Quiesce: drain retransmits and trailing acks.
                for _ in 0..200 {
                    c.progress();
                    std::thread::yield_now();
                }
                let pending = c.match_pending();
                let retransmitted = c.fm_stats().retransmitted;
                (c.rank(), sums, pending, retransmitted)
            })
        })
        .collect();

    let mut rows: Vec<_> = handles.into_iter().map(|h| h.join().expect("rank")).collect();
    rows.sort_by_key(|r| r.0);

    // Ground truth, bit-exact: recursive doubling combines in the same
    // order on every rank, and sums of small integers are exact anyway.
    for round in 0..ROUNDS {
        let expect_a: f64 = (0..RANKS).map(|r| r as f64 + round as f64).sum();
        let expect_b = (round as f64) * 0.5 * RANKS as f64;
        let expect = vec![expect_a.to_bits(), expect_b.to_bits()];
        for (rank, sums, _, _) in &rows {
            assert_eq!(
                sums[round], expect,
                "rank {rank} round {round}: faults changed a reduction"
            );
        }
    }

    // Exactly once: nothing duplicated (it would linger in a matching
    // queue unmatched), nothing lost (the collectives would have hung).
    for (rank, _, pending, _) in &rows {
        assert_eq!(*pending, 0, "rank {rank} has leftover matched messages");
    }

    // The soak must actually have exercised the repair path: with 5% per
    // link across 40 rounds of 16-rank collectives, dropped or corrupted
    // frames forced retransmissions somewhere.
    let total_retransmitted: u64 = rows.iter().map(|(_, _, _, r)| *r).sum();
    assert!(
        total_retransmitted > 0,
        "no retransmissions observed — faults were not injected?"
    );
}
