//! Message envelopes and MPI-style matching.
//!
//! FM delivers frames unordered (rejected frames retransmit late, Table 3),
//! so each message carries a per-(sender, receiver) sequence number. The
//! [`MatchQueue`] admits messages to the matchable set strictly in sequence
//! per source, which restores MPI's non-overtaking rule; within the
//! matchable set, `recv` takes the oldest message matching the requested
//! (source, tag) wildcard pattern.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::{Rank, Tag};

/// Wire envelope prefixed to every MPI message payload.
///
/// Layout (little-endian): `tag: u32, seq: u32, src_rank: u16`, then data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    pub tag: Tag,
    pub seq: u32,
    pub src: Rank,
    pub data: Vec<u8>,
}

/// Envelope header size in bytes.
pub const ENVELOPE_BYTES: usize = 10;

impl Envelope {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ENVELOPE_BYTES + self.data.len());
        out.extend_from_slice(&self.tag.0.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.src.to_le_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Decode; `None` for a malformed buffer.
    pub fn decode(buf: &[u8]) -> Option<Envelope> {
        if buf.len() < ENVELOPE_BYTES {
            return None;
        }
        Some(Envelope {
            tag: Tag(u32::from_le_bytes(buf[0..4].try_into().ok()?)),
            seq: u32::from_le_bytes(buf[4..8].try_into().ok()?),
            src: u16::from_le_bytes(buf[8..10].try_into().ok()?),
            data: buf[ENVELOPE_BYTES..].to_vec(),
        })
    }
}

/// Per-receiver matching state.
#[derive(Debug, Default)]
pub struct MatchQueue {
    /// Messages admitted in-sequence, oldest first (the matchable set).
    visible: VecDeque<Envelope>,
    /// Out-of-sequence arrivals parked until their predecessors land.
    parked: HashMap<Rank, BTreeMap<u32, Envelope>>,
    /// Next expected sequence number per source.
    next_seq: HashMap<Rank, u32>,
    /// Statistics: messages that arrived out of order.
    pub reordered: u64,
}

impl MatchQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Messages currently matchable.
    pub fn visible_len(&self) -> usize {
        self.visible.len()
    }

    /// Messages parked waiting for sequence gaps to fill.
    pub fn parked_len(&self) -> usize {
        self.parked.values().map(BTreeMap::len).sum()
    }

    /// Total occupancy: matchable plus parked. Zero exactly when every
    /// admitted message has been taken — what "exactly once, nothing left
    /// over" looks like from the matching layer.
    pub fn pending(&self) -> usize {
        self.visible_len() + self.parked_len()
    }

    /// Admit an arriving envelope; it becomes matchable once contiguous
    /// with everything previously admitted from its source.
    pub fn push(&mut self, env: Envelope) {
        let src = env.src;
        let expected = self.next_seq.entry(src).or_insert(0);
        if env.seq == *expected {
            *expected += 1;
            self.visible.push_back(env);
            // Drain any parked successors that are now contiguous.
            if let Some(parked) = self.parked.get_mut(&src) {
                let expected = self.next_seq.get_mut(&src).expect("just inserted");
                while let Some(e) = parked.remove(expected) {
                    *expected += 1;
                    self.visible.push_back(e);
                }
                if parked.is_empty() {
                    self.parked.remove(&src);
                }
            }
        } else {
            debug_assert!(env.seq > *expected, "duplicate sequence from {src}");
            self.reordered += 1;
            self.parked.entry(src).or_default().insert(env.seq, env);
        }
    }

    /// Take the oldest matchable message satisfying the wildcard pattern.
    pub fn take(&mut self, src: Option<Rank>, tag: Option<Tag>) -> Option<Envelope> {
        let idx = self.visible.iter().position(|e| {
            src.is_none_or(|s| e.src == s) && tag.is_none_or(|t| e.tag == t)
        })?;
        self.visible.remove(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: Rank, seq: u32, tag: u32, data: &[u8]) -> Envelope {
        Envelope {
            tag: Tag(tag),
            seq,
            src,
            data: data.to_vec(),
        }
    }

    #[test]
    fn envelope_roundtrip() {
        let e = env(3, 42, 7, b"payload");
        let d = Envelope::decode(&e.encode()).unwrap();
        assert_eq!(d, e);
        assert!(Envelope::decode(&[0u8; 5]).is_none());
    }

    #[test]
    fn in_order_messages_visible_immediately() {
        let mut q = MatchQueue::new();
        q.push(env(0, 0, 1, b"a"));
        q.push(env(0, 1, 2, b"b"));
        assert_eq!(q.visible_len(), 2);
        assert_eq!(q.reordered, 0);
    }

    #[test]
    fn out_of_order_parks_until_gap_fills() {
        let mut q = MatchQueue::new();
        q.push(env(0, 2, 1, b"c"));
        q.push(env(0, 1, 1, b"b"));
        assert_eq!(q.visible_len(), 0, "gap at seq 0 blocks everything");
        assert_eq!(q.parked_len(), 2);
        q.push(env(0, 0, 1, b"a"));
        assert_eq!(q.visible_len(), 3, "gap filled, all drain in order");
        assert_eq!(q.parked_len(), 0);
        assert_eq!(q.reordered, 2);
        let order: Vec<Vec<u8>> = std::iter::from_fn(|| q.take(None, None))
            .map(|e| e.data)
            .collect();
        assert_eq!(order, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn sequences_are_per_source() {
        let mut q = MatchQueue::new();
        q.push(env(0, 0, 1, b"x"));
        q.push(env(1, 0, 1, b"y"));
        q.push(env(1, 1, 1, b"z"));
        assert_eq!(q.visible_len(), 3);
    }

    #[test]
    fn wildcard_matching() {
        let mut q = MatchQueue::new();
        q.push(env(0, 0, 5, b"a"));
        q.push(env(1, 0, 6, b"b"));
        q.push(env(0, 1, 6, b"c"));
        // By tag only.
        let m = q.take(None, Some(Tag(6))).unwrap();
        assert_eq!((m.src, m.data.as_slice()), (1, &b"b"[..]));
        // By source only.
        let m = q.take(Some(0), None).unwrap();
        assert_eq!(m.data, b"a");
        // Exact.
        assert!(q.take(Some(1), Some(Tag(6))).is_none());
        let m = q.take(Some(0), Some(Tag(6))).unwrap();
        assert_eq!(m.data, b"c");
        assert!(q.take(None, None).is_none());
    }

    #[test]
    fn matching_respects_fifo_within_pattern() {
        let mut q = MatchQueue::new();
        q.push(env(0, 0, 9, b"first"));
        q.push(env(0, 1, 9, b"second"));
        assert_eq!(q.take(Some(0), Some(Tag(9))).unwrap().data, b"first");
        assert_eq!(q.take(Some(0), Some(Tag(9))).unwrap().data, b"second");
    }
}
