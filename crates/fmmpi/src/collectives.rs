//! Collective operations over [`Communicator`]: barrier, broadcast,
//! reduce, allreduce, gather, scatter, alltoall.
//!
//! Two algorithm families, picked per call by the communicator's wiring:
//!
//! * **Topology-aware spanning trees** (switch-routed clusters): the
//!   collective tree is computed from the actual
//!   [`fm_core::SwitchTopology`] — a BFS spanning tree over the switches
//!   (`spanning_parents`), contracted onto ranks by electing one
//!   *representative* rank per switch. A representative's children are
//!   its switch-local ranks plus the representatives of child switches,
//!   so each trunk of the spanning tree carries each collective payload
//!   exactly once per direction instead of once per subscriber the way a
//!   rank-arithmetic tree laid over the fabric would.
//! * **Rank-space log-depth algorithms** (pairwise mesh, single-switch
//!   clusters, UDP): dissemination barrier, binomial bcast/reduce — the
//!   textbook MPI algorithms of the paper's era, which are already
//!   optimal when every rank pair is one hop apart.
//!
//! **allreduce** uses recursive doubling on power-of-two communicators
//! (`log2(n)` rounds, every rank finishing with the bit-identical result —
//! the exchange pairing is symmetric and the operators commute exactly in
//! IEEE arithmetic) and falls back to reduce-to-0 + broadcast otherwise.
//!
//! Each collective call derives its reserved tag from a per-communicator,
//! per-kind epoch counter so back-to-back collectives never cross-match.
//! Kind sub-spaces are `0x1000` tags apart, and epochs **wrap within the
//! sub-space** ([`coll_tag`]): an unwrapped `BASE + epoch` would walk out
//! of its space after 4096 calls and alias the next kind's tags (a late
//! barrier matching an early bcast). Correctness across the wrap rests on
//! the per-pair FIFO the matching layer restores: tag reuse 4096 epochs
//! later still matches in program order.
//!
//! The `*_linear` variants are the naive all-to-root baselines
//! (`O(size)` critical path, every payload crossing the root's one
//! downlink); they exist for `bench_mpi` to measure the trees against and
//! are not what applications should call.

use fm_core::{NodeId, SwitchTopology};
use fm_telemetry::EventKind;

use crate::comm::{Communicator, ReduceOp};
use crate::{MpiError, Rank, Tag};

/// `peer` value in a [`EventKind::CollRoundBegin`] span when the round
/// has no single partner (a fan to several children at once).
pub(crate) const NO_PEER: Rank = Rank::MAX;

/// Internal tag sub-space bases (all >= [`Tag::RESERVED`]). Each kind
/// owns `COLL_SPAN` consecutive tags; see [`coll_tag`].
const TAG_BARRIER: u32 = Tag::RESERVED;
const TAG_BCAST: u32 = Tag::RESERVED + 0x1000;
const TAG_REDUCE: u32 = Tag::RESERVED + 0x2000;
const TAG_GATHER: u32 = Tag::RESERVED + 0x3000;
const TAG_SCATTER: u32 = Tag::RESERVED + 0x4000;
const TAG_ALLTOALL: u32 = Tag::RESERVED + 0x5000;
// 0x6000..0x9000 belong to `nonblocking.rs`, 0xA000 to `group.rs`.
const TAG_ALLREDUCE: u32 = Tag::RESERVED + 0xB000;

/// Tags per collective kind.
pub(crate) const COLL_SPAN: u32 = 0x1000;

/// Epoch-counter indices into `Communicator::epochs`, one per kind.
pub(crate) const KIND_BARRIER: usize = 0;
pub(crate) const KIND_BCAST: usize = 1;
pub(crate) const KIND_REDUCE: usize = 2;
pub(crate) const KIND_ALLREDUCE: usize = 3;
pub(crate) const KIND_GATHER: usize = 4;
pub(crate) const KIND_SCATTER: usize = 5;
pub(crate) const KIND_ALLTOALL: usize = 6;
pub(crate) const KIND_ALLGATHER: usize = 7;
pub(crate) const KIND_ALLTOALLV: usize = 8;
pub(crate) const KIND_SCAN: usize = 9;
pub(crate) const N_COLL_KINDS: usize = 10;

/// The reserved tag for epoch `epoch` of the kind based at `base`. The
/// epoch wraps within the kind's `COLL_SPAN`-tag sub-space, so no epoch
/// ever aliases a neighbouring kind's tags.
pub(crate) fn coll_tag(base: u32, epoch: u32) -> Tag {
    Tag(base + (epoch & (COLL_SPAN - 1)))
}

pub(crate) fn f64s_to_bytes(xs: &[f64]) -> Vec<u8> {
    xs.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Decode a peer's reduction contribution. Checked, not asserted: the
/// bytes came off the wire from `src`, and a short payload must surface
/// as that rank's error, not abort this one.
pub(crate) fn bytes_to_f64s(src: Rank, b: &[u8]) -> Result<Vec<f64>, MpiError> {
    if !b.len().is_multiple_of(8) {
        return Err(MpiError::MisalignedReduce { src, len: b.len() });
    }
    Ok(b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

/// Element-wise `acc = op(acc, theirs)` with a length check.
pub(crate) fn combine(acc: &mut [f64], src: Rank, theirs: &[f64], op: ReduceOp) -> Result<(), MpiError> {
    if theirs.len() != acc.len() {
        return Err(MpiError::LengthMismatch {
            src,
            got: theirs.len(),
            expect: acc.len(),
        });
    }
    for (a, b) in acc.iter_mut().zip(theirs) {
        *a = op.apply(*a, *b);
    }
    Ok(())
}

/// One rank's place in the collective spanning tree for a given root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CollTree {
    /// `None` exactly at the root rank.
    pub parent: Option<Rank>,
    /// Switch-local ranks first (ascending), then child-switch
    /// representatives (ascending switch id). Order is identical on every
    /// rank, so fan-in and fan-out pair up deterministically.
    pub children: Vec<Rank>,
}

/// Build the rank-level spanning tree for `root` over `topo`.
///
/// The switch graph's BFS spanning tree rooted at the root's switch is
/// contracted onto ranks: every switch with hosts elects a representative
/// (the root on its own switch, the lowest rank elsewhere), each
/// representative parents its switch-local ranks, and a representative's
/// parent is the representative of the nearest ancestor switch that has
/// hosts (fat-tree spines are host-less and are skipped over).
pub(crate) fn topo_tree(topo: &SwitchTopology, size: usize, root: Rank, me: Rank) -> CollTree {
    debug_assert_eq!(topo.hosts(), size);
    let root_sw = topo.switch_of(NodeId(root));
    let parents = topo.spanning_parents(root_sw);
    let nsw = topo.switches();
    let mut rep: Vec<Option<Rank>> = vec![None; nsw];
    for r in 0..size as Rank {
        let s = topo.switch_of(NodeId(r));
        if rep[s].is_none() {
            rep[s] = Some(r);
        }
    }
    rep[root_sw] = Some(root);
    // Nearest ancestor switch (in the BFS tree) that has a representative.
    let up = |mut s: usize| -> usize {
        loop {
            let p = parents[s].expect("only the root switch lacks a parent");
            if rep[p].is_some() {
                return p;
            }
            s = p;
        }
    };
    let me_sw = topo.switch_of(NodeId(me));
    let my_rep = rep[me_sw].expect("my own switch has hosts");
    if me != my_rep {
        // Leaf of the local fan-out: one hop to the local representative.
        return CollTree {
            parent: Some(my_rep),
            children: Vec::new(),
        };
    }
    let mut children: Vec<Rank> = topo
        .hosts_on(me_sw)
        .map(|h| h.0)
        .filter(|&r| r != me)
        .collect();
    for (s, r) in rep.iter().enumerate() {
        if s != me_sw && s != root_sw {
            if let Some(r) = *r {
                if up(s) == me_sw {
                    children.push(r);
                }
            }
        }
    }
    let parent = if me == root {
        None
    } else {
        Some(rep[up(me_sw)].expect("ancestor representative exists"))
    };
    CollTree { parent, children }
}

impl Communicator {
    // Collective-span tracing: every instrumented collective brackets the
    // whole call with `CollBegin`/`CollEnd` and each communication round
    // with `CollRoundBegin`/`CollRoundEnd`, all stamped on the endpoint's
    // clock so they merge onto the message-span timeline and export as
    // per-collective duration series from the beacon collector.
    fn coll_begin(&self, kind: usize, epoch: u32) {
        self.trace_coll(EventKind::CollBegin { coll: kind as u8, epoch });
    }

    fn coll_end(&self, kind: usize, epoch: u32) {
        self.trace_coll(EventKind::CollEnd { coll: kind as u8, epoch });
    }

    fn round_begin(&self, kind: usize, epoch: u32, round: u16, peer: Rank) {
        self.trace_coll(EventKind::CollRoundBegin { coll: kind as u8, epoch, round, peer });
    }

    fn round_end(&self, kind: usize, epoch: u32, round: u16) {
        self.trace_coll(EventKind::CollRoundEnd { coll: kind as u8, epoch, round });
    }

    /// This rank's collective spanning tree for `root`, when the wiring
    /// makes a topology tree worthwhile (more than one switch). On a
    /// single switch — or the mesh, where every pair is one hop — the
    /// rank-space algorithms are already optimal and this returns `None`.
    fn coll_tree(&self, root: Rank) -> Option<CollTree> {
        let topo = self.topology()?;
        if topo.switches() <= 1 || topo.hosts() != self.size() {
            return None;
        }
        Some(topo_tree(topo, self.size(), root, self.rank()))
    }

    /// Barrier: returns when every rank has entered. Switch-routed
    /// clusters fan in and back out over the topology spanning tree
    /// (each trunk crossed once per direction); otherwise the
    /// dissemination algorithm runs in `ceil(log2(size))` rounds.
    pub fn barrier(&mut self) {
        let epoch = self.bump_epoch(KIND_BARRIER);
        self.coll_begin(KIND_BARRIER, epoch);
        self.barrier_rounds(epoch);
        self.coll_end(KIND_BARRIER, epoch);
    }

    fn barrier_rounds(&mut self, epoch: u32) {
        let size = self.size() as u32;
        if size == 1 {
            return;
        }
        let tag = coll_tag(TAG_BARRIER, epoch);
        if let Some(tree) = self.coll_tree(0) {
            // Round 0, fan-in: wait for the whole subtree, report up,
            // wait for the release.
            self.round_begin(KIND_BARRIER, epoch, 0, tree.parent.unwrap_or(NO_PEER));
            for &c in &tree.children {
                let _ = self.recv_reserved(c, tag);
            }
            if let Some(p) = tree.parent {
                self.send_reserved(p, tag, &[]);
                let _ = self.recv_reserved(p, tag);
            }
            self.round_end(KIND_BARRIER, epoch, 0);
            // Round 1, fan-out: release the subtree.
            self.round_begin(KIND_BARRIER, epoch, 1, NO_PEER);
            for &c in &tree.children {
                self.send_reserved(c, tag, &[]);
            }
            self.round_end(KIND_BARRIER, epoch, 1);
            return;
        }
        let me = self.rank() as u32;
        // Rounds share the epoch's tag; per-pair FIFO plus the distinct
        // partner per round (distances 1, 2, 4, … < size are distinct
        // mod size) make rounds unambiguous.
        let mut dist = 1u32;
        let mut round = 0u16;
        while dist < size {
            let to = ((me + dist) % size) as Rank;
            let from = ((me + size - dist) % size) as Rank;
            self.round_begin(KIND_BARRIER, epoch, round, to);
            self.send_reserved(to, tag, &[]);
            let _ = self.recv_reserved(from, tag);
            self.round_end(KIND_BARRIER, epoch, round);
            dist *= 2;
            round += 1;
        }
    }

    /// Broadcast `data` from `root`; every rank returns the root's bytes.
    /// Tree-shaped to the topology on switched clusters, binomial in rank
    /// space otherwise.
    pub fn bcast(&mut self, root: Rank, data: &[u8]) -> Vec<u8> {
        let epoch = self.bump_epoch(KIND_BCAST);
        self.coll_begin(KIND_BCAST, epoch);
        let buf = self.bcast_rounds(root, data, epoch);
        self.coll_end(KIND_BCAST, epoch);
        buf
    }

    fn bcast_rounds(&mut self, root: Rank, data: &[u8], epoch: u32) -> Vec<u8> {
        let size = self.size() as u32;
        if size == 1 {
            return data.to_vec();
        }
        let tag = coll_tag(TAG_BCAST, epoch);
        let mut round = 0u16;
        if let Some(tree) = self.coll_tree(root) {
            let buf = match tree.parent {
                None => data.to_vec(),
                Some(p) => {
                    self.round_begin(KIND_BCAST, epoch, round, p);
                    let b = self.recv_reserved(p, tag);
                    self.round_end(KIND_BCAST, epoch, round);
                    round += 1;
                    b
                }
            };
            for &c in &tree.children {
                self.round_begin(KIND_BCAST, epoch, round, c);
                self.send_reserved(c, tag, &buf);
                self.round_end(KIND_BCAST, epoch, round);
                round += 1;
            }
            return buf;
        }
        let me = self.rank() as u32;
        // Virtual rank with the root mapped to 0.
        let vrank = (me + size - root as u32) % size;
        let buf = if vrank == 0 {
            data.to_vec()
        } else {
            // Receive from the parent: clear the lowest set bit.
            let parent_v = vrank & (vrank - 1);
            let parent = ((parent_v + root as u32) % size) as Rank;
            self.round_begin(KIND_BCAST, epoch, round, parent);
            let b = self.recv_reserved(parent, tag);
            self.round_end(KIND_BCAST, epoch, round);
            round += 1;
            b
        };
        // Forward to children: set bits above the lowest set bit.
        let lowest = if vrank == 0 {
            size.next_power_of_two()
        } else {
            vrank & vrank.wrapping_neg()
        };
        let mut bit = 1u32;
        while bit < lowest && bit < size {
            let child_v = vrank | bit;
            if child_v != vrank && child_v < size {
                let child = ((child_v + root as u32) % size) as Rank;
                self.round_begin(KIND_BCAST, epoch, round, child);
                self.send_reserved(child, tag, &buf);
                self.round_end(KIND_BCAST, epoch, round);
                round += 1;
            }
            bit <<= 1;
        }
        buf
    }

    /// Element-wise reduction of `data` across all ranks; `root` returns
    /// `Ok(Some(result))`, everyone else `Ok(None)`. A peer contributing
    /// a misaligned or wrong-length payload surfaces as an [`MpiError`].
    pub fn reduce(
        &mut self,
        root: Rank,
        data: &[f64],
        op: ReduceOp,
    ) -> Result<Option<Vec<f64>>, MpiError> {
        let epoch = self.bump_epoch(KIND_REDUCE);
        self.coll_begin(KIND_REDUCE, epoch);
        let r = self.reduce_rounds(root, data, op, epoch);
        self.coll_end(KIND_REDUCE, epoch);
        r
    }

    fn reduce_rounds(
        &mut self,
        root: Rank,
        data: &[f64],
        op: ReduceOp,
        epoch: u32,
    ) -> Result<Option<Vec<f64>>, MpiError> {
        let size = self.size() as u32;
        let tag = coll_tag(TAG_REDUCE, epoch);
        let mut acc = data.to_vec();
        let mut round = 0u16;
        if let Some(tree) = self.coll_tree(root) {
            // Combine the whole subtree, then pass one payload up — the
            // inverse of the bcast fan-out, so each trunk carries one
            // combined contribution instead of one per descendant rank.
            for &c in &tree.children {
                self.round_begin(KIND_REDUCE, epoch, round, c);
                let recvd = self.recv_reserved(c, tag);
                self.round_end(KIND_REDUCE, epoch, round);
                round += 1;
                let theirs = bytes_to_f64s(c, &recvd)?;
                combine(&mut acc, c, &theirs, op)?;
            }
            return match tree.parent {
                Some(p) => {
                    self.round_begin(KIND_REDUCE, epoch, round, p);
                    self.send_reserved(p, tag, &f64s_to_bytes(&acc));
                    self.round_end(KIND_REDUCE, epoch, round);
                    Ok(None)
                }
                None => Ok(Some(acc)),
            };
        }
        let me = self.rank() as u32;
        let vrank = (me + size - root as u32) % size;
        // Binomial tree, leaves first: at round `bit`, ranks with that bit
        // set send to their parent and exit; others receive and merge.
        let mut bit = 1u32;
        while bit < size {
            if vrank & bit != 0 {
                let parent_v = vrank & !bit;
                let parent = ((parent_v + root as u32) % size) as Rank;
                self.round_begin(KIND_REDUCE, epoch, round, parent);
                self.send_reserved(parent, tag, &f64s_to_bytes(&acc));
                self.round_end(KIND_REDUCE, epoch, round);
                return Ok(None);
            }
            let child_v = vrank | bit;
            if child_v < size {
                let child = ((child_v + root as u32) % size) as Rank;
                self.round_begin(KIND_REDUCE, epoch, round, child);
                let recvd = self.recv_reserved(child, tag);
                self.round_end(KIND_REDUCE, epoch, round);
                let theirs = bytes_to_f64s(child, &recvd)?;
                combine(&mut acc, child, &theirs, op)?;
            }
            bit <<= 1;
            round += 1;
        }
        Ok(Some(acc))
    }

    /// Reduction delivered to every rank. Power-of-two communicators run
    /// recursive doubling — `log2(size)` pairwise exchange rounds, half
    /// the depth of reduce + broadcast, and bit-identical results on every
    /// rank; other sizes reduce to rank 0 and broadcast.
    pub fn allreduce(&mut self, data: &[f64], op: ReduceOp) -> Result<Vec<f64>, MpiError> {
        let size = self.size();
        if size == 1 {
            return Ok(data.to_vec());
        }
        let epoch = self.bump_epoch(KIND_ALLREDUCE);
        self.coll_begin(KIND_ALLREDUCE, epoch);
        let r = self.allreduce_rounds(data, op, epoch);
        self.coll_end(KIND_ALLREDUCE, epoch);
        r
    }

    fn allreduce_rounds(
        &mut self,
        data: &[f64],
        op: ReduceOp,
        epoch: u32,
    ) -> Result<Vec<f64>, MpiError> {
        let size = self.size();
        if size.is_power_of_two() {
            let tag = coll_tag(TAG_ALLREDUCE, epoch);
            let me = self.rank() as usize;
            let mut acc = data.to_vec();
            let mut dist = 1usize;
            let mut round = 0u16;
            while dist < size {
                let partner = (me ^ dist) as Rank;
                self.round_begin(KIND_ALLREDUCE, epoch, round, partner);
                self.send_reserved(partner, tag, &f64s_to_bytes(&acc));
                let recvd = self.recv_reserved(partner, tag);
                self.round_end(KIND_ALLREDUCE, epoch, round);
                let theirs = bytes_to_f64s(partner, &recvd)?;
                combine(&mut acc, partner, &theirs, op)?;
                dist <<= 1;
                round += 1;
            }
            return Ok(acc);
        }
        // Non-power-of-two: reduce + bcast, which emit their own spans
        // nested inside this allreduce's begin/end bracket.
        let result = self.reduce(0, data, op)?;
        let bytes = self.bcast(0, &f64s_to_bytes(result.as_deref().unwrap_or(&[])));
        bytes_to_f64s(0, &bytes)
    }

    /// Gather every rank's bytes at `root` (rank order). `root` gets
    /// `Some(vec_of_contributions)`.
    pub fn gather(&mut self, root: Rank, data: &[u8]) -> Option<Vec<Vec<u8>>> {
        let epoch = self.bump_epoch(KIND_GATHER);
        let tag = coll_tag(TAG_GATHER, epoch);
        if self.rank() != root {
            self.send_reserved(root, tag, data);
            return None;
        }
        let mut out = vec![Vec::new(); self.size()];
        out[root as usize] = data.to_vec();
        for r in 0..self.size() as Rank {
            if r != root {
                out[r as usize] = self.recv_reserved(r, tag);
            }
        }
        Some(out)
    }

    /// Scatter one chunk per rank from `root`; returns this rank's chunk.
    /// `chunks` is only read at the root and must have `size` entries.
    pub fn scatter(&mut self, root: Rank, chunks: Option<&[Vec<u8>]>) -> Vec<u8> {
        let epoch = self.bump_epoch(KIND_SCATTER);
        let tag = coll_tag(TAG_SCATTER, epoch);
        if self.rank() == root {
            let chunks = chunks.expect("root must supply chunks");
            assert_eq!(chunks.len(), self.size(), "one chunk per rank");
            for r in 0..self.size() as Rank {
                if r != root {
                    self.send_reserved(r, tag, &chunks[r as usize]);
                }
            }
            chunks[root as usize].clone()
        } else {
            self.recv_reserved(root, tag)
        }
    }

    /// Personalized all-to-all: `chunks[r]` goes to rank `r`; returns what
    /// every rank sent to us, in rank order.
    pub fn alltoall(&mut self, chunks: &[Vec<u8>]) -> Vec<Vec<u8>> {
        assert_eq!(chunks.len(), self.size(), "one chunk per rank");
        let epoch = self.bump_epoch(KIND_ALLTOALL);
        let tag = coll_tag(TAG_ALLTOALL, epoch);
        let me = self.rank();
        let mut out = vec![Vec::new(); self.size()];
        out[me as usize] = chunks[me as usize].clone();
        // Send everything, then receive everything; FM's windows plus the
        // blocking-send service loop keep this deadlock-free.
        for r in 0..self.size() as Rank {
            if r != me {
                self.send_reserved(r, tag, &chunks[r as usize]);
            }
        }
        for r in 0..self.size() as Rank {
            if r != me {
                out[r as usize] = self.recv_reserved(r, tag);
            }
        }
        out
    }

    /// The naive linear barrier: every rank reports to rank 0, which
    /// releases them one by one — an `O(size)` critical path serialized
    /// on rank 0's downlink. **Baseline only**: `bench_mpi` gates the
    /// spanning-tree barrier against this; applications should call
    /// [`Communicator::barrier`].
    pub fn barrier_linear(&mut self) {
        let epoch = self.bump_epoch(KIND_BARRIER);
        if self.size() == 1 {
            return;
        }
        let tag = coll_tag(TAG_BARRIER, epoch);
        if self.rank() == 0 {
            for r in 1..self.size() as Rank {
                let _ = self.recv_reserved(r, tag);
            }
            for r in 1..self.size() as Rank {
                self.send_reserved(r, tag, &[]);
            }
        } else {
            self.send_reserved(0, tag, &[]);
            let _ = self.recv_reserved(0, tag);
        }
    }

    /// The naive linear allreduce: every contribution goes straight to
    /// rank 0, which combines in rank order and unicasts the result back
    /// to each rank. **Baseline only** — see [`Communicator::barrier_linear`].
    pub fn allreduce_linear(&mut self, data: &[f64], op: ReduceOp) -> Result<Vec<f64>, MpiError> {
        let epoch = self.bump_epoch(KIND_ALLREDUCE);
        if self.size() == 1 {
            return Ok(data.to_vec());
        }
        let tag = coll_tag(TAG_ALLREDUCE, epoch);
        if self.rank() == 0 {
            let mut acc = data.to_vec();
            for r in 1..self.size() as Rank {
                let theirs = bytes_to_f64s(r, &self.recv_reserved(r, tag))?;
                combine(&mut acc, r, &theirs, op)?;
            }
            let bytes = f64s_to_bytes(&acc);
            for r in 1..self.size() as Rank {
                self.send_reserved(r, tag, &bytes);
            }
            Ok(acc)
        } else {
            self.send_reserved(0, tag, &f64s_to_bytes(data));
            bytes_to_f64s(0, &self.recv_reserved(0, tag))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MpiCluster, MpiError, ReduceOp, Tag};

    /// Run `f` on every rank of an `n`-rank cluster, collecting results.
    fn run_ranks<T: Send + 'static>(
        n: usize,
        f: impl Fn(&mut crate::Communicator) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        run_comms(MpiCluster::new(n), f)
    }

    fn run_comms<T: Send + 'static>(
        comms: Vec<crate::Communicator>,
        f: impl Fn(&mut crate::Communicator) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let mut handles = Vec::new();
        for mut c in comms {
            let f = f.clone();
            handles.push(std::thread::spawn(move || {
                let out = f(&mut c);
                // Give trailing acks a chance to drain.
                for _ in 0..5 {
                    c.progress();
                    std::thread::yield_now();
                }
                (c.rank(), out)
            }));
        }
        let mut results: Vec<(u16, T)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_by_key(|(r, _)| *r);
        results.into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn collectives_emit_balanced_spans() {
        if !fm_telemetry::ENABLED {
            return; // spans compile out with the telemetry-off feature
        }
        let out = run_ranks(4, |c| {
            c.barrier();
            c.allreduce(&[c.rank() as f64], ReduceOp::Sum).unwrap();
            c.bcast(0, &[7u8; 16]);
            c.telemetry().events()
        });
        for (rank, events) in out.iter().enumerate() {
            let mut begins = 0;
            let mut ends = 0;
            let mut round_begins = 0;
            let mut round_ends = 0;
            for e in events {
                match e.kind {
                    fm_telemetry::EventKind::CollBegin { .. } => begins += 1,
                    fm_telemetry::EventKind::CollEnd { .. } => ends += 1,
                    fm_telemetry::EventKind::CollRoundBegin { .. } => round_begins += 1,
                    fm_telemetry::EventKind::CollRoundEnd { .. } => round_ends += 1,
                    _ => {}
                }
            }
            assert_eq!(begins, 3, "rank {rank}: barrier + allreduce + bcast");
            assert_eq!(ends, 3, "rank {rank}: every begin closed");
            assert_eq!(round_begins, round_ends, "rank {rank}: rounds balanced");
            assert!(round_begins >= 4, "rank {rank}: log2 rounds recorded");
        }
    }

    #[test]
    fn barrier_various_sizes() {
        for n in [2usize, 3, 4, 7] {
            let out = run_ranks(n, |c| {
                for _ in 0..3 {
                    c.barrier();
                }
                true
            });
            assert_eq!(out.len(), n);
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for n in [2usize, 3, 5, 8] {
            for root in 0..n as u16 {
                let out = run_ranks(n, move |c| {
                    let data = if c.rank() == root {
                        vec![root as u8; 100]
                    } else {
                        vec![]
                    };
                    c.bcast(root, &data)
                });
                for got in out {
                    assert_eq!(got, vec![root as u8; 100], "n={n} root={root}");
                }
            }
        }
    }

    #[test]
    fn reduce_sum_is_exact() {
        for n in [2usize, 4, 6] {
            let out = run_ranks(n, move |c| {
                let mine = vec![c.rank() as f64 + 1.0, 10.0];
                c.reduce(0, &mine, ReduceOp::Sum).unwrap()
            });
            let expect_first = (1..=n).sum::<usize>() as f64;
            assert_eq!(out[0], Some(vec![expect_first, 10.0 * n as f64]));
            for r in &out[1..] {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn allreduce_min_max() {
        let out = run_ranks(5, |c| {
            let mine = vec![c.rank() as f64];
            (
                c.allreduce(&mine, ReduceOp::Min).unwrap(),
                c.allreduce(&mine, ReduceOp::Max).unwrap(),
            )
        });
        for (min, max) in out {
            assert_eq!(min, vec![0.0]);
            assert_eq!(max, vec![4.0]);
        }
    }

    #[test]
    fn allreduce_power_of_two_recursive_doubling() {
        // 8 ranks: the recursive-doubling path; every rank must agree.
        let out = run_ranks(8, |c| {
            c.allreduce(&[c.rank() as f64, 1.0], ReduceOp::Sum).unwrap()
        });
        for v in out {
            assert_eq!(v, vec![28.0, 8.0]);
        }
    }

    #[test]
    fn linear_baselines_agree_with_trees() {
        let out = run_ranks(6, |c| {
            c.barrier_linear();
            let a = c.allreduce_linear(&[c.rank() as f64], ReduceOp::Sum).unwrap();
            c.barrier();
            let b = c.allreduce(&[c.rank() as f64], ReduceOp::Sum).unwrap();
            (a, b)
        });
        for (a, b) in out {
            assert_eq!(a, vec![15.0]);
            assert_eq!(b, vec![15.0]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run_ranks(4, |c| c.gather(2, &[c.rank() as u8 * 3]));
        for (r, g) in out.iter().enumerate() {
            if r == 2 {
                let got = g.as_ref().expect("root result");
                assert_eq!(got, &vec![vec![0], vec![3], vec![6], vec![9]]);
            } else {
                assert!(g.is_none());
            }
        }
    }

    #[test]
    fn scatter_distributes_chunks() {
        let out = run_ranks(3, |c| {
            let chunks: Option<Vec<Vec<u8>>> = if c.rank() == 0 {
                Some((0..3).map(|r| vec![r as u8; r + 1]).collect())
            } else {
                None
            };
            c.scatter(0, chunks.as_deref())
        });
        assert_eq!(out, vec![vec![0], vec![1, 1], vec![2, 2, 2]]);
    }

    #[test]
    fn alltoall_transposes() {
        let n = 4usize;
        let out = run_ranks(n, move |c| {
            let me = c.rank() as u8;
            let chunks: Vec<Vec<u8>> = (0..n as u8).map(|r| vec![me, r]).collect();
            c.alltoall(&chunks)
        });
        for (me, row) in out.iter().enumerate() {
            for (src, chunk) in row.iter().enumerate() {
                assert_eq!(chunk, &vec![src as u8, me as u8]);
            }
        }
    }

    #[test]
    fn collectives_compose_with_point_to_point() {
        let out = run_ranks(3, |c| {
            c.barrier();
            if c.rank() == 0 {
                c.send(1, Tag(1), b"x");
            }
            let got = if c.rank() == 1 {
                Some(c.recv(Some(0), Some(Tag(1))).2)
            } else {
                None
            };
            c.barrier();
            let sum = c.allreduce(&[1.0], ReduceOp::Sum).unwrap();
            (got, sum)
        });
        assert_eq!(out[1].0.as_deref(), Some(&b"x"[..]));
        for (_, sum) in out {
            assert_eq!(sum, vec![3.0]);
        }
    }

    #[test]
    fn misaligned_reduce_contribution_is_an_error_not_a_panic() {
        // Rank 1 injects a 3-byte "contribution" straight into the reduce
        // tag space; rank 0's reduce must surface MisalignedReduce.
        let out = run_ranks(2, |c| {
            if c.rank() == 1 {
                let tag = coll_tag(TAG_REDUCE, 0);
                c.send_reserved(0, tag, &[1, 2, 3]);
                Ok(None)
            } else {
                c.reduce(0, &[1.0], ReduceOp::Sum)
            }
        });
        assert_eq!(
            out[0],
            Err(MpiError::MisalignedReduce { src: 1, len: 3 })
        );
    }

    #[test]
    fn mismatched_reduce_lengths_are_an_error() {
        let out = run_ranks(2, |c| {
            let mine = vec![1.0; 1 + c.rank() as usize];
            c.reduce(0, &mine, ReduceOp::Sum)
        });
        assert_eq!(
            out[0],
            Err(MpiError::LengthMismatch {
                src: 1,
                got: 2,
                expect: 1
            })
        );
    }

    #[test]
    fn coll_tags_wrap_within_their_subspace() {
        // Epoch 4096 of the barrier space must NOT alias the bcast space.
        assert_eq!(coll_tag(TAG_BARRIER, 0), Tag(TAG_BARRIER));
        assert_eq!(coll_tag(TAG_BARRIER, COLL_SPAN), Tag(TAG_BARRIER));
        assert_eq!(coll_tag(TAG_BARRIER, COLL_SPAN + 7), Tag(TAG_BARRIER + 7));
        for e in [0u32, 1, COLL_SPAN - 1, COLL_SPAN, 3 * COLL_SPAN + 5, u32::MAX] {
            let t = coll_tag(TAG_BARRIER, e).0;
            assert!((TAG_BARRIER..TAG_BCAST).contains(&t), "epoch {e} escaped: {t:#x}");
            let t = coll_tag(TAG_ALLREDUCE, e).0;
            assert!((TAG_ALLREDUCE..TAG_ALLREDUCE + COLL_SPAN).contains(&t));
        }
    }

    #[test]
    fn topo_tree_shapes_chain_and_fat_tree() {
        use fm_core::SwitchTopology;
        // Chain of 3 switches, 6 hosts each, root 0: the rank tree must
        // follow the chain — rep(s0)=0, rep(s1)=6, rep(s2)=12.
        let chain = SwitchTopology::for_cluster(18);
        let t0 = topo_tree(&chain, 18, 0, 0);
        assert_eq!(t0.parent, None);
        assert_eq!(t0.children, vec![1, 2, 3, 4, 5, 6]);
        let t6 = topo_tree(&chain, 18, 0, 6);
        assert_eq!(t6.parent, Some(0));
        assert_eq!(t6.children, vec![7, 8, 9, 10, 11, 12]);
        let t12 = topo_tree(&chain, 18, 0, 12);
        assert_eq!(t12.parent, Some(6));
        assert_eq!(t12.children, vec![13, 14, 15, 16, 17]);
        let t3 = topo_tree(&chain, 18, 0, 3);
        assert_eq!((t3.parent, t3.children.len()), (Some(0), 0));
        // Fat tree at 64: spines are host-less, so every leaf
        // representative hangs directly off the root.
        let ft = SwitchTopology::for_cluster_wide(64);
        let r = topo_tree(&ft, 64, 0, 0);
        assert_eq!(r.parent, None);
        // 5 switch-local ranks + 10 other leaf representatives.
        assert_eq!(r.children.len(), 15);
        for leaf_rep in [6u16, 12, 18, 24, 30, 36, 42, 48, 54, 60] {
            assert!(r.children.contains(&leaf_rep), "missing rep {leaf_rep}");
            let t = topo_tree(&ft, 64, 0, leaf_rep);
            assert_eq!(t.parent, Some(0), "rep {leaf_rep}");
            // Full leaves hold 6 hosts; the last leaf gets the 4-host
            // remainder (64 = 10*6 + 4).
            let local = if leaf_rep == 60 { 3 } else { 5 };
            assert_eq!(t.children.len(), local, "rep {leaf_rep} fans out locally");
        }
        // Every non-root rank appears exactly once as someone's child.
        let mut seen = std::collections::HashSet::new();
        for me in 0..64u16 {
            let t = topo_tree(&ft, 64, 0, me);
            for c in t.children {
                assert!(seen.insert(c), "rank {c} has two parents");
            }
        }
        assert_eq!(seen.len(), 63);
        assert!(!seen.contains(&0));
    }

    #[test]
    fn topo_tree_roots_anywhere() {
        use fm_core::SwitchTopology;
        let ft = SwitchTopology::for_cluster_wide(16);
        for root in [0u16, 7, 15] {
            let mut seen = std::collections::HashSet::new();
            for me in 0..16u16 {
                let t = topo_tree(&ft, 16, root, me);
                assert_eq!(t.parent.is_none(), me == root);
                for c in t.children {
                    assert!(seen.insert(c));
                    // Child and parent agree about the edge.
                    let tc = topo_tree(&ft, 16, root, c);
                    assert_eq!(tc.parent, Some(me));
                }
            }
            assert_eq!(seen.len(), 15, "root {root} spans all other ranks");
        }
    }
}
