//! Collective operations over [`Communicator`]: barrier, broadcast,
//! reduce, allreduce, gather, scatter, alltoall.
//!
//! Algorithms are the textbook log-depth ones MPI implementations of the
//! era used (the paper cites the IBM SP MPI environment as the comparison
//! point for an eventual FM-MPI):
//!
//! * **barrier** — dissemination: round `k` sends to `(rank + 2^k) % size`
//!   and waits for `(rank - 2^k) % size`; `ceil(log2(size))` rounds;
//! * **bcast / reduce** — binomial trees rooted at `root`;
//! * **allreduce** — reduce to rank 0 then broadcast (simple and correct;
//!   recursive-doubling is a possible optimization);
//! * **gather / scatter / alltoall** — direct exchanges.
//!
//! Each collective uses a reserved tag derived from a per-communicator
//! epoch counter, so back-to-back collectives never cross-match.

use crate::comm::{Communicator, ReduceOp};
use crate::{Rank, Tag};

/// Internal tag spaces (all >= [`Tag::RESERVED`]).
const TAG_BARRIER: u32 = Tag::RESERVED;
const TAG_BCAST: u32 = Tag::RESERVED + 0x1000;
const TAG_REDUCE: u32 = Tag::RESERVED + 0x2000;
const TAG_GATHER: u32 = Tag::RESERVED + 0x3000;
const TAG_SCATTER: u32 = Tag::RESERVED + 0x4000;
const TAG_ALLTOALL: u32 = Tag::RESERVED + 0x5000;

fn f64s_to_bytes(xs: &[f64]) -> Vec<u8> {
    xs.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    assert_eq!(b.len() % 8, 0, "reduce payload must be f64-aligned");
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

impl Communicator {
    /// Dissemination barrier: returns when every rank has entered.
    pub fn barrier(&mut self) {
        let size = self.size() as u32;
        if size == 1 {
            return;
        }
        let me = self.rank() as u32;
        // Rounds share the barrier tag space; FM-MPI per-pair FIFO plus
        // the distinct partner per round make rounds unambiguous.
        let mut k = 0u32;
        let mut dist = 1u32;
        while dist < size {
            let to = ((me + dist) % size) as Rank;
            let from = ((me + size - dist) % size) as Rank;
            let tag = Tag(TAG_BARRIER + k);
            self.send_reserved(to, tag, &[]);
            let _ = self.recv_reserved(from, tag);
            dist *= 2;
            k += 1;
        }
    }

    /// Broadcast `data` from `root`; every rank returns the root's bytes.
    pub fn bcast(&mut self, root: Rank, data: &[u8]) -> Vec<u8> {
        let size = self.size() as u32;
        if size == 1 {
            return data.to_vec();
        }
        let me = self.rank() as u32;
        // Virtual rank with the root mapped to 0.
        let vrank = (me + size - root as u32) % size;
        let tag = Tag(TAG_BCAST);
        let buf = if vrank == 0 {
            data.to_vec()
        } else {
            // Receive from the parent: clear the lowest set bit.
            let parent_v = vrank & (vrank - 1);
            let parent = ((parent_v + root as u32) % size) as Rank;
            self.recv_reserved(parent, tag)
        };
        // Forward to children: set bits above the lowest set bit.
        let lowest = if vrank == 0 {
            size.next_power_of_two()
        } else {
            vrank & vrank.wrapping_neg()
        };
        let mut bit = 1u32;
        while bit < lowest && bit < size {
            let child_v = vrank | bit;
            if child_v != vrank && child_v < size {
                let child = ((child_v + root as u32) % size) as Rank;
                self.send_reserved(child, tag, &buf);
            }
            bit <<= 1;
        }
        buf
    }

    /// Element-wise reduction of `data` across all ranks; `root` returns
    /// `Some(result)`, everyone else `None`.
    pub fn reduce(&mut self, root: Rank, data: &[f64], op: ReduceOp) -> Option<Vec<f64>> {
        let size = self.size() as u32;
        let me = self.rank() as u32;
        let vrank = (me + size - root as u32) % size;
        let tag = Tag(TAG_REDUCE);
        let mut acc = data.to_vec();
        // Binomial tree, leaves first: at round `bit`, ranks with that bit
        // set send to their parent and exit; others receive and merge.
        let mut bit = 1u32;
        while bit < size {
            if vrank & bit != 0 {
                let parent_v = vrank & !bit;
                let parent = ((parent_v + root as u32) % size) as Rank;
                self.send_reserved(parent, tag, &f64s_to_bytes(&acc));
                return None;
            }
            let child_v = vrank | bit;
            if child_v < size {
                let child = ((child_v + root as u32) % size) as Rank;
                let theirs = bytes_to_f64s(&self.recv_reserved(child, tag));
                assert_eq!(
                    theirs.len(),
                    acc.len(),
                    "reduce called with mismatched lengths across ranks"
                );
                for (a, b) in acc.iter_mut().zip(theirs) {
                    *a = op.apply(*a, b);
                }
            }
            bit <<= 1;
        }
        Some(acc)
    }

    /// Reduction delivered to every rank (reduce to rank 0 + broadcast).
    pub fn allreduce(&mut self, data: &[f64], op: ReduceOp) -> Vec<f64> {
        let result = self.reduce(0, data, op);
        let bytes = self.bcast(0, &f64s_to_bytes(result.as_deref().unwrap_or(&[])));
        bytes_to_f64s(&bytes)
    }

    /// Gather every rank's bytes at `root` (rank order). `root` gets
    /// `Some(vec_of_contributions)`.
    pub fn gather(&mut self, root: Rank, data: &[u8]) -> Option<Vec<Vec<u8>>> {
        let tag = Tag(TAG_GATHER);
        if self.rank() != root {
            self.send_reserved(root, tag, data);
            return None;
        }
        let mut out = vec![Vec::new(); self.size()];
        out[root as usize] = data.to_vec();
        for r in 0..self.size() as Rank {
            if r != root {
                out[r as usize] = self.recv_reserved(r, tag);
            }
        }
        Some(out)
    }

    /// Scatter one chunk per rank from `root`; returns this rank's chunk.
    /// `chunks` is only read at the root and must have `size` entries.
    pub fn scatter(&mut self, root: Rank, chunks: Option<&[Vec<u8>]>) -> Vec<u8> {
        let tag = Tag(TAG_SCATTER);
        if self.rank() == root {
            let chunks = chunks.expect("root must supply chunks");
            assert_eq!(chunks.len(), self.size(), "one chunk per rank");
            for r in 0..self.size() as Rank {
                if r != root {
                    self.send_reserved(r, tag, &chunks[r as usize]);
                }
            }
            chunks[root as usize].clone()
        } else {
            self.recv_reserved(root, tag)
        }
    }

    /// Personalized all-to-all: `chunks[r]` goes to rank `r`; returns what
    /// every rank sent to us, in rank order.
    pub fn alltoall(&mut self, chunks: &[Vec<u8>]) -> Vec<Vec<u8>> {
        assert_eq!(chunks.len(), self.size(), "one chunk per rank");
        let tag = Tag(TAG_ALLTOALL);
        let me = self.rank();
        let mut out = vec![Vec::new(); self.size()];
        out[me as usize] = chunks[me as usize].clone();
        // Send everything, then receive everything; FM's windows plus the
        // blocking-send service loop keep this deadlock-free.
        for r in 0..self.size() as Rank {
            if r != me {
                self.send_reserved(r, tag, &chunks[r as usize]);
            }
        }
        for r in 0..self.size() as Rank {
            if r != me {
                out[r as usize] = self.recv_reserved(r, tag);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{MpiCluster, ReduceOp, Tag};

    /// Run `f` on every rank of an `n`-rank cluster, collecting results.
    fn run_ranks<T: Send + 'static>(
        n: usize,
        f: impl Fn(&mut crate::Communicator) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let comms = MpiCluster::new(n);
        let mut handles = Vec::new();
        for mut c in comms {
            let f = f.clone();
            handles.push(std::thread::spawn(move || {
                let out = f(&mut c);
                // Give trailing acks a chance to drain.
                for _ in 0..5 {
                    c.progress();
                    std::thread::yield_now();
                }
                (c.rank(), out)
            }));
        }
        let mut results: Vec<(u16, T)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_by_key(|(r, _)| *r);
        results.into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn barrier_various_sizes() {
        for n in [2usize, 3, 4, 7] {
            let out = run_ranks(n, |c| {
                for _ in 0..3 {
                    c.barrier();
                }
                true
            });
            assert_eq!(out.len(), n);
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for n in [2usize, 3, 5, 8] {
            for root in 0..n as u16 {
                let out = run_ranks(n, move |c| {
                    let data = if c.rank() == root {
                        vec![root as u8; 100]
                    } else {
                        vec![]
                    };
                    c.bcast(root, &data)
                });
                for got in out {
                    assert_eq!(got, vec![root as u8; 100], "n={n} root={root}");
                }
            }
        }
    }

    #[test]
    fn reduce_sum_is_exact() {
        for n in [2usize, 4, 6] {
            let out = run_ranks(n, move |c| {
                let mine = vec![c.rank() as f64 + 1.0, 10.0];
                c.reduce(0, &mine, ReduceOp::Sum)
            });
            let expect_first = (1..=n).sum::<usize>() as f64;
            assert_eq!(out[0], Some(vec![expect_first, 10.0 * n as f64]));
            for r in &out[1..] {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn allreduce_min_max() {
        let out = run_ranks(5, |c| {
            let mine = vec![c.rank() as f64];
            (
                c.allreduce(&mine, ReduceOp::Min),
                c.allreduce(&mine, ReduceOp::Max),
            )
        });
        for (min, max) in out {
            assert_eq!(min, vec![0.0]);
            assert_eq!(max, vec![4.0]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run_ranks(4, |c| c.gather(2, &[c.rank() as u8 * 3]));
        for (r, g) in out.iter().enumerate() {
            if r == 2 {
                let got = g.as_ref().expect("root result");
                assert_eq!(got, &vec![vec![0], vec![3], vec![6], vec![9]]);
            } else {
                assert!(g.is_none());
            }
        }
    }

    #[test]
    fn scatter_distributes_chunks() {
        let out = run_ranks(3, |c| {
            let chunks: Option<Vec<Vec<u8>>> = if c.rank() == 0 {
                Some((0..3).map(|r| vec![r as u8; r + 1]).collect())
            } else {
                None
            };
            c.scatter(0, chunks.as_deref())
        });
        assert_eq!(out, vec![vec![0], vec![1, 1], vec![2, 2, 2]]);
    }

    #[test]
    fn alltoall_transposes() {
        let n = 4usize;
        let out = run_ranks(n, move |c| {
            let me = c.rank() as u8;
            let chunks: Vec<Vec<u8>> = (0..n as u8).map(|r| vec![me, r]).collect();
            c.alltoall(&chunks)
        });
        for (me, row) in out.iter().enumerate() {
            for (src, chunk) in row.iter().enumerate() {
                assert_eq!(chunk, &vec![src as u8, me as u8]);
            }
        }
    }

    #[test]
    fn collectives_compose_with_point_to_point() {
        let out = run_ranks(3, |c| {
            c.barrier();
            if c.rank() == 0 {
                c.send(1, Tag(1), b"x");
            }
            let got = if c.rank() == 1 {
                Some(c.recv(Some(0), Some(Tag(1))).2)
            } else {
                None
            };
            c.barrier();
            let sum = c.allreduce(&[1.0], ReduceOp::Sum);
            (got, sum)
        });
        assert_eq!(out[1].0.as_deref(), Some(&b"x"[..]));
        for (_, sum) in out {
            assert_eq!(sum, vec![3.0]);
        }
    }
}
