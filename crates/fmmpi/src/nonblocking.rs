//! Nonblocking receives, combined send-receive, and the second tier of
//! collectives (allgather, alltoallv, scan) — rounding `fm-mpi` out to the
//! subset real application kernels use.
//!
//! FM sends complete locally (delivery is the layer's job), so `isend` is
//! just `send`; the interesting nonblocking primitive is the receive,
//! exposed as [`RecvRequest`]: post it, compute, then `wait`/`test`.

use crate::collectives::{
    bytes_to_f64s, coll_tag, f64s_to_bytes, KIND_ALLGATHER, KIND_ALLTOALLV, KIND_SCAN,
};
use crate::comm::{Communicator, ReduceOp};
use crate::{MpiError, Rank, Tag};

/// Internal tag space for the second-tier collectives (distinct from the
/// spaces used in `collectives.rs`). Like those, each kind owns a
/// `COLL_SPAN`-tag sub-space and per-call epochs wrap within it.
const TAG_ALLGATHER: u32 = Tag::RESERVED + 0x6000;
const TAG_ALLTOALLV: u32 = Tag::RESERVED + 0x7000;
const TAG_SCAN: u32 = Tag::RESERVED + 0x8000;
const TAG_SENDRECV: u32 = Tag::RESERVED + 0x9000;

/// A posted receive: a match pattern waiting for its message.
#[derive(Debug, Clone, Copy)]
pub struct RecvRequest {
    src: Option<Rank>,
    tag: Option<Tag>,
}

impl RecvRequest {
    /// Poll once; `Some` when a matching message has arrived.
    pub fn test(&self, comm: &mut Communicator) -> Option<(Rank, Tag, Vec<u8>)> {
        comm.try_recv(self.src, self.tag)
    }

    /// Block until the message arrives.
    pub fn wait(&self, comm: &mut Communicator) -> (Rank, Tag, Vec<u8>) {
        comm.recv(self.src, self.tag)
    }
}

impl Communicator {
    /// Post a nonblocking receive. (Matching happens lazily at
    /// `test`/`wait`; posting records the pattern so code reads like MPI.)
    pub fn irecv(&mut self, src: Option<Rank>, tag: Option<Tag>) -> RecvRequest {
        RecvRequest { src, tag }
    }

    /// Nonblocking send. FM sends complete locally once the window admits
    /// them, so this is the blocking send under a name that keeps
    /// application code honest about its intent.
    pub fn isend(&mut self, dest: Rank, tag: Tag, data: &[u8]) {
        self.send(dest, tag, data);
    }

    /// Combined send+receive — the deadlock-safe exchange MPI codes use
    /// for shifts. Sends to `dest`, receives from `src`, both on `tag`'s
    /// dedicated exchange space.
    pub fn sendrecv(&mut self, dest: Rank, src: Rank, tag: Tag, data: &[u8]) -> Vec<u8> {
        assert!(tag.is_user());
        let t = Tag(TAG_SENDRECV + tag.0 % 0x0FFF);
        self.send_reserved(dest, t, data);
        self.recv_reserved(src, t)
    }

    /// Every rank contributes `data`; every rank gets all contributions in
    /// rank order (ring algorithm: size-1 shifts).
    pub fn allgather(&mut self, data: &[u8]) -> Vec<Vec<u8>> {
        let n = self.size();
        let me = self.rank() as usize;
        let mut out = vec![Vec::new(); n];
        out[me] = data.to_vec();
        if n == 1 {
            return out;
        }
        let right = ((me + 1) % n) as Rank;
        let left = ((me + n - 1) % n) as Rank;
        let tag = coll_tag(TAG_ALLGATHER, self.bump_epoch(KIND_ALLGATHER));
        // Pass blocks around the ring; step k forwards the block that
        // originated k hops to the left.
        let mut carry = data.to_vec();
        for step in 0..n - 1 {
            self.send_reserved(right, tag, &carry);
            carry = self.recv_reserved(left, tag);
            let origin = (me + n - 1 - step) % n;
            out[origin] = carry.clone();
        }
        out
    }

    /// Personalized all-to-all with per-destination sizes (`chunks[r]`
    /// goes to rank `r`; chunks may have different lengths).
    pub fn alltoallv(&mut self, chunks: &[Vec<u8>]) -> Vec<Vec<u8>> {
        assert_eq!(chunks.len(), self.size(), "one chunk per rank");
        let me = self.rank();
        let tag = coll_tag(TAG_ALLTOALLV, self.bump_epoch(KIND_ALLTOALLV));
        let mut out = vec![Vec::new(); self.size()];
        out[me as usize] = chunks[me as usize].clone();
        for r in 0..self.size() as Rank {
            if r != me {
                self.send_reserved(r, tag, &chunks[r as usize]);
            }
        }
        for r in 0..self.size() as Rank {
            if r != me {
                out[r as usize] = self.recv_reserved(r, tag);
            }
        }
        out
    }

    /// Inclusive prefix reduction: rank `i` returns `op` applied over the
    /// contributions of ranks `0..=i` (linear chain — prefix order is
    /// inherently sequential; the pipeline overlaps across elements). A
    /// malformed or wrong-length upstream prefix surfaces as [`MpiError`].
    pub fn scan(&mut self, data: &[f64], op: ReduceOp) -> Result<Vec<f64>, MpiError> {
        let me = self.rank();
        let tag = coll_tag(TAG_SCAN, self.bump_epoch(KIND_SCAN));
        let mut acc = data.to_vec();
        if me > 0 {
            let prev = bytes_to_f64s(me - 1, &self.recv_reserved(me - 1, tag))?;
            if prev.len() != acc.len() {
                return Err(MpiError::LengthMismatch {
                    src: me - 1,
                    got: prev.len(),
                    expect: acc.len(),
                });
            }
            for (a, v) in acc.iter_mut().zip(prev) {
                *a = op.apply(v, *a);
            }
        }
        if (me as usize) + 1 < self.size() {
            self.send_reserved(me + 1, tag, &f64s_to_bytes(&acc));
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MpiCluster;

    fn run_ranks<T: Send + 'static>(
        n: usize,
        f: impl Fn(&mut Communicator) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let comms = MpiCluster::new(n);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut c| {
                let f = f.clone();
                std::thread::spawn(move || {
                    let out = f(&mut c);
                    for _ in 0..5 {
                        c.progress();
                        std::thread::yield_now();
                    }
                    (c.rank(), out)
                })
            })
            .collect();
        let mut results: Vec<_> =
            handles.into_iter().map(|h| h.join().expect("rank")).collect();
        results.sort_by_key(|(r, _)| *r);
        results.into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn irecv_test_then_wait() {
        let out = run_ranks(2, |c| {
            if c.rank() == 0 {
                // Post the receive *before* the message exists.
                let req = c.irecv(Some(1), Some(Tag(4)));
                let early = req.test(c);
                c.send(1, Tag(3), b"go");
                let (_, _, d) = req.wait(c);
                (early.is_none(), d)
            } else {
                let (_, _, _) = c.recv(Some(0), Some(Tag(3)));
                c.send(0, Tag(4), b"done");
                (true, vec![])
            }
        });
        assert_eq!(out[0], (true, b"done".to_vec()));
    }

    #[test]
    fn sendrecv_ring_shift_no_deadlock() {
        for n in [2usize, 3, 5] {
            let out = run_ranks(n, move |c| {
                let me = c.rank() as usize;
                let right = ((me + 1) % n) as Rank;
                let left = ((me + n - 1) % n) as Rank;
                // Everyone sends right and receives from the left — the
                // classic case that deadlocks naive blocking MPI.
                let got = c.sendrecv(right, left, Tag(9), &[me as u8]);
                got[0] as usize
            });
            for (me, got) in out.iter().enumerate() {
                assert_eq!(*got, (me + n - 1) % n, "n={n} me={me}");
            }
        }
    }

    #[test]
    fn allgather_collects_everyone() {
        for n in [1usize, 2, 4, 5] {
            let out = run_ranks(n, move |c| {
                let mine = vec![c.rank() as u8; c.rank() as usize + 1];
                c.allgather(&mine)
            });
            for rows in out {
                assert_eq!(rows.len(), n);
                for (r, row) in rows.iter().enumerate() {
                    assert_eq!(row, &vec![r as u8; r + 1], "rank {r}'s block");
                }
            }
        }
    }

    #[test]
    fn alltoallv_variable_sizes() {
        let n = 3usize;
        let out = run_ranks(n, move |c| {
            let me = c.rank() as usize;
            // Rank i sends i+j+1 bytes of value i to rank j.
            let chunks: Vec<Vec<u8>> =
                (0..n).map(|j| vec![me as u8; me + j + 1]).collect();
            c.alltoallv(&chunks)
        });
        for (j, rows) in out.iter().enumerate() {
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(row, &vec![i as u8; i + j + 1], "from {i} to {j}");
            }
        }
    }

    #[test]
    fn scan_prefix_sums() {
        let n = 5usize;
        let out = run_ranks(n, |c| {
            c.scan(&[c.rank() as f64 + 1.0, 1.0], ReduceOp::Sum).unwrap()
        });
        for (i, v) in out.iter().enumerate() {
            let expect: f64 = (1..=i + 1).map(|x| x as f64).sum();
            assert_eq!(v, &vec![expect, (i + 1) as f64], "rank {i}");
        }
    }

    #[test]
    fn scan_max_running_maximum() {
        let vals = [3.0f64, 1.0, 4.0, 1.0, 5.0];
        let out = run_ranks(5, move |c| {
            c.scan(&[vals[c.rank() as usize]], ReduceOp::Max).unwrap()
        });
        let expect = [3.0, 3.0, 4.0, 4.0, 5.0];
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v[0], expect[i]);
        }
    }
}
