//! The communicator: ranks, blocking send/recv, and cluster construction.

use fm_core::endpoint::EndpointConfig;
use fm_core::mem::{MemCluster, MemEndpoint};
use fm_core::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use crate::matching::{Envelope, MatchQueue};
use crate::{Rank, Tag};

/// Reduction operators over `f64` vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Prod,
    Min,
    Max,
}

impl ReduceOp {
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// The operator's identity element.
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Prod => 1.0,
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Max => f64::NEG_INFINITY,
        }
    }
}

/// Builds a set of communicators sharing one in-memory FM cluster.
pub struct MpiCluster;

impl MpiCluster {
    /// `n` ranks with a generously sized FM window (collectives fan out).
    #[allow(clippy::new_ret_no_self)] // a builder: "cluster" = the rank set
    pub fn new(n: usize) -> Vec<Communicator> {
        Self::with_config(
            n,
            EndpointConfig {
                window: 256,
                recv_ring: 1024,
                ..Default::default()
            },
        )
    }

    pub fn with_config(n: usize, config: EndpointConfig) -> Vec<Communicator> {
        assert!(n >= 1);
        MemCluster::with_config(n, config)
            .into_iter()
            .map(|ep| Communicator::new(ep, n))
            .collect()
    }
}

/// One rank's endpoint plus its MPI state. Move it into the rank's thread.
pub struct Communicator {
    ep: MemEndpoint,
    size: usize,
    inbox: Arc<Mutex<MatchQueue>>,
    next_seq_to: HashMap<Rank, u32>,
}

impl Communicator {
    fn new(mut ep: MemEndpoint, size: usize) -> Self {
        let inbox: Arc<Mutex<MatchQueue>> = Arc::new(Mutex::new(MatchQueue::new()));
        let sink = inbox.clone();
        let h = ep.register_large_handler(move |_, _src, msg| {
            if let Some(env) = Envelope::decode(&msg) {
                sink.lock().push(env);
            }
        });
        debug_assert_eq!(h.0, 0, "MPI message handler must be large-handler 0");
        Communicator {
            ep,
            size,
            inbox,
            next_seq_to: HashMap::new(),
        }
    }

    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.ep.node_id().0
    }

    /// Number of ranks in the cluster.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Blocking tagged send of arbitrary size.
    pub fn send(&mut self, dest: Rank, tag: Tag, data: &[u8]) {
        assert!((dest as usize) < self.size, "rank {dest} out of range");
        assert!(tag.is_user(), "tags >= 0xFFFF0000 are reserved");
        self.send_internal(dest, tag, data);
    }

    fn send_internal(&mut self, dest: Rank, tag: Tag, data: &[u8]) {
        let me = self.rank();
        let seq = self.next_seq_to.entry(dest).or_insert(0);
        let env = Envelope {
            tag,
            seq: *seq,
            src: me,
            data: data.to_vec(),
        };
        *seq += 1;
        if dest == self.rank() {
            // Self-sends match locally without touching the network.
            self.inbox.lock().push(env);
            return;
        }
        let bytes = env.encode();
        // Large-handler 0 is the MPI sink on every rank.
        if let Err(e) = self.ep.send_large(NodeId(dest), fm_core::HandlerId(0), &bytes) {
            panic!("MPI send to rank {dest}: {e}");
        }
    }

    /// Blocking receive with wildcard source/tag. Returns
    /// `(source, tag, data)`.
    pub fn recv(&mut self, src: Option<Rank>, tag: Option<Tag>) -> (Rank, Tag, Vec<u8>) {
        loop {
            if let Some(env) = self.inbox.lock().take(src, tag) {
                return (env.src, env.tag, env.data);
            }
            self.ep.extract();
            std::thread::yield_now();
        }
    }

    /// Non-blocking probe-and-receive.
    pub fn try_recv(&mut self, src: Option<Rank>, tag: Option<Tag>) -> Option<(Rank, Tag, Vec<u8>)> {
        self.ep.extract();
        self.inbox
            .lock()
            .take(src, tag)
            .map(|env| (env.src, env.tag, env.data))
    }

    /// Service the network without receiving (keeps acks and fragments
    /// flowing during long local compute phases).
    pub fn progress(&mut self) {
        self.ep.extract();
    }

    /// Messages that arrived out of their sequence order (evidence of FM's
    /// unordered delivery being papered over by this layer).
    pub fn reordered_messages(&self) -> u64 {
        self.inbox.lock().reordered
    }

    /// Underlying FM endpoint statistics.
    pub fn fm_stats(&self) -> fm_core::EndpointStats {
        self.ep.stats()
    }

    // Internal send/recv on reserved tags, for the collectives module.
    pub(crate) fn send_reserved(&mut self, dest: Rank, tag: Tag, data: &[u8]) {
        debug_assert!(!tag.is_user());
        self.send_internal(dest, tag, data);
    }

    pub(crate) fn recv_reserved(&mut self, src: Rank, tag: Tag) -> Vec<u8> {
        let (_, _, data) = self.recv(Some(src), Some(tag));
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_rank_send_recv_threads() {
        let mut comms = MpiCluster::new(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let t = std::thread::spawn(move || {
            let (src, tag, data) = c1.recv(None, None);
            assert_eq!((src, tag), (0, Tag(9)));
            c1.send(0, Tag(10), &data.iter().map(|b| b + 1).collect::<Vec<_>>());
        });
        c0.send(1, Tag(9), &[1, 2, 3]);
        let (_, _, reply) = c0.recv(Some(1), Some(Tag(10)));
        assert_eq!(reply, vec![2, 3, 4]);
        t.join().unwrap();
    }

    #[test]
    fn large_message_roundtrip() {
        let mut comms = MpiCluster::new(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let big: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        let big2 = big.clone();
        let t = std::thread::spawn(move || {
            let (_, _, data) = c1.recv(Some(0), Some(Tag(1)));
            assert_eq!(data, big2);
            c1.send(0, Tag(2), &[data.len() as u8]);
        });
        c0.send(1, Tag(1), &big);
        let (_, _, ack) = c0.recv(Some(1), Some(Tag(2)));
        assert_eq!(ack, vec![(50_000 % 256) as u8]);
        t.join().unwrap();
    }

    #[test]
    fn self_send_matches_locally() {
        let mut comms = MpiCluster::new(1);
        let mut c = comms.pop().unwrap();
        c.send(0, Tag(3), b"me");
        let (src, tag, data) = c.recv(Some(0), Some(Tag(3)));
        assert_eq!((src, tag, data.as_slice()), (0, Tag(3), &b"me"[..]));
        assert_eq!(c.fm_stats().sent, 0, "no frames hit the wire");
    }

    #[test]
    fn per_pair_fifo_order_preserved() {
        let mut comms = MpiCluster::new(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let t = std::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..20 {
                let (_, _, d) = c1.recv(Some(0), Some(Tag(5)));
                got.push(d[0]);
            }
            got
        });
        for i in 0..20u8 {
            c0.send(1, Tag(5), &[i]);
        }
        // Drain acks so rank 0 quiesces.
        for _ in 0..10 {
            c0.progress();
        }
        let got = t.join().unwrap();
        assert_eq!(got, (0..20).collect::<Vec<u8>>());
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_tag_rejected_for_users() {
        let mut comms = MpiCluster::new(1);
        comms[0].send(0, Tag(Tag::RESERVED), b"no");
    }

    #[test]
    fn reduce_op_identities() {
        for op in [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min, ReduceOp::Max] {
            assert_eq!(op.apply(op.identity(), 3.5), 3.5);
        }
        assert_eq!(ReduceOp::Sum.apply(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Prod.apply(2.0, 3.0), 6.0);
        assert_eq!(ReduceOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(ReduceOp::Max.apply(2.0, 3.0), 3.0);
    }
}
