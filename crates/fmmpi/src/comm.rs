//! The communicator: ranks, blocking send/recv, and cluster construction
//! over both the pairwise mesh and the switch-routed fabric.

use fm_core::endpoint::EndpointConfig;
use fm_core::mem::{MemCluster, MemEndpoint};
use fm_core::{
    FaultConfig, NodeId, SwitchConfig, SwitchRunner, SwitchTopology, SwitchedCluster, TimeSource,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use crate::collectives::N_COLL_KINDS;
use crate::matching::{Envelope, MatchQueue};
use crate::{Rank, Tag};

/// Reduction operators over `f64` vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Prod,
    Min,
    Max,
}

impl ReduceOp {
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// The operator's identity element.
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Prod => 1.0,
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Max => f64::NEG_INFINITY,
        }
    }
}

/// Builds a set of communicators sharing one in-memory FM cluster —
/// either the O(n²) pairwise mesh ([`MpiCluster::new`]) or the
/// switch-routed fabric ([`MpiCluster::switched`] /
/// [`MpiCluster::switched_wide`]), where every rank has one uplink into a
/// real [`SwitchedCluster`] and the collectives shape themselves to the
/// switch topology.
pub struct MpiCluster;

impl MpiCluster {
    /// `n` ranks with a generously sized FM window (collectives fan out).
    #[allow(clippy::new_ret_no_self)] // a builder: "cluster" = the rank set
    pub fn new(n: usize) -> Vec<Communicator> {
        Self::with_config(n, Self::default_config())
    }

    pub fn with_config(n: usize, config: EndpointConfig) -> Vec<Communicator> {
        assert!(n >= 1);
        MemCluster::with_config(n, config)
            .into_iter()
            .map(|ep| Communicator::new(ep, n))
            .collect()
    }

    /// `n` ranks over the standard tree wiring for the cluster size
    /// ([`SwitchTopology::for_cluster`]: one 8-port switch while the hosts
    /// fit, a chain of 6-host switches beyond). The switch shards run on
    /// their own threads; they stop when the last communicator drops.
    pub fn switched(n: usize) -> Vec<Communicator> {
        Self::switched_over(
            &SwitchTopology::for_cluster(n),
            Self::default_config(),
            SwitchConfig::default(),
        )
    }

    /// `n` ranks over the multi-path wiring
    /// ([`SwitchTopology::for_cluster_wide`]: a two-level fat tree past 8
    /// hosts), so cross-switch collective traffic ECMP-spreads over the
    /// spine layer.
    pub fn switched_wide(n: usize) -> Vec<Communicator> {
        Self::switched_over(
            &SwitchTopology::for_cluster_wide(n),
            Self::default_config(),
            SwitchConfig::default(),
        )
    }

    /// Ranks over an explicit topology with explicit endpoint and switch
    /// sizing — the general switched constructor.
    pub fn switched_over(
        topo: &SwitchTopology,
        config: EndpointConfig,
        switch: SwitchConfig,
    ) -> Vec<Communicator> {
        Self::wire_switched(SwitchedCluster::with_switch_config(
            topo,
            Self::threaded_time(config),
            switch,
        ))
    }

    /// Like [`MpiCluster::switched_over`] with a seeded fault injector on
    /// every endpoint's transmit path — the collectives-under-loss soak
    /// harness.
    pub fn switched_with_faults(
        topo: &SwitchTopology,
        config: EndpointConfig,
        faults: FaultConfig,
    ) -> Vec<Communicator> {
        Self::wire_switched(SwitchedCluster::with_faults(
            topo,
            Self::threaded_time(config),
            faults,
        ))
    }

    /// Like [`MpiCluster::switched_over`], but also returns the shared
    /// [`SwitchRunner`] handle. Once every communicator (and its clone of
    /// the handle) has been dropped, `Arc::try_unwrap` yields the runner
    /// and [`SwitchRunner::shutdown`] returns the shards with their
    /// forwarding counters — how `bench_mpi` reads per-link frame counts
    /// back out of a finished collective run.
    pub fn switched_instrumented(
        topo: &SwitchTopology,
        config: EndpointConfig,
        switch: SwitchConfig,
    ) -> (Vec<Communicator>, Arc<SwitchRunner>) {
        let cluster =
            SwitchedCluster::with_switch_config(topo, Self::threaded_time(config), switch);
        let comms = Self::wire_switched(cluster);
        let fabric = comms[0].fabric.clone().expect("switched comms carry the runner");
        (comms, fabric)
    }

    /// Switched MPI ranks run on their own threads and block in spinning
    /// extract loops. Under [`TimeSource::VirtualTick`] (one tick per
    /// `extract` call) a waiting rank burns through its retransmission
    /// timeout in microseconds of wall time and floods the fabric with
    /// spurious duplicates — a storm that under injected loss can crowd
    /// out real progress entirely. Deadlines must mean wall time here,
    /// with the RTT estimator adapting the timeout to the fabric's real
    /// round-trip (the same policy the UDP wiring hard-codes).
    fn threaded_time(config: EndpointConfig) -> EndpointConfig {
        EndpointConfig {
            time_source: TimeSource::WallMicros,
            adaptive_rto: true,
            ..config
        }
    }

    fn default_config() -> EndpointConfig {
        EndpointConfig {
            window: 256,
            recv_ring: 1024,
            ..Default::default()
        }
    }

    /// Turn a built switched cluster into communicators. Ordering is the
    /// PR-7 lesson made structural: every rank's MPI handler registers
    /// (inside [`Communicator::new`]) *before* the switch shards start
    /// forwarding, so an eager sender's first data frame can never reach
    /// an endpoint whose handler table is still empty — it would be
    /// consumed, acked, and lost (an exactly-once violation the sender
    /// cannot detect).
    fn wire_switched(cluster: SwitchedCluster) -> Vec<Communicator> {
        let n = cluster.endpoints.len();
        let (endpoints, shards) = cluster.split();
        let mut comms: Vec<Communicator> = endpoints
            .into_iter()
            .map(|ep| Communicator::new(ep, n))
            .collect();
        // Only now may frames start moving between endpoints.
        let fabric = Arc::new(SwitchRunner::start(shards));
        for c in &mut comms {
            c.fabric = Some(fabric.clone());
        }
        comms
    }
}

/// One rank's endpoint plus its MPI state. Move it into the rank's thread.
pub struct Communicator {
    ep: MemEndpoint,
    size: usize,
    inbox: Arc<Mutex<MatchQueue>>,
    next_seq_to: HashMap<Rank, u32>,
    /// The switch wiring, when the cluster is switch-routed; collectives
    /// consult it to build spanning trees over the real fabric.
    topo: Option<Arc<SwitchTopology>>,
    /// Per-collective-kind epoch counters (see `collectives::coll_tag`).
    epochs: [u32; N_COLL_KINDS],
    /// Keeps the shard threads alive while any rank lives; dropping the
    /// last communicator stops and joins them.
    fabric: Option<Arc<SwitchRunner>>,
}

impl Communicator {
    fn new(mut ep: MemEndpoint, size: usize) -> Self {
        let topo = ep.topology().cloned();
        let inbox: Arc<Mutex<MatchQueue>> = Arc::new(Mutex::new(MatchQueue::new()));
        let sink = inbox.clone();
        let h = ep.register_large_handler(move |_, _src, msg| {
            if let Some(env) = Envelope::decode(&msg) {
                sink.lock().push(env);
            }
        });
        debug_assert_eq!(h.0, 0, "MPI message handler must be large-handler 0");
        Communicator {
            ep,
            size,
            inbox,
            next_seq_to: HashMap::new(),
            topo,
            epochs: [0; N_COLL_KINDS],
            fabric: None,
        }
    }

    /// Wrap an externally wired endpoint (switched or UDP) as an MPI rank.
    /// `size` is the number of ranks in the cluster; the endpoint's node
    /// id is the rank.
    ///
    /// # Panics
    /// If the endpoint has already consumed incoming data frames
    /// (`delivered` or `unknown_handler` nonzero). Handlers must register
    /// before the first extract: a data frame extracted before the MPI
    /// handler exists is consumed and acked as unknown-handler, so the
    /// sender never retransmits it — a silent message loss this guard
    /// turns into a loud construction error. Handshake traffic (UDP
    /// hellos, acks) does not trip it.
    pub fn adopt(ep: MemEndpoint, size: usize) -> Self {
        let stats = ep.stats();
        assert!(
            stats.delivered == 0 && stats.unknown_handler == 0,
            "handlers must register before the first extract: endpoint {} already \
             consumed {} data frame(s) ({} unknown-handler) before adoption",
            ep.node_id().0,
            stats.delivered + stats.unknown_handler,
            stats.unknown_handler,
        );
        assert!((ep.node_id().index()) < size, "node id outside the rank space");
        Communicator::new(ep, size)
    }

    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.ep.node_id().0
    }

    /// Number of ranks in the cluster.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The switch topology this rank is wired into (`None` on the pairwise
    /// mesh and UDP wirings).
    pub fn topology(&self) -> Option<&Arc<SwitchTopology>> {
        self.topo.as_ref()
    }

    /// Blocking tagged send of arbitrary size.
    pub fn send(&mut self, dest: Rank, tag: Tag, data: &[u8]) {
        assert!((dest as usize) < self.size, "rank {dest} out of range");
        assert!(tag.is_user(), "tags >= 0xFFFF0000 are reserved");
        self.send_internal(dest, tag, data);
    }

    fn send_internal(&mut self, dest: Rank, tag: Tag, data: &[u8]) {
        let me = self.rank();
        let seq = self.next_seq_to.entry(dest).or_insert(0);
        let env = Envelope {
            tag,
            seq: *seq,
            src: me,
            data: data.to_vec(),
        };
        *seq += 1;
        if dest == self.rank() {
            // Self-sends match locally without touching the network.
            self.inbox.lock().push(env);
            return;
        }
        let bytes = env.encode();
        // Large-handler 0 is the MPI sink on every rank.
        if let Err(e) = self.ep.send_large(NodeId(dest), fm_core::HandlerId(0), &bytes) {
            panic!("MPI send to rank {dest}: {e}");
        }
    }

    /// Blocking receive with wildcard source/tag. Returns
    /// `(source, tag, data)`.
    pub fn recv(&mut self, src: Option<Rank>, tag: Option<Tag>) -> (Rank, Tag, Vec<u8>) {
        loop {
            if let Some(env) = self.inbox.lock().take(src, tag) {
                return (env.src, env.tag, env.data);
            }
            self.ep.extract();
            std::thread::yield_now();
        }
    }

    /// Non-blocking probe-and-receive.
    pub fn try_recv(&mut self, src: Option<Rank>, tag: Option<Tag>) -> Option<(Rank, Tag, Vec<u8>)> {
        self.ep.extract();
        self.inbox
            .lock()
            .take(src, tag)
            .map(|env| (env.src, env.tag, env.data))
    }

    /// Service the network without receiving (keeps acks and fragments
    /// flowing during long local compute phases).
    pub fn progress(&mut self) {
        self.ep.extract();
    }

    /// Messages that arrived out of their sequence order (evidence of FM's
    /// unordered delivery being papered over by this layer).
    pub fn reordered_messages(&self) -> u64 {
        self.inbox.lock().reordered
    }

    /// Matched-queue occupancy: messages delivered but not yet received
    /// (visible) plus messages parked for sequence repair. Zero once the
    /// rank has received everything addressed to it — the exactly-once
    /// ledger the fault soaks audit.
    pub fn match_pending(&self) -> usize {
        self.inbox.lock().pending()
    }

    /// Underlying FM endpoint statistics.
    pub fn fm_stats(&self) -> fm_core::EndpointStats {
        self.ep.stats()
    }

    /// This rank's telemetry handle (counters, histograms, trace ring —
    /// including the collective spans the collectives module records).
    pub fn telemetry(&self) -> &fm_telemetry::Telemetry {
        self.ep.telemetry()
    }

    // Internal send/recv on reserved tags, for the collectives module.
    pub(crate) fn send_reserved(&mut self, dest: Rank, tag: Tag, data: &[u8]) {
        debug_assert!(!tag.is_user());
        self.send_internal(dest, tag, data);
    }

    pub(crate) fn recv_reserved(&mut self, src: Rank, tag: Tag) -> Vec<u8> {
        let (_, _, data) = self.recv(Some(src), Some(tag));
        data
    }

    /// Next epoch for one collective kind (post-increment; wraps within
    /// the kind's tag sub-space at use time, see `collectives::coll_tag`).
    pub(crate) fn bump_epoch(&mut self, kind: usize) -> u32 {
        let e = self.epochs[kind];
        self.epochs[kind] = e.wrapping_add(1);
        e
    }

    /// Record one collective-span trace event, stamped with the
    /// endpoint's own clock so it merges onto the same timeline as the
    /// message spans. The collectives module brackets every call
    /// (`CollBegin`/`CollEnd`) and every communication round
    /// (`CollRoundBegin`/`CollRoundEnd`) through this.
    pub(crate) fn trace_coll(&self, kind: fm_telemetry::EventKind) {
        self.ep.telemetry().trace(self.ep.now(), kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_rank_send_recv_threads() {
        let mut comms = MpiCluster::new(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let t = std::thread::spawn(move || {
            let (src, tag, data) = c1.recv(None, None);
            assert_eq!((src, tag), (0, Tag(9)));
            c1.send(0, Tag(10), &data.iter().map(|b| b + 1).collect::<Vec<_>>());
        });
        c0.send(1, Tag(9), &[1, 2, 3]);
        let (_, _, reply) = c0.recv(Some(1), Some(Tag(10)));
        assert_eq!(reply, vec![2, 3, 4]);
        t.join().unwrap();
    }

    #[test]
    fn large_message_roundtrip() {
        let mut comms = MpiCluster::new(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let big: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        let big2 = big.clone();
        let t = std::thread::spawn(move || {
            let (_, _, data) = c1.recv(Some(0), Some(Tag(1)));
            assert_eq!(data, big2);
            c1.send(0, Tag(2), &[data.len() as u8]);
        });
        c0.send(1, Tag(1), &big);
        let (_, _, ack) = c0.recv(Some(1), Some(Tag(2)));
        assert_eq!(ack, vec![(50_000 % 256) as u8]);
        t.join().unwrap();
    }

    #[test]
    fn self_send_matches_locally() {
        let mut comms = MpiCluster::new(1);
        let mut c = comms.pop().unwrap();
        c.send(0, Tag(3), b"me");
        let (src, tag, data) = c.recv(Some(0), Some(Tag(3)));
        assert_eq!((src, tag, data.as_slice()), (0, Tag(3), &b"me"[..]));
        assert_eq!(c.fm_stats().sent, 0, "no frames hit the wire");
    }

    #[test]
    fn per_pair_fifo_order_preserved() {
        let mut comms = MpiCluster::new(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let t = std::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..20 {
                let (_, _, d) = c1.recv(Some(0), Some(Tag(5)));
                got.push(d[0]);
            }
            got
        });
        for i in 0..20u8 {
            c0.send(1, Tag(5), &[i]);
        }
        // Drain acks so rank 0 quiesces.
        for _ in 0..10 {
            c0.progress();
        }
        let got = t.join().unwrap();
        assert_eq!(got, (0..20).collect::<Vec<u8>>());
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_tag_rejected_for_users() {
        let mut comms = MpiCluster::new(1);
        comms[0].send(0, Tag(Tag::RESERVED), b"no");
    }

    #[test]
    fn reduce_op_identities() {
        for op in [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min, ReduceOp::Max] {
            assert_eq!(op.apply(op.identity(), 3.5), 3.5);
        }
        assert_eq!(ReduceOp::Sum.apply(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Prod.apply(2.0, 3.0), 6.0);
        assert_eq!(ReduceOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(ReduceOp::Max.apply(2.0, 3.0), 3.0);
    }

    #[test]
    fn switched_ranks_see_the_topology() {
        let comms = MpiCluster::switched(4);
        for c in &comms {
            let topo = c.topology().expect("switched rank carries its wiring");
            assert_eq!(topo.hosts(), 4);
            assert_eq!(topo.switches(), 1);
        }
        assert!(MpiCluster::new(2)[0].topology().is_none());
    }

    #[test]
    fn switched_send_recv_crosses_switches() {
        // 12 ranks on a 2-switch chain: 0 -> 11 crosses a trunk.
        let mut comms = MpiCluster::switched(12);
        let mut c11 = comms.pop().unwrap();
        let t = std::thread::spawn(move || {
            let (src, _, data) = c11.recv(Some(0), Some(Tag(1)));
            assert_eq!((src, data.as_slice()), (0, &b"over the trunk"[..]));
            c11.send(0, Tag(2), b"ack");
        });
        comms[0].send(11, Tag(1), b"over the trunk");
        let (_, _, reply) = comms[0].recv(Some(11), Some(Tag(2)));
        assert_eq!(reply, b"ack");
        t.join().unwrap();
        // Drain trailing acks so shard threads can stop cleanly.
        for _ in 0..10 {
            comms[0].progress();
            std::thread::yield_now();
        }
    }
}
