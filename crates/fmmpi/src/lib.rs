//! # fm-mpi — a small message-passing library on Fast Messages
//!
//! The paper's Section 7 names MPI as the first client it intends to build
//! on FM ("FM is designed to support efficient implementation of a variety
//! of communication libraries"); this crate is that layer, scoped to the
//! core of MPI-1: matched point-to-point (`send`/`recv` with source and
//! tag), plus the collectives an application kernel needs (`barrier`,
//! `bcast`, `reduce`, `allreduce`, `gather`, `scatter`).
//!
//! Everything rides FM's primitives: messages of any size go through the
//! segmentation extension (itself plain `FM_send` frames), matching runs in
//! handlers during `FM_extract`, and collectives are trees/dissemination
//! patterns of point-to-point messages. Because FM does **not** guarantee
//! ordering (Table 3), every message carries a per-destination sequence
//! number and the receiver admits messages to the matching queue strictly
//! in sequence — restoring the per-source FIFO ordering MPI requires.
//!
//! ```
//! use fm_mpi::{MpiCluster, Tag};
//!
//! let comms = MpiCluster::new(2);
//! let mut handles = Vec::new();
//! for mut c in comms {
//!     handles.push(std::thread::spawn(move || {
//!         if c.rank() == 0 {
//!             c.send(1, Tag(7), b"hello");
//!             c.barrier();
//!         } else {
//!             let (src, _tag, data) = c.recv(Some(0), Some(Tag(7)));
//!             assert_eq!((src, data.as_slice()), (0, &b"hello"[..]));
//!             c.barrier();
//!         }
//!     }));
//! }
//! for h in handles {
//!     h.join().unwrap();
//! }
//! ```

pub mod collectives;
pub mod comm;
pub mod group;
pub mod matching;
pub mod nonblocking;

pub use comm::{Communicator, MpiCluster, ReduceOp};
pub use group::Group;
pub use nonblocking::RecvRequest;
pub use matching::{Envelope, MatchQueue};

/// A process rank within the cluster (0-based).
pub type Rank = u16;

/// MPI-level failures surfaced to the application instead of aborting the
/// rank. The reductions decode peer payloads; a malformed contribution is
/// the *peer's* bug (or hostile traffic), so the local rank reports it as
/// an error rather than panicking — the same promotion-from-assert policy
/// the core protocol guards follow in release builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiError {
    /// A reduction contribution was not a whole number of `f64`s.
    MisalignedReduce {
        /// Rank whose payload was malformed.
        src: Rank,
        /// Its payload length in bytes.
        len: usize,
    },
    /// A contribution's element count disagreed with the local buffer —
    /// the ranks called the collective with different lengths.
    LengthMismatch {
        src: Rank,
        got: usize,
        expect: usize,
    },
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::MisalignedReduce { src, len } => write!(
                f,
                "reduce contribution from rank {src} is {len} bytes, not a whole number of f64s"
            ),
            MpiError::LengthMismatch { src, got, expect } => write!(
                f,
                "rank {src} contributed {got} elements where this rank has {expect}"
            ),
        }
    }
}

impl std::error::Error for MpiError {}

/// An MPI-style message tag. Tags at or above [`Tag::RESERVED`] are used
/// internally by the collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u32);

impl Tag {
    /// First tag value reserved for internal protocols.
    pub const RESERVED: u32 = 0xFFFF_0000;

    /// Is this tag available to applications?
    pub fn is_user(self) -> bool {
        self.0 < Tag::RESERVED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_tags_flagged() {
        assert!(Tag(0).is_user());
        assert!(Tag(Tag::RESERVED - 1).is_user());
        assert!(!Tag(Tag::RESERVED).is_user());
        assert!(!Tag(u32::MAX).is_user());
    }
}
