//! Communicator splitting: MPI's `comm_split`, giving disjoint process
//! groups their own rank spaces and collective scopes.
//!
//! A [`Group`] is a view over the parent communicator: a sorted member
//! list, this process's index within it, and a *context id* that keeps the
//! group's internal traffic (reserved tags) from ever matching another
//! group's. Group collectives use simple robust algorithms (linear trees
//! and rings) — groups are typically small; the log-depth versions live on
//! the full communicator in [`crate::collectives`].

use crate::collectives::{bytes_to_f64s, combine, f64s_to_bytes};
use crate::comm::{Communicator, ReduceOp};
use crate::{MpiError, Rank, Tag};

/// Tag space for group-scoped traffic: `BASE + context * STRIDE + op`.
const GROUP_TAG_BASE: u32 = Tag::RESERVED + 0xA000;
const GROUP_TAG_STRIDE: u32 = 8;
const OP_SPLIT: u32 = 0;
const OP_BARRIER: u32 = 1;
const OP_BCAST: u32 = 2;
const OP_REDUCE: u32 = 3;
const OP_GATHER: u32 = 4;

/// A subgroup of the cluster with its own rank numbering.
#[derive(Debug, Clone)]
pub struct Group {
    /// Global ranks of the members, in group-rank order.
    members: Vec<Rank>,
    /// This process's rank within the group.
    my_index: usize,
    /// Distinguishes concurrent groups' internal traffic.
    context: u32,
}

impl Group {
    /// Group size.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This process's rank within the group.
    pub fn rank(&self) -> Rank {
        self.my_index as Rank
    }

    /// Translate a group rank to the global rank.
    pub fn global(&self, group_rank: Rank) -> Rank {
        self.members[group_rank as usize]
    }

    /// The member list (global ranks, group order).
    pub fn members(&self) -> &[Rank] {
        &self.members
    }

    fn tag(&self, op: u32) -> Tag {
        Tag(GROUP_TAG_BASE + self.context * GROUP_TAG_STRIDE + op)
    }

    /// Linear-chain barrier within the group: gather-to-leader then
    /// release.
    pub fn barrier(&self, comm: &mut Communicator) {
        if self.size() <= 1 {
            return;
        }
        let tag = self.tag(OP_BARRIER);
        let leader = self.global(0);
        if self.my_index == 0 {
            for gr in 1..self.size() as Rank {
                let _ = comm.recv_reserved(self.global(gr), tag);
            }
            for gr in 1..self.size() as Rank {
                comm.send_reserved(self.global(gr), tag, &[]);
            }
        } else {
            comm.send_reserved(leader, tag, &[]);
            let _ = comm.recv_reserved(leader, tag);
        }
    }

    /// Broadcast from group rank `root` (linear fan-out).
    pub fn bcast(&self, comm: &mut Communicator, root: Rank, data: &[u8]) -> Vec<u8> {
        if self.size() <= 1 {
            return data.to_vec();
        }
        let tag = self.tag(OP_BCAST);
        if self.rank() == root {
            for gr in 0..self.size() as Rank {
                if gr != root {
                    comm.send_reserved(self.global(gr), tag, data);
                }
            }
            data.to_vec()
        } else {
            comm.recv_reserved(self.global(root), tag)
        }
    }

    /// Reduce to group rank 0 (linear gather), then broadcast — an
    /// allreduce over the group. Malformed peer contributions surface as
    /// [`MpiError`] instead of aborting this rank.
    pub fn allreduce(
        &self,
        comm: &mut Communicator,
        data: &[f64],
        op: ReduceOp,
    ) -> Result<Vec<f64>, MpiError> {
        let tag = self.tag(OP_REDUCE);
        let mut acc = data.to_vec();
        if self.my_index == 0 {
            for gr in 1..self.size() as Rank {
                let src = self.global(gr);
                let theirs = bytes_to_f64s(src, &comm.recv_reserved(src, tag))?;
                combine(&mut acc, src, &theirs, op)?;
            }
        } else {
            comm.send_reserved(self.global(0), tag, &f64s_to_bytes(&acc));
        }
        let out = self.bcast(comm, 0, &f64s_to_bytes(&acc));
        bytes_to_f64s(self.global(0), &out)
    }

    /// Gather members' bytes at group rank `root` (group-rank order).
    pub fn gather(&self, comm: &mut Communicator, root: Rank, data: &[u8]) -> Option<Vec<Vec<u8>>> {
        let tag = self.tag(OP_GATHER);
        if self.rank() != root {
            comm.send_reserved(self.global(root), tag, data);
            return None;
        }
        let mut out = vec![Vec::new(); self.size()];
        out[root as usize] = data.to_vec();
        for gr in 0..self.size() as Rank {
            if gr != root {
                out[gr as usize] = comm.recv_reserved(self.global(gr), tag);
            }
        }
        Some(out)
    }
}

impl Communicator {
    /// MPI `comm_split`: every rank calls this collectively with a `color`
    /// (which group to join) and a `key` (ordering within the group; ties
    /// break by global rank). Returns this process's [`Group`].
    ///
    /// The context id is derived deterministically from the sorted color
    /// set, so back-to-back splits that produce the same grouping reuse
    /// the same context — adequate for the test/application patterns here
    /// (full context management is MPI-runtime territory).
    pub fn split(&mut self, color: u32, key: i32) -> Group {
        let n = self.size();
        let me = self.rank();
        let tag = Tag(GROUP_TAG_BASE + OP_SPLIT);
        // All-to-all exchange of (color, key): everyone sends to rank 0,
        // rank 0 broadcasts the table. Simple and collective-safe.
        let mine = {
            let mut v = Vec::with_capacity(8);
            v.extend_from_slice(&color.to_le_bytes());
            v.extend_from_slice(&key.to_le_bytes());
            v
        };
        let table: Vec<(u32, i32)> = if me == 0 {
            let mut table = vec![(0u32, 0i32); n];
            table[0] = (color, key);
            for r in 1..n as Rank {
                let b = self.recv_reserved(r, tag);
                table[r as usize] = (
                    u32::from_le_bytes(b[0..4].try_into().expect("4B")),
                    i32::from_le_bytes(b[4..8].try_into().expect("4B")),
                );
            }
            let flat: Vec<u8> = table
                .iter()
                .flat_map(|(c, k)| {
                    let mut v = c.to_le_bytes().to_vec();
                    v.extend_from_slice(&k.to_le_bytes());
                    v
                })
                .collect();
            for r in 1..n as Rank {
                self.send_reserved(r, tag, &flat);
            }
            table
        } else {
            self.send_reserved(0, tag, &mine);
            let flat = self.recv_reserved(0, tag);
            flat.chunks_exact(8)
                .map(|c| {
                    (
                        u32::from_le_bytes(c[0..4].try_into().expect("4B")),
                        i32::from_le_bytes(c[4..8].try_into().expect("4B")),
                    )
                })
                .collect()
        };

        // Members of my color, sorted by (key, global rank).
        let mut members: Vec<Rank> = (0..n as Rank)
            .filter(|&r| table[r as usize].0 == color)
            .collect();
        members.sort_by_key(|&r| (table[r as usize].1, r));
        let my_index = members
            .iter()
            .position(|&r| r == me)
            .expect("caller is in its own color group");
        // Context: the color's index among the distinct colors present.
        let mut colors: Vec<u32> = table.iter().map(|(c, _)| *c).collect();
        colors.sort_unstable();
        colors.dedup();
        let context = colors.iter().position(|&c| c == color).expect("present") as u32;
        Group {
            members,
            my_index,
            context,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MpiCluster;

    fn run_ranks<T: Send + 'static>(
        n: usize,
        f: impl Fn(&mut Communicator) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let comms = MpiCluster::new(n);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut c| {
                let f = f.clone();
                std::thread::spawn(move || {
                    let out = f(&mut c);
                    for _ in 0..5 {
                        c.progress();
                        std::thread::yield_now();
                    }
                    (c.rank(), out)
                })
            })
            .collect();
        let mut results: Vec<_> =
            handles.into_iter().map(|h| h.join().expect("rank")).collect();
        results.sort_by_key(|(r, _)| *r);
        results.into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn split_even_odd_groups() {
        let out = run_ranks(6, |c| {
            let g = c.split(c.rank() as u32 % 2, 0);
            (g.size(), g.rank(), g.members().to_vec())
        });
        for (r, (size, grank, members)) in out.iter().enumerate() {
            assert_eq!(*size, 3);
            let expect: Vec<Rank> = (0..6)
                .filter(|x| x % 2 == r as u16 % 2)
                .collect();
            assert_eq!(members, &expect);
            assert_eq!(*grank as usize, r / 2);
        }
    }

    #[test]
    fn key_reorders_group_ranks() {
        let out = run_ranks(4, |c| {
            // Same color; key = -rank reverses the ordering.
            let g = c.split(0, -(c.rank() as i32));
            g.rank()
        });
        assert_eq!(out, vec![3, 2, 1, 0]);
    }

    #[test]
    fn group_collectives_stay_inside_the_group() {
        let out = run_ranks(6, |c| {
            let color = c.rank() as u32 % 2;
            let g = c.split(color, 0);
            g.barrier(c);
            // Each group reduces its own global ranks.
            let sum = g.allreduce(c, &[c.rank() as f64], ReduceOp::Sum).unwrap()[0];
            // Leader broadcasts a group-specific token.
            let token = g.bcast(c, 0, &[g.global(0) as u8 + 100]);
            g.barrier(c);
            (sum, token[0])
        });
        // Evens: 0+2+4 = 6, leader 0 -> token 100. Odds: 1+3+5 = 9,
        // leader 1 -> token 101.
        for (r, (sum, token)) in out.iter().enumerate() {
            if r % 2 == 0 {
                assert_eq!((*sum, *token), (6.0, 100), "rank {r}");
            } else {
                assert_eq!((*sum, *token), (9.0, 101), "rank {r}");
            }
        }
    }

    #[test]
    fn group_gather_in_group_order() {
        let out = run_ranks(4, |c| {
            let g = c.split(0, 0); // everyone, identity order
            g.gather(c, 1, &[c.rank() as u8 * 2])
        });
        assert!(out[0].is_none());
        let rows = out[1].as_ref().expect("group-root result");
        assert_eq!(rows, &vec![vec![0], vec![2], vec![4], vec![6]]);
    }

    #[test]
    fn singleton_groups_trivially_work() {
        let out = run_ranks(3, |c| {
            let g = c.split(c.rank() as u32, 0); // everyone alone
            g.barrier(c);
            let v = g.allreduce(c, &[7.0], ReduceOp::Max).unwrap();
            (g.size(), v[0])
        });
        for (size, v) in out {
            assert_eq!((size, v), (1, 7.0));
        }
    }
}
