//! Calendar queue — an alternative pending-event set.
//!
//! A calendar queue (Brown 1988) buckets events by time modulo a rotating
//! "year" and gives O(1) amortized enqueue/dequeue when event times are
//! roughly uniform per bucket. The `des_queue` ablation bench compares it
//! against the default binary heap on the workloads this repository actually
//! generates (bursty NIC service loops), documenting why the heap is the
//! default.

use crate::time::Time;

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

/// A classic dynamically-resizing calendar queue with FIFO tie-breaking.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// Each bucket is kept sorted ascending by (time, seq); we pop from the
    /// front. Buckets are short when the queue is well-tuned, so insertion
    /// is a short linear scan.
    buckets: Vec<Vec<Entry<E>>>,
    /// Width of each bucket in picoseconds.
    width_ps: u64,
    /// Index of the bucket currently being drained.
    cursor: usize,
    /// Start time (ps) of the cursor bucket in the current year.
    cursor_start_ps: u64,
    len: usize,
    seq: u64,
    last_popped: Time,
}

impl<E> CalendarQueue<E> {
    /// `width` is the expected inter-event spacing; `buckets` the initial
    /// bucket count (rounded up to a power of two).
    pub fn new(width_ps: u64, buckets: usize) -> Self {
        let n = buckets.next_power_of_two().max(2);
        CalendarQueue {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            width_ps: width_ps.max(1),
            cursor: 0,
            cursor_start_ps: 0,
            len: 0,
            seq: 0,
            last_popped: Time::ZERO,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket_of(&self, t: Time) -> usize {
        ((t.as_ps() / self.width_ps) as usize) & (self.buckets.len() - 1)
    }

    /// Insert an event at absolute time `t` (must be >= the last popped time).
    ///
    /// # Panics
    /// If `t` is before the last popped time. This guard is active in
    /// release builds too: a past-dated event would be popped out of order
    /// and silently corrupt causality, the worst possible failure mode for
    /// a regression simulator.
    pub fn push(&mut self, t: Time, event: E) {
        assert!(t >= self.last_popped, "calendar queue: push into the past");
        let seq = self.seq;
        self.seq += 1;
        let idx = self.bucket_of(t);
        let bucket = &mut self.buckets[idx];
        // Insert keeping (time, seq) ascending; events arrive mostly in
        // near-order so scanning from the back is the common fast path.
        let pos = bucket
            .iter()
            .rposition(|e| (e.time, e.seq) <= (t, seq))
            .map(|p| p + 1)
            .unwrap_or(0);
        bucket.insert(pos, Entry { time: t, seq, event });
        self.len += 1;
        self.maybe_resize();
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.len == 0 {
            return None;
        }
        let nbuckets = self.buckets.len();
        let year_ps = self.width_ps * nbuckets as u64;
        loop {
            // Scan buckets starting at the cursor; an event "belongs" to the
            // current year if its time falls inside this bucket's window.
            for _ in 0..nbuckets {
                let window_end = self.cursor_start_ps + self.width_ps;
                let bucket = &mut self.buckets[self.cursor];
                if let Some(front) = bucket.first() {
                    if front.time.as_ps() < window_end {
                        let e = bucket.remove(0);
                        self.len -= 1;
                        self.last_popped = e.time;
                        return Some((e.time, e.event));
                    }
                }
                self.cursor = (self.cursor + 1) % nbuckets;
                self.cursor_start_ps += self.width_ps;
            }
            // Completed a full year without finding an in-window event: jump
            // the calendar forward to the globally minimal pending event.
            let min_time = self
                .buckets
                .iter()
                .filter_map(|b| b.first().map(|e| e.time))
                .min()
                .expect("len > 0 but no events found");
            let t = min_time.as_ps();
            self.cursor_start_ps = t - (t % self.width_ps);
            self.cursor = ((t / self.width_ps) as usize) & (nbuckets - 1);
            // Loop around; the next scan is guaranteed to find it.
            let _ = year_ps;
        }
    }

    /// Resize to keep average bucket occupancy near 1 (halve/double policy).
    fn maybe_resize(&mut self) {
        let n = self.buckets.len();
        if self.len > 2 * n {
            self.resize(n * 2);
        }
    }

    fn resize(&mut self, new_n: usize) {
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            entries.append(b);
        }
        self.buckets = (0..new_n).map(|_| Vec::new()).collect();
        entries.sort_by_key(|e| (e.time, e.seq));
        let len = self.len;
        for e in entries {
            let idx = ((e.time.as_ps() / self.width_ps) as usize) & (new_n - 1);
            self.buckets[idx].push(e);
        }
        self.len = len;
        // Reposition the cursor at the *last popped* instant, not the
        // earliest pending event: every pending entry and every legal
        // future push is >= `last_popped`, so scanning forward from its
        // bucket window cannot skip anything. Repositioning at the
        // earliest pending event was a subtle out-of-order bug — a later
        // (legal) push landing in `[last_popped, earliest_pending)` sat in
        // a bucket behind the fast-forwarded cursor and was popped a full
        // year late. Caught by the calendar-vs-heap property suite.
        let lp = self.last_popped.as_ps();
        self.cursor_start_ps = lp - (lp % self.width_ps);
        self.cursor = ((lp / self.width_ps) as usize) & (new_n - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn pops_sorted_small() {
        let mut q = CalendarQueue::new(1_000, 8);
        q.push(Time::from_ns(5), "b");
        q.push(Time::from_ns(1), "a");
        q.push(Time::from_ns(9), "c");
        assert_eq!(q.pop(), Some((Time::from_ns(1), "a")));
        assert_eq!(q.pop(), Some((Time::from_ns(5), "b")));
        assert_eq!(q.pop(), Some((Time::from_ns(9), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_ties() {
        let mut q = CalendarQueue::new(1_000, 4);
        let t = Time::from_ns(3);
        for i in 0..50 {
            q.push(t, i);
        }
        for i in 0..50 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn matches_heap_on_random_workload() {
        let mut rng = Xoshiro256::seed_from_u64(2024);
        let mut cal = CalendarQueue::new(500, 16);
        let mut heap = crate::Engine::new();
        let mut now = 0u64;
        let mut popped_cal = Vec::new();
        let mut popped_heap = Vec::new();
        // Interleave pushes and pops with increasing time.
        for step in 0..5_000u64 {
            let delay = rng.next_below(10_000);
            let t = Time::from_ps(now + delay);
            cal.push(t, step);
            heap.schedule_at(t, step);
            if rng.next_bool(0.5) {
                if let Some((t1, e1)) = cal.pop() {
                    popped_cal.push((t1, e1));
                    now = now.max(t1.as_ps());
                }
                let (t2, e2) = heap.pop().unwrap();
                popped_heap.push((t2, e2));
            }
        }
        while let Some(x) = cal.pop() {
            popped_cal.push(x);
        }
        while let Some(x) = heap.pop() {
            popped_heap.push(x);
        }
        assert_eq!(popped_cal.len(), 5_000);
        assert_eq!(popped_cal, popped_heap);
    }

    #[test]
    fn survives_sparse_far_future_events() {
        let mut q = CalendarQueue::new(100, 4);
        q.push(Time::from_ms(5), 1u32);
        q.push(Time::from_ns(1), 0u32);
        q.push(Time::from_s(1), 2u32);
        assert_eq!(q.pop().unwrap().1, 0);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn resize_preserves_order() {
        let mut q = CalendarQueue::new(10, 2);
        let mut expect = Vec::new();
        for i in 0..1_000u64 {
            let t = Time::from_ps(i * 37 % 10_000);
            q.push(t, i);
            expect.push((t, i));
        }
        expect.sort();
        let mut got = Vec::new();
        while let Some(x) = q.pop() {
            got.push(x);
        }
        assert_eq!(got, expect);
    }
}
