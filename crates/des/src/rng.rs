//! Deterministic, seedable random number generation.
//!
//! The simulator must be bit-reproducible across runs and platforms, so we
//! implement small, well-known generators rather than depending on `rand`'s
//! (potentially version-drifting) algorithms: [`SplitMix64`] for seeding and
//! [`Xoshiro256`] (xoshiro256++) for the main stream. Workload generators in
//! higher crates take one of these by value so each experiment owns an
//! independent, replayable stream.

/// SplitMix64 — Steele, Lea & Flood's 64-bit mixer. Primarily used to expand
/// a single `u64` seed into the 256-bit xoshiro state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — Blackman & Vigna's general-purpose 256-bit generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 as the xoshiro authors recommend; any seed
    /// (including 0) yields a valid non-zero state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [
                sm.next_u64(),
                sm.next_u64(),
                sm.next_u64(),
                sm.next_u64(),
            ],
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)` via Lemire's multiply-shift rejection method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        // Unbiased: reject the short low region.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "next_range: lo > hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed f64 with the given mean (for Poisson
    /// inter-arrival workload generators).
    #[inline]
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        // Avoid ln(0): next_f64 is in [0,1), so 1-x is in (0,1].
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Derive an independent child stream, advancing `self` by one draw.
    ///
    /// The child is seeded through SplitMix64 from a single draw of the
    /// parent, so splitting is deterministic: the same parent state always
    /// yields the same child, and the parent's continuation after the
    /// split is the same as if it had produced one `next_u64`. Workload
    /// generators split one campaign seed into per-endpoint / per-scenario
    /// streams so adding a consumer never perturbs the draws of another.
    #[must_use = "split returns the child stream"]
    pub fn split(&mut self) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(self.next_u64())
    }

    /// Advance the state by 2^128 steps (the canonical xoshiro jump
    /// polynomial) — equivalent to 2^128 calls to `next_u64`. Gives
    /// non-overlapping substreams with certainty where [`Xoshiro256::split`]
    /// gives them only probabilistically.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut s = [0u64; 4];
        for word in JUMP {
            for b in 0..64 {
                if word & (1u64 << b) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = s;
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Fill a byte buffer (payload generation).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 (computed from the canonical
        // C implementation).
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_deterministic_and_well_spread() {
        let mut r1 = Xoshiro256::seed_from_u64(42);
        let mut r2 = Xoshiro256::seed_from_u64(42);
        let mut r3 = Xoshiro256::seed_from_u64(43);
        let v1: Vec<u64> = (0..64).map(|_| r1.next_u64()).collect();
        let v2: Vec<u64> = (0..64).map(|_| r2.next_u64()).collect();
        let v3: Vec<u64> = (0..64).map(|_| r3.next_u64()).collect();
        assert_eq!(v1, v2);
        assert_ne!(v1, v3);
        // Crude spread check: all 64 draws distinct.
        let set: std::collections::HashSet<_> = v1.iter().collect();
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 127, 1 << 40] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = Xoshiro256::seed_from_u64(99);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.next_below(8) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10 000 per bucket; allow 5% slack.
            assert!((9_500..=10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn next_range_inclusive_endpoints() {
        let mut r = Xoshiro256::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let x = r.next_range(5, 8);
            assert!((5..=8).contains(&x));
            lo_seen |= x == 5;
            hi_seen |= x == 8;
        }
        assert!(lo_seen && hi_seen);
        assert_eq!(r.next_range(9, 9), 9);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    #[test]
    fn next_exp_has_requested_mean() {
        let mut r = Xoshiro256::seed_from_u64(21);
        let mean_target = 250.0;
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(mean_target)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean_target * 0.95..mean_target * 1.05).contains(&mean),
            "mean {mean}"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = Xoshiro256::seed_from_u64(17);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        // Deterministic.
        let mut r2 = Xoshiro256::seed_from_u64(17);
        let mut buf2 = [0u8; 13];
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }
}
