//! Measurement collection: streaming summaries, fixed-bucket histograms,
//! and time-weighted occupancy statistics (queue depths, busy fractions).

use crate::time::{Duration, Time};

/// Streaming scalar summary (count / min / max / mean / variance) using
/// Welford's numerically stable online algorithm.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_ns_f64());
    }

    pub fn count(&self) -> u64 {
        self.n
    }
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
    /// Sample variance (n-1 denominator).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merge another summary into this one (parallel sweep reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Histogram over duration values with logarithmic (powers-of-two ns) buckets.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts samples with ns in `[2^i, 2^(i+1))`; bucket 0 also
    /// holds sub-ns samples.
    buckets: Vec<u64>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; 64],
            total: 0,
        }
    }

    pub fn record(&mut self, d: Duration) {
        let ns = d.as_ns();
        let idx = if ns <= 1 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[idx.min(63)] += 1;
        self.total += 1;
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate quantile (upper edge of the bucket containing it).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return 0;
        }
        let target = ((self.total as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }
}

/// Time-weighted value tracker: integrates `value(t) dt` so that
/// `average()` is the true time-average (queue occupancy, utilization).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    value: f64,
    last_change: Time,
    integral: f64, // value * ps
    start: Time,
    peak: f64,
}

impl TimeWeighted {
    pub fn new(start: Time, initial: f64) -> Self {
        TimeWeighted {
            value: initial,
            last_change: start,
            integral: 0.0,
            start,
            peak: initial,
        }
    }

    /// Record that the tracked value becomes `v` at time `now`.
    pub fn set(&mut self, now: Time, v: f64) {
        debug_assert!(now >= self.last_change);
        self.integral += self.value * now.saturating_since(self.last_change).as_ps() as f64;
        self.value = v;
        self.last_change = now;
        self.peak = self.peak.max(v);
    }

    pub fn add(&mut self, now: Time, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    pub fn current(&self) -> f64 {
        self.value
    }
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-average of the value over `[start, now]`.
    pub fn average(&self, now: Time) -> f64 {
        let total = now.saturating_since(self.start).as_ps() as f64;
        if total == 0.0 {
            return self.value;
        }
        let integral =
            self.integral + self.value * now.saturating_since(self.last_change).as_ps() as f64;
        integral / total
    }
}

/// Busy/idle tracker for a single resource (a DMA engine, a bus): reports
/// utilization as the busy fraction of elapsed time.
#[derive(Debug, Clone)]
pub struct Utilization {
    busy_since: Option<Time>,
    busy_total: Duration,
    start: Time,
}

impl Utilization {
    pub fn new(start: Time) -> Self {
        Utilization {
            busy_since: None,
            busy_total: Duration::ZERO,
            start,
        }
    }

    pub fn set_busy(&mut self, now: Time) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
    }

    pub fn set_idle(&mut self, now: Time) {
        if let Some(since) = self.busy_since.take() {
            self.busy_total += now.saturating_since(since);
        }
    }

    pub fn is_busy(&self) -> bool {
        self.busy_since.is_some()
    }

    /// Busy fraction in `[0, 1]` over `[start, now]`.
    pub fn fraction(&self, now: Time) -> f64 {
        let elapsed = now.saturating_since(self.start);
        if elapsed == Duration::ZERO {
            return 0.0;
        }
        let mut busy = self.busy_total;
        if let Some(since) = self.busy_since {
            busy += now.saturating_since(since);
        }
        busy.as_ps() as f64 / elapsed.as_ps() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        // Sample variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Summary::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn summary_empty_is_nan() {
        let s = Summary::new();
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = LatencyHistogram::new();
        for ns in [1u64, 2, 3, 10, 100, 1000, 10_000] {
            h.record(Duration::from_ns(ns));
        }
        assert_eq!(h.total(), 7);
        // Median falls in the bucket containing 10ns => upper edge 16ns.
        assert_eq!(h.quantile_ns(0.5), 16);
        assert!(h.quantile_ns(1.0) >= 10_000);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(Time::ZERO, 0.0);
        tw.set(Time::from_ns(10), 4.0); // 0 for 10ns
        tw.set(Time::from_ns(30), 2.0); // 4 for 20ns
        let avg = tw.average(Time::from_ns(40)); // 2 for 10ns
        // (0*10 + 4*20 + 2*10) / 40 = 100/40
        assert!((avg - 2.5).abs() < 1e-12);
        assert_eq!(tw.peak(), 4.0);
        assert_eq!(tw.current(), 2.0);
    }

    #[test]
    fn utilization_fraction() {
        let mut u = Utilization::new(Time::ZERO);
        u.set_busy(Time::from_ns(10));
        u.set_idle(Time::from_ns(30));
        assert!((u.fraction(Time::from_ns(40)) - 0.5).abs() < 1e-12);
        // Still-busy interval counts up to `now`.
        u.set_busy(Time::from_ns(40));
        assert!((u.fraction(Time::from_ns(60)) - (20.0 + 20.0) / 60.0).abs() < 1e-12);
        assert!(u.is_busy());
    }

    #[test]
    fn utilization_idempotent_transitions() {
        let mut u = Utilization::new(Time::ZERO);
        u.set_busy(Time::from_ns(5));
        u.set_busy(Time::from_ns(9)); // no-op: already busy
        u.set_idle(Time::from_ns(10));
        u.set_idle(Time::from_ns(11)); // no-op: already idle
        assert!((u.fraction(Time::from_ns(10)) - 0.5).abs() < 1e-12);
    }
}
