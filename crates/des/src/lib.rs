//! # fm-des — deterministic discrete-event simulation engine
//!
//! The substrate under every timed experiment in this workspace. The paper's
//! evaluation ([Pakin et al., SC '95]) measures one-way latency and streaming
//! bandwidth of successive messaging-layer configurations on real 1995
//! hardware; we replay those configurations inside a discrete-event simulator
//! whose cost constants come from the paper itself.
//!
//! Design goals, in priority order:
//!
//! 1. **Determinism** — integer picosecond time ([`Time`]), FIFO tie-breaking
//!    by a monotonically increasing sequence number, and a seedable
//!    [`rng::SplitMix64`]/[`rng::Xoshiro256`] RNG. Two runs with the same
//!    seed produce bit-identical event orders, so every figure regenerates
//!    exactly.
//! 2. **Zero `Rc<RefCell<…>>`** — the engine is a plain priority queue of
//!    user-defined event values ([`Engine`]); the *world* that interprets
//!    events lives outside the engine and is borrowed mutably only in the
//!    caller's dispatch loop. This sidesteps the classic Rust-DES ownership
//!    tangle and keeps components independently unit-testable.
//! 3. **Throughput** — the hot path is `BinaryHeap` push/pop of a 24-byte
//!    entry plus an enum dispatch; tens of millions of events per second,
//!    enough to stream the paper's 65 535-packet bandwidth tests in
//!    milliseconds.
//!
//! Two queue disciplines are provided — the default binary heap and a
//! calendar queue ([`calendar::CalendarQueue`]) — so the `des_queue`
//! ablation bench can compare them.

pub mod calendar;
pub mod rng;
pub mod stats;
pub mod time;

pub use calendar::CalendarQueue;
pub use time::{Duration, Time};

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: fire `event` at `time`. `seq` breaks ties FIFO.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* entry.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The discrete-event engine: a clock plus a deterministic pending-event set.
///
/// `E` is the caller's event type (typically one enum per simulated world).
/// The engine never interprets events; the caller runs the dispatch loop:
///
/// ```
/// use fm_des::{Duration, Engine, Time};
///
/// #[derive(Debug)]
/// enum Ev { Ping, Pong }
///
/// let mut eng: Engine<Ev> = Engine::new();
/// eng.schedule_in(Duration::from_ns(5), Ev::Ping);
/// let mut log = Vec::new();
/// while let Some((t, ev)) = eng.pop() {
///     match ev {
///         Ev::Ping => {
///             log.push((t, "ping"));
///             eng.schedule_in(Duration::from_ns(7), Ev::Pong);
///         }
///         Ev::Pong => log.push((t, "pong")),
///     }
/// }
/// assert_eq!(log, vec![(Time::from_ns(5), "ping"), (Time::from_ns(12), "pong")]);
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: Time,
    seq: u64,
    dispatched: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// New engine with the clock at [`Time::ZERO`].
    pub fn new() -> Self {
        Engine {
            heap: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            dispatched: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events dispatched (popped) so far.
    #[inline]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at the absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — an event scheduled before `now()`
    /// indicates a model bug, and silently clamping would corrupt causality.
    #[inline]
    pub fn schedule_at(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            event,
        });
    }

    /// Schedule `event` after the relative delay `delay`.
    #[inline]
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedule `event` at the current instant (after already-pending events
    /// with the same timestamp, preserving FIFO order).
    #[inline]
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Pop the earliest pending event, advancing the clock to its timestamp.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "heap returned an out-of-order event");
        self.now = s.time;
        self.dispatched += 1;
        Some((s.time, s.event))
    }

    /// Peek at the timestamp of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.time)
    }

    /// Drop every pending event (the clock keeps its value).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Run the dispatch loop until the event set drains or `f` returns
    /// [`std::ops::ControlFlow::Break`].
    pub fn run_until<F>(&mut self, mut f: F) -> Time
    where
        F: FnMut(&mut Self, Time, E) -> std::ops::ControlFlow<()>,
    {
        while let Some((t, ev)) = self.pop() {
            if f(self, t, ev).is_break() {
                break;
            }
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    enum Ev {
        A(u32),
        B(u32),
    }

    #[test]
    fn pops_in_time_order() {
        let mut e: Engine<Ev> = Engine::new();
        e.schedule_at(Time::from_ns(30), Ev::A(3));
        e.schedule_at(Time::from_ns(10), Ev::A(1));
        e.schedule_at(Time::from_ns(20), Ev::A(2));
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).collect();
        assert_eq!(
            order,
            vec![
                (Time::from_ns(10), Ev::A(1)),
                (Time::from_ns(20), Ev::A(2)),
                (Time::from_ns(30), Ev::A(3)),
            ]
        );
    }

    #[test]
    fn ties_break_fifo() {
        let mut e: Engine<Ev> = Engine::new();
        let t = Time::from_ns(5);
        for i in 0..100 {
            e.schedule_at(t, Ev::B(i));
        }
        for i in 0..100 {
            assert_eq!(e.pop(), Some((t, Ev::B(i))));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut e: Engine<Ev> = Engine::new();
        e.schedule_in(Duration::from_ns(7), Ev::A(0));
        e.pop();
        assert_eq!(e.now(), Time::from_ns(7));
        e.schedule_in(Duration::from_ns(3), Ev::A(1));
        e.pop();
        assert_eq!(e.now(), Time::from_ns(10));
        assert!(e.is_idle());
        assert_eq!(e.dispatched(), 2);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut e: Engine<Ev> = Engine::new();
        e.schedule_at(Time::from_ns(10), Ev::A(0));
        e.pop();
        e.schedule_at(Time::from_ns(9), Ev::A(1));
    }

    #[test]
    fn schedule_now_preserves_fifo_after_pop() {
        let mut e: Engine<Ev> = Engine::new();
        e.schedule_at(Time::from_ns(4), Ev::A(0));
        e.pop();
        e.schedule_now(Ev::A(1));
        e.schedule_now(Ev::A(2));
        assert_eq!(e.pop(), Some((Time::from_ns(4), Ev::A(1))));
        assert_eq!(e.pop(), Some((Time::from_ns(4), Ev::A(2))));
    }

    #[test]
    fn run_until_break_stops_early() {
        let mut e: Engine<Ev> = Engine::new();
        for i in 0..10 {
            e.schedule_at(Time::from_ns(i), Ev::A(i as u32));
        }
        let mut seen = 0;
        e.run_until(|_, _, _| {
            seen += 1;
            if seen == 4 {
                std::ops::ControlFlow::Break(())
            } else {
                std::ops::ControlFlow::Continue(())
            }
        });
        assert_eq!(seen, 4);
        assert_eq!(e.pending(), 6);
    }

    #[test]
    fn run_until_drains() {
        let mut e: Engine<Ev> = Engine::new();
        e.schedule_at(Time::from_ns(1), Ev::A(0));
        e.schedule_at(Time::from_ns(2), Ev::A(1));
        let end = e.run_until(|eng, t, ev| {
            // A cascading event from within the loop must also be seen.
            if ev == Ev::A(0) {
                eng.schedule_at(t + Duration::from_ns(5), Ev::B(9));
            }
            std::ops::ControlFlow::Continue(())
        });
        assert_eq!(end, Time::from_ns(6));
        assert!(e.is_idle());
    }
}
