//! Integer simulation time.
//!
//! Times are **picoseconds in a `u64`** (reach: ~213 days of simulated time)
//! so that every cost constant from the paper — 12.5 ns/byte links, 40 ns
//! LANai cycles, 320 ns DMA setup — is exactly representable. Floating point
//! time would accumulate rounding and break run-to-run determinism across
//! optimization levels.
//!
//! All arithmetic here is **checked in every build profile**. The original
//! operators compiled down to plain `+`/`-`/`*`, which panic under debug
//! assertions but silently wrap in release — and release is exactly how the
//! million-endpoint simulation campaigns run. A wrapped `Time` would reorder
//! the pending-event set and corrupt a simulation without any diagnostic, so
//! (mirroring the release-guard policy used for the protocol invariants in
//! `fm-core`) overflow and underflow are promoted to explicit panics with a
//! message naming the operation. Callers that want fallible arithmetic use
//! [`Time::checked_add`] / [`Duration::checked_add`] /
//! [`Duration::checked_mul`], and the saturating variants remain for spans
//! that may legitimately clamp.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

/// Unit-count → picoseconds conversion that panics (in every profile, const
/// contexts included) instead of wrapping when the count exceeds u64 reach.
#[inline]
const fn checked_scale(count: u64, ps_per_unit: u64) -> u64 {
    match count.checked_mul(ps_per_unit) {
        Some(ps) => ps,
        None => panic!("time value overflows u64 picoseconds (~213 days)"),
    }
}

/// An absolute instant in simulated time (picoseconds since t=0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time (picoseconds).
///
/// Distinct from [`Time`] so the type system rejects `instant + instant`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

macro_rules! ctors {
    ($ty:ident) => {
        impl $ty {
            pub const ZERO: $ty = $ty(0);

            /// From picoseconds.
            #[inline]
            pub const fn from_ps(ps: u64) -> Self {
                $ty(ps)
            }
            /// From nanoseconds.
            ///
            /// # Panics
            /// If the value exceeds the ~213-day reach of u64 picoseconds.
            #[inline]
            pub const fn from_ns(ns: u64) -> Self {
                $ty(checked_scale(ns, PS_PER_NS))
            }
            /// From microseconds.
            ///
            /// # Panics
            /// If the value exceeds the ~213-day reach of u64 picoseconds.
            #[inline]
            pub const fn from_us(us: u64) -> Self {
                $ty(checked_scale(us, PS_PER_US))
            }
            /// From milliseconds.
            ///
            /// # Panics
            /// If the value exceeds the ~213-day reach of u64 picoseconds.
            #[inline]
            pub const fn from_ms(ms: u64) -> Self {
                $ty(checked_scale(ms, PS_PER_MS))
            }
            /// From seconds.
            ///
            /// # Panics
            /// If the value exceeds the ~213-day reach of u64 picoseconds.
            #[inline]
            pub const fn from_s(s: u64) -> Self {
                $ty(checked_scale(s, PS_PER_S))
            }
            /// Raw picoseconds.
            #[inline]
            pub const fn as_ps(self) -> u64 {
                self.0
            }
            /// As (truncated) nanoseconds.
            #[inline]
            pub const fn as_ns(self) -> u64 {
                self.0 / PS_PER_NS
            }
            /// As fractional nanoseconds.
            #[inline]
            pub fn as_ns_f64(self) -> f64 {
                self.0 as f64 / PS_PER_NS as f64
            }
            /// As fractional microseconds.
            #[inline]
            pub fn as_us_f64(self) -> f64 {
                self.0 as f64 / PS_PER_US as f64
            }
            /// As fractional seconds.
            #[inline]
            pub fn as_secs_f64(self) -> f64 {
                self.0 as f64 / PS_PER_S as f64
            }
        }
    };
}
ctors!(Time);
ctors!(Duration);

impl Duration {
    /// Duration from a fractional count of nanoseconds, rounded to the
    /// nearest picosecond. Used for per-byte costs like 12.5 ns/B.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0 && ns.is_finite(), "invalid duration: {ns} ns");
        Duration((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Fallible addition: `None` on u64 picosecond overflow.
    #[inline]
    pub const fn checked_add(self, rhs: Duration) -> Option<Duration> {
        match self.0.checked_add(rhs.0) {
            Some(ps) => Some(Duration(ps)),
            None => None,
        }
    }

    /// Fallible scaling: `None` on u64 picosecond overflow.
    #[inline]
    pub const fn checked_mul(self, rhs: u64) -> Option<Duration> {
        match self.0.checked_mul(rhs) {
            Some(ps) => Some(Duration(ps)),
            None => None,
        }
    }

    /// Saturating addition (clamps at the ~213-day u64 reach).
    #[inline]
    pub const fn saturating_add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }

    /// Saturating scaling (clamps at the ~213-day u64 reach). The
    /// exponential-backoff doublers use this so a runaway retry count
    /// clamps instead of aborting the run.
    #[inline]
    pub const fn saturating_mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// `self * num / den` with intermediate u128 precision — used for
    /// byte-count scaling without overflow.
    #[inline]
    pub fn mul_div(self, num: u64, den: u64) -> Duration {
        debug_assert!(den != 0);
        Duration((self.0 as u128 * num as u128 / den as u128) as u64)
    }
}

impl Time {
    /// Fallible advance: `None` on u64 picosecond overflow.
    #[inline]
    pub const fn checked_add(self, rhs: Duration) -> Option<Time> {
        match self.0.checked_add(rhs.0) {
            Some(ps) => Some(Time(ps)),
            None => None,
        }
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier > self` — a negative span is always a scheduling
    /// bug, and letting it wrap to ~2^64 ps in release silently corrupts
    /// any statistic it feeds.
    #[inline]
    pub fn since(self, earlier: Time) -> Duration {
        assert!(earlier <= self, "since() with a later instant");
        Duration(self.0 - earlier.0)
    }

    /// Saturating version of [`Time::since`].
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(
            self.0
                .checked_add(rhs.0)
                .expect("Time + Duration overflows u64 picoseconds (~213 days)"),
        )
    }
}
impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}
impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Duration) -> Time {
        Time(
            self.0
                .checked_sub(rhs.0)
                .expect("Time - Duration underflows t=0"),
        )
    }
}
impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}
impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        self.checked_add(rhs)
            .expect("Duration + Duration overflows u64 picoseconds (~213 days)")
    }
}
impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}
impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("Duration - Duration underflows (negative span)"),
        )
    }
}
impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}
impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        self.checked_mul(rhs)
            .expect("Duration * count overflows u64 picoseconds (~213 days)")
    }
}
impl Mul<Duration> for u64 {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: Duration) -> Duration {
        rhs * self
    }
}
impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}
impl Div<Duration> for Duration {
    type Output = u64;
    /// How many whole `rhs` spans fit in `self`.
    #[inline]
    fn div(self, rhs: Duration) -> u64 {
        self.0 / rhs.0
    }
}
impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Duration(self.0))
    }
}

impl fmt::Display for Duration {
    /// Human-readable with an auto-selected unit: `1.234 us`, `17 ns`, …
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= PS_PER_S {
            write!(f, "{:.3} s", ps as f64 / PS_PER_S as f64)
        } else if ps >= PS_PER_MS {
            write!(f, "{:.3} ms", ps as f64 / PS_PER_MS as f64)
        } else if ps >= PS_PER_US {
            write!(f, "{:.3} us", ps as f64 / PS_PER_US as f64)
        } else if ps >= PS_PER_NS {
            write!(f, "{:.3} ns", ps as f64 / PS_PER_NS as f64)
        } else {
            write!(f, "{ps} ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_roundtrip() {
        assert_eq!(Time::from_ns(1).as_ps(), 1_000);
        assert_eq!(Time::from_us(1).as_ns(), 1_000);
        assert_eq!(Time::from_ms(2).as_ps(), 2 * PS_PER_MS);
        assert_eq!(Duration::from_s(1).as_ps(), PS_PER_S);
        assert_eq!(Duration::from_ns(1500).as_ns(), 1500);
    }

    #[test]
    fn fractional_ns_rounds_to_ps() {
        assert_eq!(Duration::from_ns_f64(12.5).as_ps(), 12_500);
        assert_eq!(Duration::from_ns_f64(0.0004).as_ps(), 0); // sub-ps rounds down
        assert_eq!(Duration::from_ns_f64(0.0006).as_ps(), 1);
    }

    #[test]
    fn arithmetic_identities() {
        let t = Time::from_ns(100);
        let d = Duration::from_ns(30);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, Duration::from_ns(90));
        assert_eq!(3 * d, Duration::from_ns(90));
        assert_eq!(d / 2, Duration::from_ns(15));
        assert_eq!(Duration::from_ns(90) / d, 3);
    }

    #[test]
    fn mul_div_avoids_overflow() {
        // 12.5 ns/byte * 1 GiB would overflow a naive u64 multiply in ps.
        let per_byte = Duration::from_ns_f64(12.5);
        let total = per_byte.mul_div(1 << 30, 1);
        assert_eq!(total.as_ns(), 12_500 * (1 << 30) / 1000);
    }

    #[test]
    fn saturating_ops() {
        let a = Duration::from_ns(5);
        let b = Duration::from_ns(9);
        assert_eq!(a.saturating_sub(b), Duration::ZERO);
        assert_eq!(b.saturating_sub(a), Duration::from_ns(4));
        assert_eq!(
            Time::from_ns(5).saturating_since(Time::from_ns(9)),
            Duration::ZERO
        );
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", Duration::from_ns(17)), "17.000 ns");
        assert_eq!(format!("{}", Duration::from_us(1234)), "1.234 ms");
        assert_eq!(format!("{}", Duration::from_ps(3)), "3 ps");
        assert_eq!(format!("{}", Duration::from_s(2)), "2.000 s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = (1..=4).map(Duration::from_ns).sum();
        assert_eq!(total, Duration::from_ns(10));
    }
}
