//! Regression tests for the time/stat overflow audit.
//!
//! At million-endpoint event counts the simulation clock and the
//! per-campaign counters run far beyond anything the two-node testbed ever
//! produced, and the original `Time`/`Duration` operators compiled to
//! unchecked integer arithmetic: panicking under debug assertions, silently
//! *wrapping* in release — the profile every campaign actually runs in. A
//! wrapped instant reorders the pending-event set with no diagnostic at
//! all. These tests pin the promoted guards: every operator is now checked
//! in every profile, fallible and saturating variants exist for callers
//! with a real clamping need, and the calendar queue's push-into-the-past
//! guard holds in release.
//!
//! Run in release (`cargo test --release -p fm-des --test overflow_guards`)
//! these tests only mean something because the guards are `assert!`/
//! `checked_*`, not `debug_assert!`.

use fm_des::{CalendarQueue, Duration, Engine, Time};

/// The largest in-range duration: u64::MAX picoseconds (~213 days).
const MAX_D: Duration = Duration(u64::MAX);

#[test]
#[should_panic(expected = "overflows u64 picoseconds")]
fn time_plus_duration_overflow_panics() {
    let _ = Time(u64::MAX - 5) + Duration::from_ns(1);
}

#[test]
#[should_panic(expected = "overflows u64 picoseconds")]
fn time_add_assign_overflow_panics() {
    let mut t = Time(u64::MAX);
    t += Duration::from_ps(1);
}

#[test]
#[should_panic(expected = "underflows t=0")]
fn time_minus_duration_underflow_panics() {
    let _ = Time::from_ns(1) - Duration::from_us(1);
}

#[test]
#[should_panic(expected = "later instant")]
fn since_with_later_instant_panics_in_release_too() {
    let _ = Time::from_ns(5).since(Time::from_ns(9));
}

#[test]
#[should_panic(expected = "overflows u64 picoseconds")]
fn duration_sum_overflow_panics() {
    let _: Duration = [MAX_D, Duration::from_ps(1)].into_iter().sum();
}

#[test]
#[should_panic(expected = "overflows u64 picoseconds")]
fn duration_mul_overflow_panics() {
    // A per-frame cost times a u64 event count beyond reach must abort,
    // not wrap to a tiny bogus cost.
    let _ = Duration::from_ms(1) * u64::MAX;
}

#[test]
#[should_panic(expected = "negative span")]
fn duration_sub_underflow_panics() {
    let _ = Duration::from_ns(1) - Duration::from_ns(2);
}

#[test]
#[should_panic(expected = "overflows u64 picoseconds")]
fn from_unit_constructor_overflow_panics() {
    // u64::MAX microseconds is ~584 000 years; it must not wrap into a
    // small positive pick count.
    let _ = Duration::from_us(u64::MAX);
}

#[test]
fn checked_variants_report_instead_of_panicking() {
    assert_eq!(Time(u64::MAX).checked_add(Duration::from_ps(1)), None);
    assert_eq!(
        Time::from_ns(1).checked_add(Duration::from_ns(2)),
        Some(Time::from_ns(3))
    );
    assert_eq!(MAX_D.checked_add(Duration::from_ps(1)), None);
    assert_eq!(MAX_D.checked_mul(2), None);
    assert_eq!(
        Duration::from_ns(3).checked_mul(4),
        Some(Duration::from_ns(12))
    );
}

#[test]
fn saturating_variants_clamp_at_reach() {
    assert_eq!(MAX_D.saturating_add(Duration::from_s(1)), MAX_D);
    assert_eq!(MAX_D.saturating_mul(7), MAX_D);
    // An exponential-backoff doubler that overshoots clamps instead of
    // wrapping to a near-zero retransmit timer.
    let mut rto = Duration::from_us(500);
    for _ in 0..80 {
        rto = rto.saturating_mul(2);
    }
    assert_eq!(rto, MAX_D);
}

#[test]
fn campaign_scale_arithmetic_stays_in_range() {
    // A 1M-endpoint campaign: ~100M events, microsecond-scale spacing,
    // second-scale horizon — verify the reach argument holds with margin.
    let horizon = Time::ZERO + Duration::from_s(3600); // one simulated hour
    let per_event = Duration::from_ns(1_470);
    let events: u64 = 100_000_000;
    let total = per_event * events; // 147 s of busy time: fine
    assert!(total < Duration::from_s(150));
    assert!(horizon.checked_add(total).is_some());
}

#[test]
#[should_panic(expected = "push into the past")]
fn calendar_rejects_past_push_in_release() {
    let mut q = CalendarQueue::new(1_000, 8);
    q.push(Time::from_us(10), 1u32);
    assert_eq!(q.pop().map(|(_, v)| v), Some(1));
    // Now strictly before the last popped instant: must panic, not
    // silently corrupt bucket order.
    q.push(Time::from_us(9), 2u32);
}

#[test]
#[should_panic(expected = "past")]
fn engine_rejects_past_schedule_in_release() {
    let mut eng: Engine<u32> = Engine::new();
    eng.schedule_at(Time::from_us(10), 1);
    let _ = eng.pop();
    eng.schedule_at(Time::from_us(9), 2);
}

#[test]
fn stat_counters_are_u64_wide() {
    // The audit found the event/sample counters already u64 (Summary::n,
    // LatencyHistogram totals, Engine::dispatched); this pins the width so
    // a refactor to u32 — fine at testbed scale, wrapping at campaign
    // scale — fails loudly here.
    let mut s = fm_des::stats::Summary::new();
    s.record(1.0);
    let _: u64 = s.count();
    let h = fm_des::stats::LatencyHistogram::new();
    let _: u64 = h.total();
    let eng: Engine<u32> = Engine::new();
    let _: u64 = eng.dispatched();
}
