//! Property tests for the DES substrate itself — the calendar queue, the
//! RNG streams, and the statistics collectors the million-endpoint
//! campaigns lean on. Until now `crates/des` had only inline unit tests;
//! these suites pin the contracts the simulator assumes:
//!
//! * the calendar queue is observationally equivalent to a binary-heap
//!   pending-event set on *random* push/pop interleavings, including the
//!   FIFO tie-break for equal timestamps (dispatch order = insert order);
//! * RNG splitting is reproducible: the same parent state always derives
//!   the same child streams, children are independent of *when* they are
//!   consumed, and `jump()` produces the canonical 2^128-decorrelated
//!   stream;
//! * the streaming moment estimators agree with exact two-pass
//!   computations, and merging partial summaries equals sequential
//!   recording.

use fm_des::rng::Xoshiro256;
use fm_des::stats::{LatencyHistogram, Summary, TimeWeighted};
use fm_des::{CalendarQueue, Duration, Engine, Time};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reference pending-event set: a plain `BinaryHeap` ordered by
/// `(time, seq)` — the deterministic tie-break the engine documents.
#[derive(Default)]
struct HeapModel {
    heap: BinaryHeap<Reverse<(Time, u64, u64)>>,
    seq: u64,
}

impl HeapModel {
    fn push(&mut self, t: Time, v: u64) {
        self.heap.push(Reverse((t, self.seq, v)));
        self.seq += 1;
    }
    fn pop(&mut self) -> Option<(Time, u64)> {
        self.heap.pop().map(|Reverse((t, _, v))| (t, v))
    }
}

proptest! {
    /// Random interleavings of pushes (with random forward offsets,
    /// including ties) and pops drain identically from the calendar
    /// queue, the binary-heap model, and the production `Engine`.
    #[test]
    fn calendar_matches_heap_model(
        width in 1u64..5_000,
        buckets in 1usize..64,
        offsets in prop::collection::vec(0u64..20_000, 1..400),
        pop_bits in prop::collection::vec(any::<bool>(), 1..400),
    ) {
        let mut cal = CalendarQueue::new(width, buckets);
        let mut model = HeapModel::default();
        let mut eng: Engine<u64> = Engine::new();
        let mut horizon = 0u64; // pushes never go behind the last pop
        let mut drained_cal = Vec::new();
        let mut drained_model = Vec::new();
        let mut drained_eng = Vec::new();
        for (i, &off) in offsets.iter().enumerate() {
            // Bias ties: every third event lands exactly on the horizon.
            let t = Time::from_ps(horizon + if i % 3 == 0 { 0 } else { off });
            cal.push(t, i as u64);
            model.push(t, i as u64);
            eng.schedule_at(t, i as u64);
            if pop_bits[i % pop_bits.len()] {
                let got = cal.pop();
                let want = model.pop();
                let eng_got = eng.pop();
                prop_assert_eq!(got, want);
                prop_assert_eq!(got, eng_got);
                if let Some((pt, _)) = got {
                    horizon = horizon.max(pt.as_ps());
                }
            }
        }
        loop {
            match (cal.pop(), model.pop(), eng.pop()) {
                (None, None, None) => break,
                (a, b, c) => {
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(a, c);
                    drained_cal.push(a);
                    drained_model.push(b);
                    drained_eng.push(c);
                }
            }
        }
        prop_assert_eq!(drained_cal.len(), drained_model.len());
        prop_assert_eq!(drained_model.len(), drained_eng.len());
    }

    /// Equal-time events drain in insertion order from both structures —
    /// the FIFO tie-break is deterministic, not incidental.
    #[test]
    fn equal_time_events_stay_fifo(n in 1usize..200, t_ps in 0u64..1_000_000) {
        let t = Time::from_ps(t_ps);
        let mut cal = CalendarQueue::new(1_000, 8);
        let mut eng: Engine<usize> = Engine::new();
        for i in 0..n {
            cal.push(t, i);
            eng.schedule_at(t, i);
        }
        for i in 0..n {
            prop_assert_eq!(cal.pop(), Some((t, i)));
            prop_assert_eq!(eng.pop(), Some((t, i)));
        }
    }

    /// Splitting is a pure function of the parent state: two parents
    /// seeded identically derive bit-identical child streams, no matter
    /// how consumption of parent and children interleaves afterwards.
    #[test]
    fn rng_split_reproducible(seed in any::<u64>(), splits in 1usize..8) {
        let mut parent_a = Xoshiro256::seed_from_u64(seed);
        let mut parent_b = Xoshiro256::seed_from_u64(seed);

        // Parent A: split everything up front, then consume children.
        let mut children_a: Vec<Xoshiro256> =
            (0..splits).map(|_| parent_a.split()).collect();
        let streams_a: Vec<Vec<u64>> = children_a
            .iter_mut()
            .map(|c| (0..16).map(|_| c.next_u64()).collect())
            .collect();

        // Parent B: interleave splitting with child consumption.
        let mut streams_b = Vec::new();
        for _ in 0..splits {
            let mut c = parent_b.split();
            streams_b.push((0..16).map(|_| c.next_u64()).collect::<Vec<u64>>());
        }
        prop_assert_eq!(&streams_a, &streams_b);

        // After the splits both parents continue identically.
        for _ in 0..8 {
            prop_assert_eq!(parent_a.next_u64(), parent_b.next_u64());
        }

        // Sibling streams must not collide (16 draws each).
        for i in 0..streams_a.len() {
            for j in i + 1..streams_a.len() {
                prop_assert_ne!(&streams_a[i], &streams_a[j]);
            }
        }
    }

    /// `jump()` is deterministic and decorrelates: a jumped clone shares
    /// no prefix with its origin but equals any other jumped clone.
    #[test]
    fn rng_jump_reproducible(seed in any::<u64>()) {
        let base = Xoshiro256::seed_from_u64(seed);
        let mut j1 = base.clone();
        let mut j2 = base.clone();
        j1.jump();
        j2.jump();
        let mut plain = base.clone();
        let a: Vec<u64> = (0..32).map(|_| j1.next_u64()).collect();
        let b: Vec<u64> = (0..32).map(|_| j2.next_u64()).collect();
        let c: Vec<u64> = (0..32).map(|_| plain.next_u64()).collect();
        prop_assert_eq!(&a, &b);
        prop_assert_ne!(&a, &c);
    }

    /// Welford moments agree with the exact two-pass computation, and a
    /// merge of partial summaries equals sequential recording.
    #[test]
    fn summary_matches_exact_moments(
        raw in prop::collection::vec(0u64..1_000_000, 2..300),
        cut in any::<u64>(),
    ) {
        let xs: Vec<f64> = raw.iter().map(|&v| v as f64 / 7.0 - 1_000.0).collect();
        let mut s = Summary::new();
        for &x in &xs {
            s.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let scale = 1.0 + mean.abs() + var.abs();
        prop_assert!((s.mean() - mean).abs() / scale < 1e-9,
            "mean {} vs exact {}", s.mean(), mean);
        prop_assert!((s.variance() - var).abs() / scale < 1e-6,
            "variance {} vs exact {}", s.variance(), var);
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
        prop_assert_eq!(s.count(), xs.len() as u64);

        let k = (cut as usize) % xs.len();
        let (lo, hi) = xs.split_at(k);
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in lo { a.record(x); }
        for &x in hi { b.record(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), s.count());
        prop_assert!((a.mean() - s.mean()).abs() / scale < 1e-9);
        if xs.len() >= 2 && k >= 1 {
            prop_assert!((a.variance() - s.variance()).abs() / scale < 1e-6);
        }
    }

    /// Histogram quantiles stay within one power-of-two bucket of the
    /// exact order statistic.
    #[test]
    fn histogram_quantile_brackets_exact(
        ns in prop::collection::vec(1u64..10_000_000, 1..300),
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &ns {
            h.record(Duration::from_ns(v));
        }
        let mut sorted = ns.clone();
        sorted.sort_unstable();
        for &q in &[0.5, 0.9, 0.99] {
            let idx = (((sorted.len() as f64) * q).ceil() as usize)
                .clamp(1, sorted.len()) - 1;
            let exact = sorted[idx];
            let approx = h.quantile_ns(q);
            // The reported value is the upper edge of the containing
            // power-of-two bucket: >= exact, < 2x the next power of two.
            prop_assert!(approx >= exact, "q{}: {} < exact {}", q, approx, exact);
            prop_assert!(approx <= exact.next_power_of_two().max(2) * 2,
                "q{}: {} too far above exact {}", q, approx, exact);
        }
    }

    /// Time-weighted averaging equals the exact piecewise integral.
    #[test]
    fn time_weighted_matches_exact_integral(
        dts in prop::collection::vec(1u64..10_000, 1..100),
        vals in prop::collection::vec(0u64..1_000, 1..100),
    ) {
        let mut tw = TimeWeighted::new(Time::ZERO, 0.0);
        let mut now = 0u64;
        let mut integral = 0.0;
        let mut value = 0.0;
        for (i, &dt) in dts.iter().enumerate() {
            let v = vals[i % vals.len()];
            integral += value * dt as f64;
            now += dt;
            value = v as f64;
            tw.set(Time::from_ps(now), value);
        }
        // Let the last value run for one more step.
        let end = now + 500;
        integral += value * 500.0;
        let exact = integral / end as f64;
        let got = tw.average(Time::from_ps(end));
        prop_assert!((got - exact).abs() < 1e-9 * (1.0 + exact.abs()),
            "time-weighted {} vs exact {}", got, exact);
    }
}
