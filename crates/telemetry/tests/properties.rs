//! Property and concurrency tests for fm-telemetry.
//!
//! * The histogram's nearest-rank quantile is checked against an exact
//!   sorted-`Vec` model: the log2-linear buckets may only bias the answer
//!   *upward*, by at most one part in 32 (the sub-bucket resolution).
//!   This is the contract that let the bench bins and the testbed replace
//!   their sorted-vec percentile code with the histogram.
//! * Counter snapshots must be consistent under concurrent senders.
//! * The event ring must keep exactly the newest `capacity` events across
//!   wraparound while still counting every push.
//! * Clock-offset estimation must recover a known injected offset to
//!   within half the round-trip time — the NTP-midpoint error bound the
//!   merged-timeline renderer relies on.

use fm_telemetry::{
    chrome_trace, ClusterClock, Counter, EventKind, Histogram, RttSample, Telemetry, TraceEvent,
};
use proptest::prelude::*;

/// Exact nearest-rank quantile over the raw samples — the model the
/// histogram approximates (and the code it replaced in the bench bins).
/// Same rank convention as `Histogram::quantile`: 1-indexed `ceil(q*n)`.
fn exact_quantile(samples: &mut [u64], q: f64) -> u64 {
    samples.sort_unstable();
    let n = samples.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    samples[(rank - 1) as usize]
}

proptest! {
    #[test]
    fn histogram_quantile_tracks_exact_model(
        samples in proptest::collection::vec(0u64..=1_000_000_000_000, 1..120),
        qi in 0usize..5,
    ) {
        let q = [0.0, 0.5, 0.9, 0.99, 1.0][qi];
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut model = samples.clone();
        let exact = exact_quantile(&mut model, q);
        let approx = h.quantile(q);
        // Upward-biased: never report a latency better than reality...
        prop_assert!(approx >= exact, "quantile({q}) = {approx} < exact {exact}");
        // ...and never worse than one sub-bucket (1/32) above it.
        prop_assert!(
            approx - exact <= exact / 32 + 1,
            "quantile({q}) = {approx} overshoots exact {exact} by more than 1/32"
        );
        prop_assert!(approx <= h.max(), "quantile must never exceed the observed max");
    }

    #[test]
    fn histogram_count_and_bounds_match_model(
        samples in proptest::collection::vec(0u64..=1_000_000, 1..120),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
    }

    /// Synthesize one traced send→ack quadruple with a known receiver
    /// clock offset and arbitrary non-negative one-way delays: the NTP
    /// midpoint must land within RTT/2 of the injected offset, both on the
    /// raw sample and through the event-based [`ClusterClock`] pipeline.
    /// (The half-tick of integer truncation allows ceil rather than floor.)
    #[test]
    fn clock_offset_recovered_within_half_rtt(
        offset in -1_000_000i64..=1_000_000,
        send in 2_000_000u64..3_000_000,
        fwd in 0u64..=500,
        turnaround in 0u64..=100,
        back in 0u64..=500,
    ) {
        // Sender clock: send, then ack_in after fwd + turnaround + back.
        // Receiver clock: the same instants, shifted by `offset`.
        let wire_in = ((send + fwd) as i64 + offset) as u64;
        let ack_out = wire_in + turnaround;
        let ack_in = send + fwd + turnaround + back;
        let s = RttSample { send, wire_in, ack_out, ack_in };
        prop_assert!(s.plausible());
        prop_assert_eq!(s.rtt(), fwd + back, "turnaround must cancel out");
        let half_rtt_ceil = (s.rtt() as i64 + 1) / 2;
        let err = (s.offset() - offset).abs();
        prop_assert!(
            err <= half_rtt_ceil,
            "midpoint missed by {err} > rtt/2 = {half_rtt_ceil}"
        );

        // Same bound through the full pipeline: span events -> quadruple
        // extraction -> min-RTT filter -> BFS chaining.
        let trace = 1u32;
        let evs = [
            TraceEvent { tick: send, node: 0,
                kind: EventKind::SpanSend { trace, hop: 0, dst: 1 } },
            TraceEvent { tick: wire_in, node: 1,
                kind: EventKind::SpanWireIn { trace, hop: 0, src: 0 } },
            TraceEvent { tick: ack_out, node: 1,
                kind: EventKind::SpanAckOut { trace, hop: 0, dst: 0 } },
            TraceEvent { tick: ack_in, node: 0,
                kind: EventKind::SpanAckIn { trace, hop: 0, peer: 1 } },
        ];
        let clock = ClusterClock::from_events(&evs);
        prop_assert!(clock.is_aligned(1));
        prop_assert_eq!(clock.offset(0), 0, "reference pinned at zero");
        let chain_err = (clock.offset(1) - offset).abs();
        let chain_bound = (clock.chain_rtt(1) as i64 + 1) / 2;
        prop_assert!(
            chain_err <= chain_bound,
            "chained offset {} missed injected {offset} by more than rtt/2",
            clock.offset(1)
        );
    }
}

#[test]
fn counter_snapshot_consistent_under_concurrent_senders() {
    // Only meaningful when the handle actually counts.
    if !fm_telemetry::ENABLED {
        return;
    }
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 50_000;
    let t = Telemetry::new(0);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let t = t.clone();
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    t.incr(Counter::Sends);
                    t.add(Counter::Bounces, 2);
                }
            });
        }
        // Snapshots taken mid-run must never observe more bounces than
        // twice the sends that produced them... they may observe fewer
        // (the increments are two separate atomics), so only the final
        // totals are exact.
        for _ in 0..100 {
            let s = t.snapshot();
            let (sends, bounces) = (s.counter(Counter::Sends), s.counter(Counter::Bounces));
            assert!(sends <= THREADS * PER_THREAD && bounces <= THREADS * PER_THREAD * 2);
        }
    });
    assert_eq!(t.counter(Counter::Sends), THREADS * PER_THREAD);
    assert_eq!(t.counter(Counter::Bounces), THREADS * PER_THREAD * 2);
}

#[test]
fn event_ring_wraparound_keeps_newest() {
    if !fm_telemetry::ENABLED {
        return;
    }
    let t = Telemetry::with_trace_capacity(3, 8);
    for tick in 0..20u64 {
        t.trace(tick, EventKind::PeerDead { peer: tick as u16 });
    }
    assert_eq!(t.events_recorded(), 20);
    let kept = t.events();
    assert_eq!(kept.len(), 8, "ring holds exactly its capacity");
    let ticks: Vec<u64> = kept.iter().map(|e| e.tick).collect();
    assert_eq!(ticks, (12..20).collect::<Vec<_>>(), "oldest-first, newest kept");
    // The chrome export carries every retained event.
    let chrome = chrome_trace(&kept);
    assert_eq!(chrome.matches("\"ph\":").count(), 8);
}
