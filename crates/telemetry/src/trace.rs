//! Bounded per-endpoint trace-event ring with post-mortem export.
//!
//! Protocol-level events (send / bounce / retransmit / slot reuse / peer
//! death) are recorded as small `Copy` structs into a fixed-capacity ring
//! that overwrites its oldest entry when full — recording never allocates
//! and the memory bound is set at construction. After a run (or a wedge)
//! the ring dumps as JSON lines or as a chrome-trace file
//! (`chrome://tracing` / Perfetto instant events on a per-node track), the
//! time-axis view that makes ABA-style slot-reuse bugs visible.

/// One recorded protocol event. Everything is `Copy` — no heap data — so
/// pushing an event never allocates. (`Hash` lets the beacon collector
/// deduplicate overlapping last-N windows from successive beacons.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// The endpoint's virtual clock (extract ticks) when the event fired.
    pub tick: u64,
    /// The recording node.
    pub node: u16,
    pub kind: EventKind,
}

/// What happened. Peer/slot/seq fields are raw wire-level ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A fresh data frame was queued for the wire.
    Send { dst: u16, slot: u16, seq: u32 },
    /// One of our frames came back bounced (receiver full).
    Bounce { peer: u16, slot: u16 },
    /// A frame was retransmitted; `timer` distinguishes timeout recovery
    /// from bounce-driven resends.
    Retransmit { peer: u16, slot: u16, timer: bool },
    /// A send-window slot was reserved for the 2nd+ time (its generation
    /// tag advanced) — the reuse events an ABA diagnosis needs.
    SlotReuse { slot: u16, gen: u8 },
    /// A peer exhausted its retry budget and was declared dead.
    PeerDead { peer: u16 },
    // ---- causal-trace span events ------------------------------------
    //
    // The life of one *sampled* message, stamped with the cluster-wide
    // trace id + hop it carries in its frame header (see
    // `fm-core::frame::TraceCtx`). `fm_telemetry::merge` pairs these
    // across endpoints into one clock-aligned timeline; `clocksync` feeds
    // on the send → wire-in → ack-out → ack-in quadruple.
    /// A sampled data frame was queued for the wire (hop origin).
    SpanSend { trace: u32, hop: u16, dst: u16 },
    /// A sampled frame was accepted off the wire (recorded once per
    /// `(trace, hop)` on the receiver — duplicates are suppressed by the
    /// sequence window before this fires).
    SpanWireIn { trace: u32, hop: u16, src: u16 },
    /// A sampled frame arrived ahead of sequence and was parked in the
    /// reorder buffer (it was still accepted: `SpanWireIn` fired too).
    SpanPark { trace: u32, hop: u16, src: u16 },
    /// The handler for a sampled frame started running.
    SpanHandlerStart { trace: u32, hop: u16, src: u16 },
    /// The handler for a sampled frame returned.
    SpanHandlerEnd { trace: u32, hop: u16 },
    /// The receiver queued the ack covering a sampled frame.
    SpanAckOut { trace: u32, hop: u16, dst: u16 },
    /// The sender saw the first valid ack for a sampled frame's slot.
    SpanAckIn { trace: u32, hop: u16, peer: u16 },
    /// A sampled frame was retransmitted (bounce- or timer-driven).
    SpanRetransmit { trace: u32, hop: u16, peer: u16 },
    // ---- collective-operation spans ----------------------------------
    //
    // One span per MPI-style collective call plus one child span per
    // communication round, emitted by `fm-mpi`. `coll` is the collective
    // kind index (see [`coll_kind_name`]) and `epoch` the per-kind call
    // counter, so `(coll, epoch, node)` identifies one rank's view of one
    // collective — the merge pairs begins with ends into duration slices.
    /// A rank entered a collective call.
    CollBegin { coll: u8, epoch: u32 },
    /// A rank started one communication round of a collective (`peer` is
    /// the partner it exchanges with this round; `u16::MAX` when the
    /// round has no single partner, e.g. a tree fan-in over children).
    CollRoundBegin { coll: u8, epoch: u32, round: u16, peer: u16 },
    /// The round's sends/receives completed on this rank.
    CollRoundEnd { coll: u8, epoch: u32, round: u16 },
    /// The rank left the collective call.
    CollEnd { coll: u8, epoch: u32 },
}

/// Stable name of a collective kind index, matching `fm-mpi`'s epoch-tag
/// kind order (barrier = 0, bcast = 1, ...). Unknown indices render as
/// `"coll"` instead of panicking, so a newer producer cannot wedge an
/// older collector.
pub fn coll_kind_name(coll: u8) -> &'static str {
    match coll {
        0 => "barrier",
        1 => "bcast",
        2 => "reduce",
        3 => "allreduce",
        4 => "gather",
        5 => "scatter",
        6 => "alltoall",
        7 => "allgather",
        8 => "alltoallv",
        9 => "scan",
        _ => "coll",
    }
}

impl EventKind {
    /// Short stable name, used as the chrome-trace event name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Send { .. } => "send",
            EventKind::Bounce { .. } => "bounce",
            EventKind::Retransmit { .. } => "retransmit",
            EventKind::SlotReuse { .. } => "slot_reuse",
            EventKind::PeerDead { .. } => "peer_dead",
            EventKind::SpanSend { .. } => "span_send",
            EventKind::SpanWireIn { .. } => "span_wire_in",
            EventKind::SpanPark { .. } => "span_park",
            EventKind::SpanHandlerStart { .. } => "span_handler_start",
            EventKind::SpanHandlerEnd { .. } => "span_handler_end",
            EventKind::SpanAckOut { .. } => "span_ack_out",
            EventKind::SpanAckIn { .. } => "span_ack_in",
            EventKind::SpanRetransmit { .. } => "span_retransmit",
            EventKind::CollBegin { .. } => "coll_begin",
            EventKind::CollRoundBegin { .. } => "coll_round_begin",
            EventKind::CollRoundEnd { .. } => "coll_round_end",
            EventKind::CollEnd { .. } => "coll_end",
        }
    }

    /// `(trace id, hop)` when this is a causal-trace span event.
    pub fn span(self) -> Option<(u32, u16)> {
        match self {
            EventKind::SpanSend { trace, hop, .. }
            | EventKind::SpanWireIn { trace, hop, .. }
            | EventKind::SpanPark { trace, hop, .. }
            | EventKind::SpanHandlerStart { trace, hop, .. }
            | EventKind::SpanHandlerEnd { trace, hop }
            | EventKind::SpanAckOut { trace, hop, .. }
            | EventKind::SpanAckIn { trace, hop, .. }
            | EventKind::SpanRetransmit { trace, hop, .. } => Some((trace, hop)),
            _ => None,
        }
    }

    pub(crate) fn args_json(self) -> String {
        match self {
            EventKind::Send { dst, slot, seq } => {
                format!("{{\"dst\":{dst},\"slot\":{slot},\"seq\":{seq}}}")
            }
            EventKind::Bounce { peer, slot } => format!("{{\"peer\":{peer},\"slot\":{slot}}}"),
            EventKind::Retransmit { peer, slot, timer } => {
                format!("{{\"peer\":{peer},\"slot\":{slot},\"timer\":{timer}}}")
            }
            EventKind::SlotReuse { slot, gen } => format!("{{\"slot\":{slot},\"gen\":{gen}}}"),
            EventKind::PeerDead { peer } => format!("{{\"peer\":{peer}}}"),
            EventKind::SpanSend { trace, hop, dst } => {
                format!("{{\"trace\":{trace},\"hop\":{hop},\"dst\":{dst}}}")
            }
            EventKind::SpanWireIn { trace, hop, src }
            | EventKind::SpanPark { trace, hop, src }
            | EventKind::SpanHandlerStart { trace, hop, src } => {
                format!("{{\"trace\":{trace},\"hop\":{hop},\"src\":{src}}}")
            }
            EventKind::SpanHandlerEnd { trace, hop } => {
                format!("{{\"trace\":{trace},\"hop\":{hop}}}")
            }
            EventKind::SpanAckOut { trace, hop, dst } => {
                format!("{{\"trace\":{trace},\"hop\":{hop},\"dst\":{dst}}}")
            }
            EventKind::SpanAckIn { trace, hop, peer }
            | EventKind::SpanRetransmit { trace, hop, peer } => {
                format!("{{\"trace\":{trace},\"hop\":{hop},\"peer\":{peer}}}")
            }
            EventKind::CollBegin { coll, epoch } | EventKind::CollEnd { coll, epoch } => {
                format!(
                    "{{\"coll\":\"{}\",\"epoch\":{epoch}}}",
                    coll_kind_name(coll)
                )
            }
            EventKind::CollRoundBegin { coll, epoch, round, peer } => {
                format!(
                    "{{\"coll\":\"{}\",\"epoch\":{epoch},\"round\":{round},\"peer\":{peer}}}",
                    coll_kind_name(coll)
                )
            }
            EventKind::CollRoundEnd { coll, epoch, round } => {
                format!(
                    "{{\"coll\":\"{}\",\"epoch\":{epoch},\"round\":{round}}}",
                    coll_kind_name(coll)
                )
            }
        }
    }
}

impl TraceEvent {
    /// One JSON object (used both standalone and inside the chrome trace).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"tick\":{},\"node\":{},\"event\":\"{}\",\"args\":{}}}",
            self.tick,
            self.node,
            self.kind.name(),
            self.kind.args_json()
        )
    }

    /// One chrome-trace *instant* event: the tick maps to the microsecond
    /// timestamp axis, the node becomes the pid so each endpoint gets its
    /// own track.
    pub fn to_chrome(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{}}}",
            self.kind.name(),
            self.tick,
            self.node,
            self.kind.args_json()
        )
    }
}

/// Fixed-capacity overwrite-oldest ring of [`TraceEvent`]s.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Index the next push writes (== oldest entry once full).
    head: usize,
    /// Total events ever pushed (so overwritten history is countable).
    pushed: u64,
}

impl EventRing {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "an event ring needs at least one slot");
        EventRing {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            pushed: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently retained (<= capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed, including overwritten ones.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Record an event, overwriting the oldest once the ring is full. The
    /// backing storage is allocated up front (first `capacity` pushes fill
    /// the preallocated Vec), so steady-state pushes never allocate.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
        }
        self.pushed += 1;
    }

    /// Iterate retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (older, newer) = self.buf.split_at(self.head.min(self.buf.len()));
        newer.iter().chain(older.iter())
    }

    /// Retained events, oldest first.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.iter().copied().collect()
    }
}

/// Render a set of events as a chrome-trace JSON document (load it in
/// `chrome://tracing` or Perfetto).
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&ev.to_chrome());
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tick: u64) -> TraceEvent {
        TraceEvent {
            tick,
            node: 0,
            kind: EventKind::Send {
                dst: 1,
                slot: (tick % 64) as u16,
                seq: tick as u32,
            },
        }
    }

    #[test]
    fn ring_keeps_newest_on_wraparound() {
        let mut r = EventRing::new(4);
        for t in 0..10 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.pushed(), 10);
        let ticks: Vec<u64> = r.iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![6, 7, 8, 9], "oldest-first, newest retained");
    }

    #[test]
    fn partial_fill_iterates_in_order() {
        let mut r = EventRing::new(8);
        for t in 0..3 {
            r.push(ev(t));
        }
        let ticks: Vec<u64> = r.iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![0, 1, 2]);
    }

    #[test]
    fn json_and_chrome_forms_are_well_formed() {
        let e = TraceEvent {
            tick: 42,
            node: 3,
            kind: EventKind::Retransmit {
                peer: 1,
                slot: 9,
                timer: true,
            },
        };
        let j = e.to_json();
        assert!(j.contains("\"event\":\"retransmit\"") && j.contains("\"timer\":true"));
        let doc = chrome_trace(&[e, ev(1)]);
        assert!(doc.starts_with("{\"traceEvents\":[{"));
        assert!(doc.contains("\"ph\":\"i\"") && doc.contains("\"pid\":3"));
        assert!(doc.ends_with("}"));
        // Balanced braces — cheap well-formedness check without a parser.
        let opens = doc.matches('{').count();
        let closes = doc.matches('}').count();
        assert_eq!(opens, closes);
    }
}
