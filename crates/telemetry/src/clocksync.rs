//! Per-endpoint clock-offset estimation from traced message/ack pairs.
//!
//! Every endpoint stamps its trace events with its own virtual clock (one
//! tick per `extract` call), and nothing synchronizes those clocks: node A
//! may be on tick 9000 while node B is on tick 40. Merging rings into one
//! cluster timeline therefore needs per-node offsets, and the traced
//! message/ack quadruple gives them to us with the classic NTP midpoint
//! method. For one traced `(trace, hop)` crossing from A to B:
//!
//! ```text
//! t0 = A's clock at span_send        t1 = B's clock at span_wire_in
//! t3 = A's clock at span_ack_in      t2 = B's clock at span_ack_out
//!
//! offset(B relative to A) = ((t1 - t0) + (t2 - t3)) / 2
//! rtt                     = (t3 - t0) - (t2 - t1)
//! ```
//!
//! The estimate's error is bounded by `rtt / 2` (it is exact when the two
//! one-way delays are equal), so [`OffsetEstimator`] keeps the sample with
//! the smallest RTT — the standard "minimum filter" that rejects
//! queueing/retransmission noise. [`ClusterClock`] then chains pairwise
//! estimates through a breadth-first walk so every node gets an offset
//! relative to one reference (the lowest node id observed), even for node
//! pairs that never exchanged a traced message directly.

use crate::trace::{EventKind, TraceEvent};
use std::collections::HashMap;

/// The four clock readings of one traced send→ack round trip. `send` and
/// `ack_in` are on the sending node's clock; `wire_in` and `ack_out` on
/// the receiving node's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RttSample {
    pub send: u64,
    pub wire_in: u64,
    pub ack_out: u64,
    pub ack_in: u64,
}

impl RttSample {
    /// True when the per-clock orderings hold (each node's own readings
    /// are monotone). Cross-clock comparisons are meaningless before
    /// alignment, so only same-clock pairs are checked.
    pub fn plausible(&self) -> bool {
        self.ack_in >= self.send && self.ack_out >= self.wire_in
    }

    /// Receiver-minus-sender clock offset, NTP midpoint method. Exact when
    /// the request and reply delays are equal; off by at most
    /// [`Self::rtt`]`/2` otherwise.
    pub fn offset(&self) -> i64 {
        let fwd = self.wire_in as i128 - self.send as i128;
        let back = self.ack_out as i128 - self.ack_in as i128;
        ((fwd + back) / 2) as i64
    }

    /// Round-trip time with the receiver's turnaround (wire-in → ack-out)
    /// subtracted out: pure network time, on no clock in particular.
    pub fn rtt(&self) -> u64 {
        let total = self.ack_in.saturating_sub(self.send);
        let turnaround = self.ack_out.saturating_sub(self.wire_in);
        total.saturating_sub(turnaround)
    }
}

/// One directed pairwise estimate: the receiver's clock minus the
/// sender's, from the minimum-RTT sample seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockEstimate {
    /// Receiver clock minus sender clock, in ticks.
    pub offset: i64,
    /// RTT of the sample the estimate came from — the error bound is
    /// `rtt / 2`.
    pub rtt: u64,
    /// Plausible samples folded in (the estimate uses the best one).
    pub samples: usize,
}

/// Minimum-RTT filter over [`RttSample`]s for one directed node pair.
#[derive(Debug, Default, Clone)]
pub struct OffsetEstimator {
    best: Option<(u64, i64)>,
    samples: usize,
}

impl OffsetEstimator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one sample; implausible ones (clock readings out of order
    /// on their own node, e.g. from a ring that overwrote part of the
    /// quadruple) are discarded.
    pub fn add(&mut self, s: &RttSample) {
        if !s.plausible() {
            return;
        }
        self.samples += 1;
        let cand = (s.rtt(), s.offset());
        match self.best {
            Some((rtt, _)) if rtt <= cand.0 => {}
            _ => self.best = Some(cand),
        }
    }

    pub fn estimate(&self) -> Option<ClockEstimate> {
        self.best.map(|(rtt, offset)| ClockEstimate {
            offset,
            rtt,
            samples: self.samples,
        })
    }
}

/// Extract every completed send→ack quadruple from a set of trace events
/// (typically the concatenation of all endpoints' rings). Returns
/// `(sender, receiver, sample)` triples, one per `(trace, hop)` whose four
/// span events all survived in the rings.
pub fn extract_samples(events: &[TraceEvent]) -> Vec<(u16, u16, RttSample)> {
    #[derive(Default)]
    struct Partial {
        send: Option<(u16, u64)>,
        wire_in: Option<(u16, u64)>,
        ack_out: Option<u64>,
        ack_in: Option<u64>,
    }
    let mut partials: HashMap<(u32, u16), Partial> = HashMap::new();
    for ev in events {
        let Some((trace, hop)) = ev.kind.span() else {
            continue;
        };
        let p = partials.entry((trace, hop)).or_default();
        match ev.kind {
            // First occurrence wins: a retransmitted frame can produce a
            // second span_ack_in on a different tick only if the slot were
            // re-traced, which queue_data_frame never does.
            EventKind::SpanSend { .. } => {
                p.send.get_or_insert((ev.node, ev.tick));
            }
            EventKind::SpanWireIn { .. } => {
                p.wire_in.get_or_insert((ev.node, ev.tick));
            }
            EventKind::SpanAckOut { .. } => {
                p.ack_out.get_or_insert(ev.tick);
            }
            EventKind::SpanAckIn { .. } => {
                p.ack_in.get_or_insert(ev.tick);
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    for p in partials.into_values() {
        let (Some((snd_node, send)), Some((rcv_node, wire_in)), Some(ack_out), Some(ack_in)) =
            (p.send, p.wire_in, p.ack_out, p.ack_in)
        else {
            continue;
        };
        if snd_node == rcv_node {
            continue; // loopback never crosses clocks
        }
        out.push((
            snd_node,
            rcv_node,
            RttSample {
                send,
                wire_in,
                ack_out,
                ack_in,
            },
        ));
    }
    out
}

/// Cluster-wide clock alignment: an offset per node relative to one
/// reference node, chained from pairwise minimum-RTT estimates.
#[derive(Debug, Clone)]
pub struct ClusterClock {
    reference: u16,
    /// node → (offset vs reference, worst-link rtt along the chain).
    offsets: HashMap<u16, (i64, u64)>,
}

impl ClusterClock {
    /// Build from trace events. Nodes appear either by recording any event
    /// or by being reachable through traced traffic; nodes with no traced
    /// path to the reference keep their raw clock (offset 0) — visible via
    /// [`ClusterClock::is_aligned`].
    pub fn from_events(events: &[TraceEvent]) -> Self {
        // Directed pairwise estimators, keyed (sender, receiver).
        let mut pairs: HashMap<(u16, u16), OffsetEstimator> = HashMap::new();
        for (snd, rcv, sample) in extract_samples(events) {
            pairs.entry((snd, rcv)).or_default().add(&sample);
        }
        // Undirected adjacency: offset(b) - offset(a) = est, where est is
        // "b's clock minus a's clock".
        let mut adj: HashMap<u16, Vec<(u16, i64, u64)>> = HashMap::new();
        for ((a, b), est) in &pairs {
            let Some(e) = est.estimate() else { continue };
            adj.entry(*a).or_default().push((*b, e.offset, e.rtt));
            adj.entry(*b).or_default().push((*a, -e.offset, e.rtt));
        }
        let mut nodes: Vec<u16> = events.iter().map(|e| e.node).collect();
        nodes.extend(adj.keys().copied());
        nodes.sort_unstable();
        nodes.dedup();
        let reference = nodes.first().copied().unwrap_or(0);
        // BFS from the reference, accumulating offsets along the way. When
        // several links reach a node the first (fewest-hops) one wins —
        // good enough for timeline rendering; a least-squares pass would
        // go here if it ever is not.
        let mut offsets: HashMap<u16, (i64, u64)> = HashMap::new();
        offsets.insert(reference, (0, 0));
        let mut queue = std::collections::VecDeque::from([reference]);
        while let Some(a) = queue.pop_front() {
            let (base, base_rtt) = offsets[&a];
            let Some(links) = adj.get(&a) else { continue };
            for &(b, delta, rtt) in links {
                if offsets.contains_key(&b) {
                    continue;
                }
                offsets.insert(b, (base + delta, base_rtt.max(rtt)));
                queue.push_back(b);
            }
        }
        ClusterClock { reference, offsets }
    }

    /// The node every offset is relative to.
    pub fn reference(&self) -> u16 {
        self.reference
    }

    /// `node`'s clock offset relative to the reference (what to *subtract*
    /// from its ticks), or 0 when the node was never aligned.
    pub fn offset(&self, node: u16) -> i64 {
        self.offsets.get(&node).map(|&(o, _)| o).unwrap_or(0)
    }

    /// Whether `node` has a traced path to the reference.
    pub fn is_aligned(&self, node: u16) -> bool {
        self.offsets.contains_key(&node)
    }

    /// The worst single-link RTT on `node`'s chain to the reference — the
    /// per-link alignment error is bounded by half of it.
    pub fn chain_rtt(&self, node: u16) -> u64 {
        self.offsets.get(&node).map(|&(_, r)| r).unwrap_or(0)
    }

    /// Map one of `node`'s local ticks onto the reference timeline.
    pub fn align(&self, node: u16, tick: u64) -> i64 {
        tick as i64 - self.offset(node)
    }

    /// Nodes with offsets, sorted.
    pub fn nodes(&self) -> Vec<u16> {
        let mut v: Vec<u16> = self.offsets.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Tighten the offsets so every observed happens-before edge holds
    /// after alignment. Each edge `(src, dst, w)` encodes one traced
    /// message `src → dst` with `w = t_recv - t_send` in *raw* ticks;
    /// feasibility requires `offset(dst) <= offset(src) + w` (then the
    /// aligned receive is not earlier than the aligned send). Midpoint
    /// estimates can miss this by up to RTT/2 when the one-way delays are
    /// asymmetric, so a Bellman-Ford-style min-relaxation lowers offsets
    /// until every edge holds — message edges cannot form a negative
    /// cycle, because around any cycle the weights sum to the observed
    /// one-way delays, which are non-negative — and the solution is then
    /// re-normalized so the reference stays at 0 (constraints only pin
    /// offset *differences*). Edges touching unaligned nodes are ignored.
    pub fn constrain(&mut self, edges: &[(u16, u16, i64)]) {
        // Tightest (minimum) weight per directed pair.
        let mut tight: HashMap<(u16, u16), i64> = HashMap::new();
        for &(a, b, w) in edges {
            if a == b || !self.is_aligned(a) || !self.is_aligned(b) {
                continue;
            }
            tight
                .entry((a, b))
                .and_modify(|m| *m = (*m).min(w))
                .or_insert(w);
        }
        if tight.is_empty() {
            return;
        }
        // Relax to a fixpoint; the pass cap also bounds the (impossible
        // per the argument above, but cheap to guard) negative-cycle case.
        for _ in 0..=self.offsets.len() {
            let mut changed = false;
            for (&(a, b), &w) in &tight {
                let bound = self.offsets[&a].0 + w;
                let ob = self.offsets.get_mut(&b).expect("aligned node");
                if ob.0 > bound {
                    ob.0 = bound;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let base = self.offsets[&self.reference].0;
        if base != 0 {
            for v in self.offsets.values_mut() {
                v.0 -= base;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad(
        snd: u16,
        rcv: u16,
        trace: u32,
        hop: u16,
        t: [u64; 4], // send, wire_in, ack_out, ack_in
    ) -> [TraceEvent; 4] {
        [
            TraceEvent {
                tick: t[0],
                node: snd,
                kind: EventKind::SpanSend {
                    trace,
                    hop,
                    dst: rcv,
                },
            },
            TraceEvent {
                tick: t[1],
                node: rcv,
                kind: EventKind::SpanWireIn {
                    trace,
                    hop,
                    src: snd,
                },
            },
            TraceEvent {
                tick: t[2],
                node: rcv,
                kind: EventKind::SpanAckOut {
                    trace,
                    hop,
                    dst: snd,
                },
            },
            TraceEvent {
                tick: t[3],
                node: snd,
                kind: EventKind::SpanAckIn {
                    trace,
                    hop,
                    peer: rcv,
                },
            },
        ]
    }

    #[test]
    fn symmetric_delays_recover_offset_exactly() {
        // B's clock runs 100 ahead of A's; both one-way delays are 3.
        // A sends at 10 (=110 on B), B sees it at 113, acks at 114
        // (=14 on A), A sees the ack at 17.
        let evs = quad(0, 1, 7, 0, [10, 113, 114, 17]);
        let samples = extract_samples(&evs);
        assert_eq!(samples.len(), 1);
        let (snd, rcv, s) = samples[0];
        assert_eq!((snd, rcv), (0, 1));
        assert_eq!(s.offset(), 100);
        assert_eq!(s.rtt(), 6);
    }

    #[test]
    fn min_rtt_sample_wins() {
        let mut est = OffsetEstimator::new();
        // True offset 100. A noisy sample (retransmission inflated the
        // forward path by 40): offset skewed to 120, rtt 46.
        est.add(&RttSample {
            send: 10,
            wire_in: 153,
            ack_out: 154,
            ack_in: 57,
        });
        // A clean sample: offset 100, rtt 6.
        est.add(&RttSample {
            send: 200,
            wire_in: 303,
            ack_out: 304,
            ack_in: 207,
        });
        let e = est.estimate().unwrap();
        assert_eq!(e.offset, 100);
        assert_eq!(e.rtt, 6);
        assert_eq!(e.samples, 2);
    }

    #[test]
    fn implausible_samples_rejected() {
        let mut est = OffsetEstimator::new();
        est.add(&RttSample {
            send: 10,
            wire_in: 5,
            ack_out: 6,
            ack_in: 4, // ack before send on the sender's own clock
        });
        assert!(est.estimate().is_none());
    }

    #[test]
    fn cluster_clock_chains_through_intermediate() {
        // 0→1 offset +50, 1→2 offset +30; no direct 0↔2 traffic.
        let mut evs = Vec::new();
        evs.extend(quad(0, 1, 1, 0, [10, 62, 63, 15]));
        evs.extend(quad(1, 2, 2, 0, [100, 132, 133, 105]));
        let clock = ClusterClock::from_events(&evs);
        assert_eq!(clock.reference(), 0);
        assert_eq!(clock.offset(0), 0);
        assert_eq!(clock.offset(1), 50);
        assert_eq!(clock.offset(2), 80, "chained through node 1");
        assert!(clock.is_aligned(2));
        // Alignment maps both ends of a hop near each other.
        assert_eq!(clock.align(0, 10), 10);
        assert_eq!(clock.align(1, 62), 12);
    }

    #[test]
    fn constrain_restores_happens_before() {
        // True offset 0, but the estimation quadruple has asymmetric
        // delays (forward 6, return 0), so the midpoint estimates +3.
        let evs = quad(0, 1, 1, 0, [10, 16, 17, 17]);
        let mut clock = ClusterClock::from_events(&evs);
        assert_eq!(clock.offset(1), 3);
        // A later message with a 1-tick forward delay would then appear to
        // arrive 2 ticks before it was sent (20 → raw 21 → aligned 18).
        assert!(clock.align(1, 21) < clock.align(0, 20));
        clock.constrain(&[(0, 1, 21 - 20)]);
        assert_eq!(clock.offset(1), 1, "lowered just enough");
        assert!(clock.align(1, 21) >= clock.align(0, 20));
        assert_eq!(clock.offset(0), 0, "reference stays pinned");
    }

    #[test]
    fn unaligned_node_keeps_raw_clock() {
        let evs = quad(0, 1, 1, 0, [10, 62, 63, 15]);
        let clock = ClusterClock::from_events(&evs);
        assert!(!clock.is_aligned(9));
        assert_eq!(clock.offset(9), 0);
        assert_eq!(clock.align(9, 42), 42);
    }
}
