//! Zero-alloc log-bucketed histograms.
//!
//! A [`Histogram`] is a fixed array of atomic buckets laid out log2-linear:
//! values below [`SUB`] get exact unit buckets, and every octave above that
//! is split into [`SUB`] equal sub-buckets, so the relative quantization
//! error is bounded by `1/SUB` (= 3.125% at the default `SUB_BITS = 5`)
//! across the full `u64` range. Recording is a couple of relaxed atomic
//! adds — no allocation, no locks, safe from concurrent threads — and
//! quantile extraction walks the bucket array once.
//!
//! This replaces the sorted-`Vec` percentile code that used to be
//! duplicated across `bench_gate` and the testbed loss sweep: those paths
//! now record into a `Histogram` and read [`Histogram::quantile`]. The
//! scheme is the standard HDR-style layout (log2 octaves, linear
//! sub-buckets) used by production latency trackers.
//!
//! Quantiles are **nearest-rank** and biased upward: `quantile(q)` returns
//! the upper bound of the bucket holding the rank-`q` sample (clamped to
//! the largest recorded value), so a reported p99 is never smaller than
//! the true p99.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
pub const SUB_BITS: u32 = 5;

/// Sub-buckets per octave (also the width of the exact linear region).
pub const SUB: u64 = 1 << SUB_BITS;

/// Total buckets needed to cover all of `u64`.
pub const BUCKETS: usize = ((64 - SUB_BITS + 1) * SUB as u32) as usize;

/// Index of the bucket holding `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // >= SUB_BITS
        let mantissa = (v >> (exp - SUB_BITS)) & (SUB - 1);
        ((exp - SUB_BITS + 1) as usize) * SUB as usize + mantissa as usize
    }
}

/// Smallest value that lands in bucket `index`.
#[inline]
pub fn bucket_lower(index: usize) -> u64 {
    let group = index as u64 / SUB;
    let m = index as u64 % SUB;
    if group == 0 {
        m
    } else {
        (SUB + m) << (group - 1)
    }
}

/// Largest value that lands in bucket `index`.
#[inline]
pub fn bucket_upper(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower(index + 1) - 1
    }
}

/// Point-in-time summary of one histogram (see [`Histogram::summary`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSummary {
    pub count: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

/// A concurrent log2-linear histogram of `u64` samples.
///
/// ~15 KB of atomics; construct once and share by reference (or behind the
/// `fm-telemetry` handle). All methods take `&self`.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("summary", &self.summary())
            .finish()
    }
}

impl Histogram {
    pub fn new() -> Self {
        // Initialize via a Vec to keep the large array off the stack.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets = v
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("sized to BUCKETS above"));
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Lock-free; relaxed ordering (telemetry reads are
    /// statistical, not synchronizing).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Nearest-rank quantile, `0.0 <= q <= 1.0`. Returns the upper bound of
    /// the bucket containing the rank-`q` sample, clamped to the recorded
    /// max — so the result is `>=` the exact value and overshoots by at
    /// most a factor of `1/SUB`. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i).min(self.max());
            }
        }
        // Concurrent recording can leave count ahead of the bucket sums;
        // the max is the safe answer.
        self.max()
    }

    /// Snapshot count/min/max/p50/p90/p99 in one call.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }

    /// Per-octave sample counts, skipping empty octaves: `(group, count)`
    /// where `group` is the log2-linear bucket group (`bucket_index / SUB`)
    /// and `count` sums that group's sub-buckets. This is the compact form
    /// the telemetry beacons ship — at most `64 - SUB_BITS + 1` entries
    /// regardless of sample count, with the same `1/SUB`-bounded loss of
    /// resolution collapsed to one-octave granularity.
    pub fn octave_counts(&self) -> Vec<(u8, u64)> {
        let mut out = Vec::new();
        for group in 0..(BUCKETS / SUB as usize) {
            let mut n = 0u64;
            for sub in 0..SUB as usize {
                n += self.buckets[group * SUB as usize + sub].load(Ordering::Relaxed);
            }
            if n > 0 {
                out.push((group as u8, n));
            }
        }
        out
    }

    /// Reset every bucket and counter to zero. Not atomic with respect to
    /// concurrent recorders; intended for between-phases reuse in harnesses.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        // Powers of two, their neighbors, and a spread of odd values.
        let mut vals = vec![0u64, 1, SUB - 1, SUB, SUB + 1, u64::MAX];
        for shift in 0..64 {
            let p = 1u64 << shift;
            vals.extend([p.saturating_sub(1), p, p.saturating_add(1), p | (p >> 1)]);
        }
        for v in vals {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v, "lower({i}) > {v}");
            assert!(v <= bucket_upper(i), "upper({i}) < {v}");
            assert_eq!(bucket_index(bucket_lower(i)), i, "lower bound re-indexes");
        }
    }

    #[test]
    fn buckets_are_contiguous() {
        for i in 0..BUCKETS - 1 {
            assert_eq!(
                bucket_upper(i) + 1,
                bucket_lower(i + 1),
                "gap after bucket {i}"
            );
        }
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_bounded_relative_error() {
        let h = Histogram::new();
        let mut exact: Vec<u64> = Vec::new();
        // Deterministic spread over five decades.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 1_000_000;
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let n = exact.len() as f64;
            let rank = ((q * n).ceil() as usize).clamp(1, exact.len());
            let e = exact[rank - 1];
            let r = h.quantile(q);
            assert!(r >= e, "q={q}: hist {r} < exact {e}");
            assert!(
                r - e <= e / SUB + 1,
                "q={q}: hist {r} overshoots exact {e} past 1/{SUB}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.summary(), HistSummary::default());
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn summary_tracks_min_max_mean() {
        let h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!((s.count, s.min, s.max), (3, 10, 30));
        assert_eq!(h.mean(), 20.0);
        h.reset();
        assert_eq!(h.summary(), HistSummary::default());
    }

    #[test]
    fn octave_counts_partition_the_samples() {
        let h = Histogram::new();
        for v in [0u64, 1, 31, 32, 63, 64, 1000, 1_000_000] {
            h.record(v);
        }
        let octs = h.octave_counts();
        let total: u64 = octs.iter().map(|(_, n)| n).sum();
        assert_eq!(total, h.count(), "octaves partition all samples");
        // Group 0 is the exact linear region [0, SUB).
        assert_eq!(octs[0], (0, 3), "0, 1, 31 land in the linear region");
        for w in octs.windows(2) {
            assert!(w[0].0 < w[1].0, "groups ascend");
        }
        // Each reported group really covers its values.
        for (g, _) in &octs {
            assert!((*g as usize) < BUCKETS / SUB as usize);
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..25_000u64 {
                        h.record(t * 1_000 + (i % 97));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 100_000);
    }
}
