//! Cluster-wide metrics aggregation and export.
//!
//! A [`MetricsAggregator`] holds a clone of every endpoint's [`Telemetry`]
//! handle and, on each [`MetricsAggregator::tick`], scrapes their counter
//! snapshots, computes per-counter *deltas* since the previous tick and
//! appends them to a bounded time series (a ring of deltas — constant
//! memory no matter how long the cluster runs). The current state exports
//! as Prometheus text exposition ([`MetricsAggregator::prometheus`]) or as
//! CSV rows through the shared `fm-metrics` csv module
//! ([`MetricsAggregator::csv`]).
//!
//! The aggregator doubles as a **flight recorder**: when a tick observes a
//! `DeadPeers` counter advance on any endpoint, it merges the last-N trace
//! events of *all* endpoints into one clock-aligned timeline (see
//! [`crate::merge`]) and retains the chrome-trace JSON as a post-mortem
//! artifact — the cluster-wide picture of what led up to the death, taken
//! at the moment it was declared.

use crate::beacon::ShardSample;
use crate::collector::{shard_lane_fragments, shard_series_prometheus};
use crate::merge::{self, MergeReport};
use crate::{Counter, Metric, Telemetry, TelemetrySnapshot};
use std::collections::{BTreeMap, VecDeque};

/// Per-endpoint counter deltas observed by one tick.
#[derive(Debug, Clone, Copy)]
pub struct NodeDelta {
    pub node: u16,
    deltas: [u64; Counter::COUNT],
}

impl NodeDelta {
    pub fn delta(&self, c: Counter) -> u64 {
        self.deltas[c as usize]
    }
}

/// One scrape: the tick's timestamp plus every endpoint's deltas.
#[derive(Debug, Clone)]
pub struct TickSample {
    /// Caller-supplied scrape time (any monotonic unit).
    pub at: u64,
    pub nodes: Vec<NodeDelta>,
}

impl TickSample {
    /// Sum of one counter's delta across all endpoints.
    pub fn total(&self, c: Counter) -> u64 {
        self.nodes.iter().map(|n| n.delta(c)).sum()
    }
}

/// A post-mortem artifact captured when a tick saw a peer declared dead.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// The tick timestamp that triggered the capture.
    pub at: u64,
    /// How many `DeadPeers` advances this tick observed.
    pub dead_peer_delta: u64,
    /// Merged events retained (after the last-N cut).
    pub events: usize,
    /// Cross-endpoint flow pairs inside the retained window.
    pub flow_pairs: usize,
    /// The merged timeline as a chrome-trace JSON document.
    pub json: String,
}

/// Scrapes registered endpoints into a bounded delta time series with
/// Prometheus / CSV export and a dead-peer flight recorder.
pub struct MetricsAggregator {
    handles: Vec<Telemetry>,
    last: Vec<TelemetrySnapshot>,
    history: VecDeque<TickSample>,
    history_cap: usize,
    flight_last_n: usize,
    flights: Vec<FlightDump>,
    /// Named transport gauges per node (e.g. `UdpStats` fields,
    /// `peer_resets`), exported alongside the counters.
    gauges: BTreeMap<u16, Vec<(String, u64)>>,
    /// Per-switch-shard sample history, `(at, sample)`, bounded like the
    /// tick history. The latest sample drives the Prometheus shard lanes;
    /// the whole window drives the chrome-trace counter tracks.
    shards: BTreeMap<u16, Vec<(u64, ShardSample)>>,
}

/// Default bound on retained tick samples.
pub const DEFAULT_HISTORY: usize = 256;
/// Default last-N merged events a flight dump retains.
pub const DEFAULT_FLIGHT_EVENTS: usize = 512;

impl MetricsAggregator {
    pub fn new() -> Self {
        Self::with_bounds(DEFAULT_HISTORY, DEFAULT_FLIGHT_EVENTS)
    }

    /// `history` bounds the delta series; `flight_last_n` bounds how many
    /// merged events a dead-peer dump retains.
    pub fn with_bounds(history: usize, flight_last_n: usize) -> Self {
        MetricsAggregator {
            handles: Vec::new(),
            last: Vec::new(),
            history: VecDeque::new(),
            history_cap: history.max(1),
            flight_last_n: flight_last_n.max(1),
            flights: Vec::new(),
            gauges: BTreeMap::new(),
            shards: BTreeMap::new(),
        }
    }

    /// Attach (replace) a node's named transport gauges — values the
    /// counter enum does not cover, such as the UDP link's `UdpStats`
    /// fields or the endpoint's `peer_resets`. They export as
    /// `fm_<name>{node=...}` gauges and extra CSV columns.
    pub fn set_gauges(&mut self, node: u16, gauges: Vec<(String, u64)>) {
        self.gauges.insert(node, gauges);
    }

    /// Record one switch-shard sample at scrape time `at`. The shard's
    /// occupancy histogram, DRR deficits and per-port forwarding totals
    /// become first-class series in [`MetricsAggregator::prometheus`] and
    /// counter lanes in [`MetricsAggregator::shard_lane_events`].
    pub fn record_shard(&mut self, at: u64, sample: ShardSample) {
        let hist = self.shards.entry(sample.switch_id).or_default();
        if hist.len() >= self.history_cap {
            hist.remove(0);
        }
        hist.push((at, sample));
    }

    /// Chrome-trace counter-lane fragments for every recorded shard, ready
    /// to splice into a merged timeline via
    /// [`MergeReport::chrome_trace_with`].
    pub fn shard_lane_events(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (&switch, hist) in &self.shards {
            out.extend(shard_lane_fragments(switch, hist));
        }
        out
    }

    /// Register an endpoint's telemetry handle (a cheap `Arc` clone). The
    /// baseline for its first delta is its state *now*.
    pub fn register(&mut self, handle: Telemetry) {
        self.last.push(handle.snapshot());
        self.handles.push(handle);
    }

    pub fn endpoints(&self) -> usize {
        self.handles.len()
    }

    /// Scrape every endpoint: record counter deltas since the previous
    /// tick into the bounded series, and capture a flight dump if any
    /// endpoint declared a peer dead since last time.
    pub fn tick(&mut self, at: u64) -> TickSample {
        let mut nodes = Vec::with_capacity(self.handles.len());
        let mut dead_delta = 0u64;
        for (i, h) in self.handles.iter().enumerate() {
            let snap = h.snapshot();
            let prev = &self.last[i];
            let deltas = std::array::from_fn(|j| {
                let c = Counter::ALL[j];
                snap.counter(c).saturating_sub(prev.counter(c))
            });
            let nd = NodeDelta {
                node: snap.node,
                deltas,
            };
            dead_delta += nd.delta(Counter::DeadPeers);
            nodes.push(nd);
            self.last[i] = snap;
        }
        let sample = TickSample { at, nodes };
        if self.history.len() == self.history_cap {
            self.history.pop_front();
        }
        self.history.push_back(sample.clone());
        if dead_delta > 0 {
            self.capture_flight(at, dead_delta);
        }
        sample
    }

    fn capture_flight(&mut self, at: u64, dead_peer_delta: u64) {
        let per_node: Vec<_> = self.handles.iter().map(|h| h.events()).collect();
        let mut report = merge::merge(&per_node);
        if report.events.len() > self.flight_last_n {
            let cut = report.events.len() - self.flight_last_n;
            report.events.drain(..cut);
        }
        self.flights.push(FlightDump {
            at,
            dead_peer_delta,
            events: report.events.len(),
            flow_pairs: report.flow_pairs(),
            json: report.chrome_trace(),
        });
    }

    /// Retained tick samples, oldest first.
    pub fn history(&self) -> impl Iterator<Item = &TickSample> {
        self.history.iter()
    }

    /// Flight dumps captured so far (one per dead-peer-observing tick).
    pub fn flights(&self) -> &[FlightDump] {
        &self.flights
    }

    /// Merge every registered endpoint's current trace ring into one
    /// aligned timeline (the on-demand, not-post-mortem view).
    pub fn merged(&self) -> MergeReport {
        let per_node: Vec<_> = self.handles.iter().map(|h| h.events()).collect();
        merge::merge(&per_node)
    }

    /// Prometheus text exposition of every endpoint's current state:
    /// `fm_<counter>_total{node="N"}` counters plus per-metric quantile
    /// gauges and sample counts.
    pub fn prometheus(&self) -> String {
        let snaps: Vec<_> = self.handles.iter().map(|h| h.snapshot()).collect();
        let mut out = String::new();
        for c in Counter::ALL {
            out.push_str(&format!(
                "# HELP fm_{name}_total Total {name} across the run.\n# TYPE fm_{name}_total counter\n",
                name = c.name()
            ));
            for s in &snaps {
                out.push_str(&format!(
                    "fm_{}_total{{node=\"{}\"}} {}\n",
                    c.name(),
                    s.node,
                    s.counter(c)
                ));
            }
        }
        for m in Metric::ALL {
            out.push_str(&format!(
                "# HELP fm_{name} {name} distribution summary.\n# TYPE fm_{name} summary\n",
                name = m.name()
            ));
            for s in &snaps {
                let h = s.metric(m);
                for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                    out.push_str(&format!(
                        "fm_{}{{node=\"{}\",quantile=\"{}\"}} {}\n",
                        m.name(),
                        s.node,
                        q,
                        v
                    ));
                }
                out.push_str(&format!(
                    "fm_{}_count{{node=\"{}\"}} {}\n",
                    m.name(),
                    s.node,
                    h.count
                ));
            }
        }
        // Named transport gauges (UdpStats fields, peer_resets, ...).
        for name in self.gauge_columns() {
            out.push_str(&format!("# TYPE fm_{name} gauge\n"));
            for (node, gauges) in &self.gauges {
                if let Some((_, v)) = gauges.iter().find(|(n, _)| *n == name) {
                    out.push_str(&format!("fm_{name}{{node=\"{node}\"}} {v}\n"));
                }
            }
        }
        // Switch-shard lanes: latest sample per shard.
        if !self.shards.is_empty() {
            out.push_str(&shard_series_prometheus(
                self.shards
                    .iter()
                    .filter_map(|(&sw, hist)| hist.last().map(|(_, s)| (sw, s))),
            ));
        }
        out
    }

    /// Sorted union of every registered gauge name.
    fn gauge_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = self
            .gauges
            .values()
            .flat_map(|g| g.iter().map(|(n, _)| n.clone()))
            .collect();
        cols.sort();
        cols.dedup();
        cols
    }

    /// Current per-endpoint state as CSV (one row per endpoint), rendered
    /// by the shared `fm-metrics` csv module.
    pub fn csv(&self) -> String {
        let mut header: Vec<&str> = vec!["node"];
        for c in Counter::ALL {
            header.push(c.name());
        }
        let metric_cols: Vec<String> = Metric::ALL
            .iter()
            .flat_map(|m| {
                ["count", "p50", "p99"]
                    .iter()
                    .map(move |s| format!("{}_{}", m.name(), s))
            })
            .collect();
        for col in &metric_cols {
            header.push(col);
        }
        // Gauge columns appended last so existing consumers' column
        // positions never move.
        let gauge_cols = self.gauge_columns();
        for col in &gauge_cols {
            header.push(col);
        }
        let rows: Vec<Vec<String>> = self
            .handles
            .iter()
            .map(|h| {
                let s = h.snapshot();
                let mut row = vec![s.node.to_string()];
                for c in Counter::ALL {
                    row.push(s.counter(c).to_string());
                }
                for m in Metric::ALL {
                    let hs = s.metric(m);
                    row.push(hs.count.to_string());
                    row.push(hs.p50.to_string());
                    row.push(hs.p99.to_string());
                }
                let gauges = self.gauges.get(&s.node);
                for col in &gauge_cols {
                    let v = gauges
                        .and_then(|g| g.iter().find(|(n, _)| n == col))
                        .map_or(0, |(_, v)| *v);
                    row.push(v.to_string());
                }
                row
            })
            .collect();
        fm_metrics::csv::to_string(&header, &rows)
    }
}

impl Default for MetricsAggregator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, ENABLED};

    #[test]
    fn tick_reports_deltas_not_totals() {
        let t = Telemetry::new(0);
        let mut agg = MetricsAggregator::new();
        t.add(Counter::Sends, 5); // before register → baseline, not a delta
        agg.register(t.clone());
        t.add(Counter::Sends, 3);
        let s1 = agg.tick(1);
        t.add(Counter::Sends, 2);
        let s2 = agg.tick(2);
        if ENABLED {
            assert_eq!(s1.total(Counter::Sends), 3);
            assert_eq!(s2.total(Counter::Sends), 2);
        } else {
            assert_eq!(s1.total(Counter::Sends), 0);
        }
        assert_eq!(agg.history().count(), 2);
    }

    #[test]
    fn history_is_bounded() {
        let t = Telemetry::new(0);
        let mut agg = MetricsAggregator::with_bounds(4, 16);
        agg.register(t);
        for i in 0..10 {
            agg.tick(i);
        }
        assert_eq!(agg.history().count(), 4);
        assert_eq!(agg.history().next().unwrap().at, 6, "oldest evicted");
    }

    #[test]
    fn dead_peer_triggers_flight_dump() {
        let a = Telemetry::new(0);
        let b = Telemetry::new(1);
        let mut agg = MetricsAggregator::with_bounds(8, 4);
        agg.register(a.clone());
        agg.register(b.clone());
        for i in 0..10 {
            a.trace(i, EventKind::SpanSend { trace: 9, hop: 0, dst: 1 });
        }
        b.trace(3, EventKind::SpanWireIn { trace: 9, hop: 0, src: 0 });
        agg.tick(1);
        assert!(agg.flights().is_empty(), "no dead peer yet");
        a.incr(Counter::DeadPeers);
        agg.tick(2);
        if ENABLED {
            assert_eq!(agg.flights().len(), 1);
            let f = &agg.flights()[0];
            assert_eq!(f.at, 2);
            assert_eq!(f.dead_peer_delta, 1);
            assert_eq!(f.events, 4, "last-N cut applied");
            assert!(f.json.starts_with("{\"traceEvents\":["));
        } else {
            assert!(agg.flights().is_empty());
        }
        agg.tick(3);
        assert_eq!(
            agg.flights().len(),
            usize::from(ENABLED),
            "no new dump without a new death"
        );
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let t = Telemetry::new(2);
        t.add(Counter::Sends, 7);
        t.record(Metric::AckRttTicks, 4);
        let mut agg = MetricsAggregator::new();
        agg.register(t);
        let text = agg.prometheus();
        assert!(text.contains("# TYPE fm_sends_total counter"));
        if ENABLED {
            assert!(text.contains("fm_sends_total{node=\"2\"} 7"));
            assert!(text.contains("fm_ack_rtt_ticks{node=\"2\",quantile=\"0.5\"}"));
            assert!(text.contains("fm_ack_rtt_ticks_count{node=\"2\"} 1"));
        }
        for c in Counter::ALL {
            assert!(text.contains(&format!("fm_{}_total", c.name())));
        }
    }

    fn sample(switch: u16, forwarded: u64) -> ShardSample {
        ShardSample {
            switch_id: switch,
            forwarded,
            stalled: 1,
            dropped: 0,
            timed_out: 0,
            batch: 8,
            occupancy: crate::hist::HistSummary {
                count: 10,
                min: 1,
                max: 12,
                p50: 3,
                p90: 9,
                p99: 12,
            },
            occupancy_octaves: vec![(0, 10)],
            deficits: vec![0, 96],
            input_forwarded: vec![forwarded / 2, forwarded - forwarded / 2],
            output_forwarded: vec![forwarded],
        }
    }

    #[test]
    fn gauges_export_to_prometheus_and_csv() {
        let t = Telemetry::new(0);
        let mut agg = MetricsAggregator::new();
        agg.register(t);
        agg.register(Telemetry::new(1));
        agg.set_gauges(0, vec![("udp_datagrams_out".into(), 42), ("peer_resets".into(), 2)]);
        let prom = agg.prometheus();
        assert!(prom.contains("# TYPE fm_udp_datagrams_out gauge"));
        assert!(prom.contains("fm_udp_datagrams_out{node=\"0\"} 42"));
        assert!(prom.contains("fm_peer_resets{node=\"0\"} 2"));
        let csv = agg.csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("node,sends,"), "existing columns keep their slots");
        assert!(lines[0].ends_with(",peer_resets,udp_datagrams_out"));
        assert!(lines[1].ends_with(",2,42"));
        assert!(lines[2].ends_with(",0,0"), "unset gauges default to 0");
    }

    #[test]
    fn shard_samples_become_series_and_lanes() {
        let mut agg = MetricsAggregator::new();
        agg.record_shard(100, sample(3, 50));
        agg.record_shard(200, sample(3, 150));
        let prom = agg.prometheus();
        assert!(prom.contains("fm_shard_queue_depth{switch=\"3\",quantile=\"0.99\"} 12"));
        assert!(prom.contains("fm_shard_deficit{switch=\"3\",input=\"1\"} 96"));
        assert!(prom.contains("fm_shard_input_forwarded_total{switch=\"3\",input=\"0\"} 75"));
        assert!(prom.contains("fm_shard_forwarded_total{switch=\"3\"} 150"));
        let lanes = agg.shard_lane_events();
        assert!(lanes.iter().any(|l| l.contains("\"name\":\"switch 3\"")));
        assert!(lanes.iter().any(|l| l.contains("\"args\":{\"frames\":100}")), "rate delta");
        // Lanes splice into a merged timeline without breaking the JSON.
        let doc = agg.merged().chrome_trace_with(&lanes);
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn shard_history_is_bounded() {
        let mut agg = MetricsAggregator::with_bounds(4, 16);
        for i in 0..10 {
            agg.record_shard(i, sample(0, i * 10));
        }
        assert_eq!(agg.shards[&0].len(), 4);
        assert_eq!(agg.shards[&0][0].0, 6, "oldest evicted");
    }

    #[test]
    fn csv_has_header_and_one_row_per_endpoint() {
        let mut agg = MetricsAggregator::new();
        agg.register(Telemetry::new(0));
        agg.register(Telemetry::new(1));
        let csv = agg.csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 endpoints");
        assert!(lines[0].starts_with("node,sends,"));
        assert!(lines[0].contains("ack_rtt_ticks_p50"));
        assert!(lines[1].starts_with("0,"));
        assert!(lines[2].starts_with("1,"));
    }
}
