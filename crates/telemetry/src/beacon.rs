//! Out-of-band telemetry beacons: compact CRC-framed snapshots over UDP.
//!
//! Every endpoint (and every switch shard) can periodically serialize its
//! telemetry — cumulative counters, per-metric histogram octave summaries,
//! the last-N trace events, and transport gauges like `UdpStats` — into a
//! single datagram on a *side* UDP socket, addressed at a
//! [`crate::collector::Collector`]. This is how the multi-process world
//! (endpoints in separate OS processes, wired over real UDP) gets
//! cluster-wide observability without shared memory: the beacon channel is
//! fully out-of-band, so a wedged data path still reports, and a lossy
//! beacon path only widens a delta window (counters ship cumulative; the
//! collector subtracts).
//!
//! ## Wire format (version 1, all integers little-endian)
//!
//! ```text
//! offset  size  field
//!      0     1  magic 0xB3 (distinct from every fm-core datagram: 0xE7
//!               control, 0xF0|v framed data, 0..=2 legacy kinds)
//!      1     1  version (1)
//!      2     1  source kind: 0 = endpoint, 1 = switch shard
//!      3     1  reserved (0)
//!      4     2  source id (node id or switch id)
//!      6     4  beacon sequence number (per-beaconer, starts at 0)
//!     10     8  sender wall clock, micros since the Unix epoch
//!     18     …  body (endpoint or shard, see below)
//!  len-4     4  CRC-32 (IEEE) over bytes [0, len-4)
//! ```
//!
//! Endpoint body: counter count + cumulative `u64`s (in [`Counter::ALL`]
//! order), per-metric `HistSummary` + non-empty octave `(group, count)`
//! pairs, named gauges (`len`-prefixed ASCII name + `u64`), then the
//! last-N trace events (tag byte + fixed per-variant payload). Shard body:
//! the [`ShardSample`] fields in declaration order. Every variable section
//! is count-prefixed, so a decoder never reads past what the sender wrote;
//! the trailing CRC rejects truncation and corruption outright.

use crate::hist::HistSummary;
use crate::trace::{EventKind, TraceEvent};
use crate::{Counter, Metric, Telemetry};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// First byte of every beacon datagram.
pub const BEACON_MAGIC: u8 = 0xB3;

/// Current beacon wire version.
pub const BEACON_VERSION: u8 = 1;

/// Hard bound on an encoded beacon; the encoder truncates the trace-event
/// section (newest events kept) rather than exceed it, so a beacon always
/// fits one comfortable datagram.
pub const MAX_BEACON_BYTES: usize = 8192;

/// Default cap on trace events shipped per beacon.
pub const DEFAULT_BEACON_EVENTS: usize = 96;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `data` — the same
/// polynomial the FM frame codec uses, reimplemented here because the
/// dependency arrow points the other way (`fm-core` depends on this
/// crate). Nibble-table driven: 64 bytes of table, no per-call setup.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 16] = [
        0x0000_0000, 0x1DB7_1064, 0x3B6E_20C8, 0x26D9_30AC,
        0x76DC_4190, 0x6B6B_51F4, 0x4DB2_6158, 0x5005_713C,
        0xEDB8_8320, 0xF00F_9344, 0xD6D6_A3E8, 0xCB61_B38C,
        0x9B64_C2B0, 0x86D3_D2D4, 0xA00A_E278, 0xBDBD_F21C,
    ];
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 4) ^ TABLE[((crc ^ b as u32) & 0xF) as usize];
        crc = (crc >> 4) ^ TABLE[((crc ^ (b as u32 >> 4)) & 0xF) as usize];
    }
    !crc
}

/// Who sent a beacon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    Endpoint,
    Shard,
}

impl SourceKind {
    fn byte(self) -> u8 {
        match self {
            SourceKind::Endpoint => 0,
            SourceKind::Shard => 1,
        }
    }
}

/// One metric's beacon form: the summary plus per-octave counts (see
/// [`crate::hist::Histogram::octave_counts`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricOctaves {
    pub summary: HistSummary,
    pub octaves: Vec<(u8, u64)>,
}

/// An endpoint beacon's body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EndpointBeacon {
    /// Cumulative counters in [`Counter::ALL`] order (the collector
    /// computes deltas between successive beacons).
    pub counters: Vec<u64>,
    /// One entry per [`Metric::ALL`] metric.
    pub metrics: Vec<MetricOctaves>,
    /// Named transport gauges (e.g. `udp_datagrams_out`, `peer_resets`) —
    /// cumulative values the telemetry handle itself does not track.
    pub gauges: Vec<(String, u64)>,
    /// The newest retained trace events at emission time. Successive
    /// beacons overlap; receivers deduplicate on event identity.
    pub events: Vec<TraceEvent>,
}

/// A point-in-time scrape of one switch shard, shippable as a beacon body
/// and recordable as a [`crate::aggregate::MetricsAggregator`] lane.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardSample {
    pub switch_id: u16,
    /// Lifetime forwarding counters (`SwitchStats` flattened).
    pub forwarded: u64,
    pub stalled: u64,
    pub dropped: u64,
    pub timed_out: u64,
    /// The adaptive poll batch at sample time.
    pub batch: u64,
    /// Poll-occupancy (queue depth per sampled service turn).
    pub occupancy: HistSummary,
    pub occupancy_octaves: Vec<(u8, u64)>,
    /// Per-input DRR deficits, in bytes.
    pub deficits: Vec<i64>,
    /// Lifetime frames forwarded per input port.
    pub input_forwarded: Vec<u64>,
    /// Lifetime frames forwarded per output port.
    pub output_forwarded: Vec<u64>,
}

/// A decoded beacon body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BeaconBody {
    Endpoint(EndpointBeacon),
    Shard(ShardSample),
}

/// One decoded beacon datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Beacon {
    pub source: u16,
    pub seq: u32,
    /// Sender wall clock at emission, micros since the Unix epoch.
    pub sent_micros: u64,
    pub body: BeaconBody,
}

impl Beacon {
    pub fn kind(&self) -> SourceKind {
        match self.body {
            BeaconBody::Endpoint(_) => SourceKind::Endpoint,
            BeaconBody::Shard(_) => SourceKind::Shard,
        }
    }
}

/// Why a datagram was rejected by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeaconError {
    TooShort,
    BadMagic,
    BadVersion(u8),
    BadCrc,
    Malformed,
}

impl std::fmt::Display for BeaconError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BeaconError::TooShort => write!(f, "datagram shorter than a beacon header"),
            BeaconError::BadMagic => write!(f, "not a beacon (wrong magic byte)"),
            BeaconError::BadVersion(v) => write!(f, "unsupported beacon version {v}"),
            BeaconError::BadCrc => write!(f, "beacon CRC mismatch"),
            BeaconError::Malformed => write!(f, "beacon body truncated or inconsistent"),
        }
    }
}

impl std::error::Error for BeaconError {}

const HEADER_LEN: usize = 18;
const TRAILER_LEN: usize = 4;

// ---- encoding --------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn summary(&mut self, s: &HistSummary) {
        for v in [s.count, s.min, s.max, s.p50, s.p90, s.p99] {
            self.u64(v);
        }
    }
    fn octaves(&mut self, o: &[(u8, u64)]) {
        self.u8(o.len().min(255) as u8);
        for &(g, n) in o.iter().take(255) {
            self.u8(g);
            self.u64(n);
        }
    }
    fn u64s(&mut self, vs: &[u64]) {
        self.u8(vs.len().min(255) as u8);
        for &v in vs.iter().take(255) {
            self.u64(v);
        }
    }
    fn event(&mut self, e: &TraceEvent) {
        self.u64(e.tick);
        self.u16(e.node);
        match e.kind {
            EventKind::Send { dst, slot, seq } => {
                self.u8(0);
                self.u16(dst);
                self.u16(slot);
                self.u32(seq);
            }
            EventKind::Bounce { peer, slot } => {
                self.u8(1);
                self.u16(peer);
                self.u16(slot);
            }
            EventKind::Retransmit { peer, slot, timer } => {
                self.u8(2);
                self.u16(peer);
                self.u16(slot);
                self.u8(timer as u8);
            }
            EventKind::SlotReuse { slot, gen } => {
                self.u8(3);
                self.u16(slot);
                self.u8(gen);
            }
            EventKind::PeerDead { peer } => {
                self.u8(4);
                self.u16(peer);
            }
            EventKind::SpanSend { trace, hop, dst } => {
                self.u8(5);
                self.u32(trace);
                self.u16(hop);
                self.u16(dst);
            }
            EventKind::SpanWireIn { trace, hop, src } => {
                self.u8(6);
                self.u32(trace);
                self.u16(hop);
                self.u16(src);
            }
            EventKind::SpanPark { trace, hop, src } => {
                self.u8(7);
                self.u32(trace);
                self.u16(hop);
                self.u16(src);
            }
            EventKind::SpanHandlerStart { trace, hop, src } => {
                self.u8(8);
                self.u32(trace);
                self.u16(hop);
                self.u16(src);
            }
            EventKind::SpanHandlerEnd { trace, hop } => {
                self.u8(9);
                self.u32(trace);
                self.u16(hop);
            }
            EventKind::SpanAckOut { trace, hop, dst } => {
                self.u8(10);
                self.u32(trace);
                self.u16(hop);
                self.u16(dst);
            }
            EventKind::SpanAckIn { trace, hop, peer } => {
                self.u8(11);
                self.u32(trace);
                self.u16(hop);
                self.u16(peer);
            }
            EventKind::SpanRetransmit { trace, hop, peer } => {
                self.u8(12);
                self.u32(trace);
                self.u16(hop);
                self.u16(peer);
            }
            EventKind::CollBegin { coll, epoch } => {
                self.u8(13);
                self.u8(coll);
                self.u32(epoch);
            }
            EventKind::CollRoundBegin { coll, epoch, round, peer } => {
                self.u8(14);
                self.u8(coll);
                self.u32(epoch);
                self.u16(round);
                self.u16(peer);
            }
            EventKind::CollRoundEnd { coll, epoch, round } => {
                self.u8(15);
                self.u8(coll);
                self.u32(epoch);
                self.u16(round);
            }
            EventKind::CollEnd { coll, epoch } => {
                self.u8(16);
                self.u8(coll);
                self.u32(epoch);
            }
        }
    }
}

/// Encode one beacon into a CRC-framed datagram. Truncates the trace-event
/// section from the *oldest* end if needed to stay under
/// [`MAX_BEACON_BYTES`].
pub fn encode(b: &Beacon) -> Vec<u8> {
    let mut w = Writer { buf: Vec::with_capacity(512) };
    w.u8(BEACON_MAGIC);
    w.u8(BEACON_VERSION);
    w.u8(b.kind().byte());
    w.u8(0);
    w.u16(b.source);
    w.u32(b.seq);
    w.u64(b.sent_micros);
    match &b.body {
        BeaconBody::Endpoint(e) => {
            w.u8(e.counters.len().min(255) as u8);
            for &c in e.counters.iter().take(255) {
                w.u64(c);
            }
            w.u8(e.metrics.len().min(255) as u8);
            for m in e.metrics.iter().take(255) {
                w.summary(&m.summary);
                w.octaves(&m.octaves);
            }
            w.u8(e.gauges.len().min(255) as u8);
            for (name, v) in e.gauges.iter().take(255) {
                let bytes = name.as_bytes();
                w.u8(bytes.len().min(255) as u8);
                w.buf.extend_from_slice(&bytes[..bytes.len().min(255)]);
                w.u64(*v);
            }
            // Budget the event section: whatever room remains under the
            // datagram cap, newest events first (an event is ≤ 19 bytes).
            let room = MAX_BEACON_BYTES.saturating_sub(w.buf.len() + 2 + TRAILER_LEN);
            let fit = (room / 19).min(e.events.len()).min(u16::MAX as usize);
            let events = &e.events[e.events.len() - fit..];
            w.u16(events.len() as u16);
            for ev in events {
                w.event(ev);
            }
        }
        BeaconBody::Shard(s) => {
            w.u16(s.switch_id);
            for v in [s.forwarded, s.stalled, s.dropped, s.timed_out, s.batch] {
                w.u64(v);
            }
            w.summary(&s.occupancy);
            w.octaves(&s.occupancy_octaves);
            w.u8(s.deficits.len().min(255) as u8);
            for &d in s.deficits.iter().take(255) {
                w.i64(d);
            }
            w.u64s(&s.input_forwarded);
            w.u64s(&s.output_forwarded);
        }
    }
    let crc = crc32(&w.buf);
    w.u32(crc);
    w.buf
}

// ---- decoding --------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BeaconError> {
        if self.at + n > self.buf.len() {
            return Err(BeaconError::Malformed);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, BeaconError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, BeaconError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, BeaconError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, BeaconError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, BeaconError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn summary(&mut self) -> Result<HistSummary, BeaconError> {
        Ok(HistSummary {
            count: self.u64()?,
            min: self.u64()?,
            max: self.u64()?,
            p50: self.u64()?,
            p90: self.u64()?,
            p99: self.u64()?,
        })
    }
    fn octaves(&mut self) -> Result<Vec<(u8, u64)>, BeaconError> {
        let n = self.u8()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push((self.u8()?, self.u64()?));
        }
        Ok(out)
    }
    fn u64s(&mut self) -> Result<Vec<u64>, BeaconError> {
        let n = self.u8()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }
    fn event(&mut self) -> Result<TraceEvent, BeaconError> {
        let tick = self.u64()?;
        let node = self.u16()?;
        let tag = self.u8()?;
        let kind = match tag {
            0 => EventKind::Send { dst: self.u16()?, slot: self.u16()?, seq: self.u32()? },
            1 => EventKind::Bounce { peer: self.u16()?, slot: self.u16()? },
            2 => EventKind::Retransmit {
                peer: self.u16()?,
                slot: self.u16()?,
                timer: self.u8()? != 0,
            },
            3 => EventKind::SlotReuse { slot: self.u16()?, gen: self.u8()? },
            4 => EventKind::PeerDead { peer: self.u16()? },
            5 => EventKind::SpanSend { trace: self.u32()?, hop: self.u16()?, dst: self.u16()? },
            6 => EventKind::SpanWireIn { trace: self.u32()?, hop: self.u16()?, src: self.u16()? },
            7 => EventKind::SpanPark { trace: self.u32()?, hop: self.u16()?, src: self.u16()? },
            8 => EventKind::SpanHandlerStart {
                trace: self.u32()?,
                hop: self.u16()?,
                src: self.u16()?,
            },
            9 => EventKind::SpanHandlerEnd { trace: self.u32()?, hop: self.u16()? },
            10 => EventKind::SpanAckOut { trace: self.u32()?, hop: self.u16()?, dst: self.u16()? },
            11 => EventKind::SpanAckIn { trace: self.u32()?, hop: self.u16()?, peer: self.u16()? },
            12 => EventKind::SpanRetransmit {
                trace: self.u32()?,
                hop: self.u16()?,
                peer: self.u16()?,
            },
            13 => EventKind::CollBegin { coll: self.u8()?, epoch: self.u32()? },
            14 => EventKind::CollRoundBegin {
                coll: self.u8()?,
                epoch: self.u32()?,
                round: self.u16()?,
                peer: self.u16()?,
            },
            15 => EventKind::CollRoundEnd {
                coll: self.u8()?,
                epoch: self.u32()?,
                round: self.u16()?,
            },
            16 => EventKind::CollEnd { coll: self.u8()?, epoch: self.u32()? },
            _ => return Err(BeaconError::Malformed),
        };
        Ok(TraceEvent { tick, node, kind })
    }
}

/// Decode (and CRC-verify) one beacon datagram.
pub fn decode(buf: &[u8]) -> Result<Beacon, BeaconError> {
    if buf.len() < HEADER_LEN + TRAILER_LEN {
        return Err(BeaconError::TooShort);
    }
    if buf[0] != BEACON_MAGIC {
        return Err(BeaconError::BadMagic);
    }
    if buf[1] != BEACON_VERSION {
        return Err(BeaconError::BadVersion(buf[1]));
    }
    let body_end = buf.len() - TRAILER_LEN;
    let want = u32::from_le_bytes(buf[body_end..].try_into().unwrap());
    if crc32(&buf[..body_end]) != want {
        return Err(BeaconError::BadCrc);
    }
    let mut r = Reader { buf: &buf[..body_end], at: 2 };
    let kind = r.u8()?;
    let _reserved = r.u8()?;
    let source = r.u16()?;
    let seq = r.u32()?;
    let sent_micros = r.u64()?;
    let body = match kind {
        0 => {
            let nc = r.u8()? as usize;
            let mut counters = Vec::with_capacity(nc);
            for _ in 0..nc {
                counters.push(r.u64()?);
            }
            let nm = r.u8()? as usize;
            let mut metrics = Vec::with_capacity(nm);
            for _ in 0..nm {
                metrics.push(MetricOctaves { summary: r.summary()?, octaves: r.octaves()? });
            }
            let ng = r.u8()? as usize;
            let mut gauges = Vec::with_capacity(ng);
            for _ in 0..ng {
                let len = r.u8()? as usize;
                let name = String::from_utf8(r.take(len)?.to_vec())
                    .map_err(|_| BeaconError::Malformed)?;
                gauges.push((name, r.u64()?));
            }
            let ne = r.u16()? as usize;
            let mut events = Vec::with_capacity(ne);
            for _ in 0..ne {
                events.push(r.event()?);
            }
            BeaconBody::Endpoint(EndpointBeacon { counters, metrics, gauges, events })
        }
        1 => {
            let switch_id = r.u16()?;
            let forwarded = r.u64()?;
            let stalled = r.u64()?;
            let dropped = r.u64()?;
            let timed_out = r.u64()?;
            let batch = r.u64()?;
            let occupancy = r.summary()?;
            let occupancy_octaves = r.octaves()?;
            let nd = r.u8()? as usize;
            let mut deficits = Vec::with_capacity(nd);
            for _ in 0..nd {
                deficits.push(r.i64()?);
            }
            let input_forwarded = r.u64s()?;
            let output_forwarded = r.u64s()?;
            BeaconBody::Shard(ShardSample {
                switch_id,
                forwarded,
                stalled,
                dropped,
                timed_out,
                batch,
                occupancy,
                occupancy_octaves,
                deficits,
                input_forwarded,
                output_forwarded,
            })
        }
        _ => return Err(BeaconError::Malformed),
    };
    if r.at != body_end {
        return Err(BeaconError::Malformed);
    }
    Ok(Beacon { source, seq, sent_micros, body })
}

// ---- the emitter -----------------------------------------------------------

/// Counters for one [`Beaconer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BeaconStats {
    /// Beacons handed to the kernel.
    pub sent: u64,
    /// `send_to` failures (beacon dropped; the next interval retries —
    /// beacons are loss-tolerant by design).
    pub send_errors: u64,
}

/// Periodically emits beacons from one source on its own ephemeral UDP
/// socket. Designed to sit on a hot path: [`Beaconer::due`] is a counter
/// mask most calls (no syscall, no clock read) and only consults the
/// clock every 64th call.
pub struct Beaconer {
    sock: UdpSocket,
    dst: SocketAddr,
    telemetry: Option<Telemetry>,
    kind: SourceKind,
    source: u16,
    interval: Duration,
    next: Instant,
    calls: u32,
    seq: u32,
    pub stats: BeaconStats,
}

impl std::fmt::Debug for Beaconer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Beaconer")
            .field("kind", &self.kind)
            .field("source", &self.source)
            .field("dst", &self.dst)
            .field("seq", &self.seq)
            .finish()
    }
}

fn unix_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

impl Beaconer {
    fn new(
        telemetry: Option<Telemetry>,
        kind: SourceKind,
        source: u16,
        dst: SocketAddr,
        interval_us: u64,
    ) -> io::Result<Self> {
        let bind_on: SocketAddr = if dst.is_ipv4() {
            "0.0.0.0:0".parse().unwrap()
        } else {
            "[::]:0".parse().unwrap()
        };
        let sock = UdpSocket::bind(bind_on)?;
        sock.set_nonblocking(true)?;
        Ok(Beaconer {
            sock,
            dst,
            telemetry,
            kind,
            source,
            interval: Duration::from_micros(interval_us.max(1)),
            next: Instant::now(),
            calls: 0,
            seq: 0,
            stats: BeaconStats::default(),
        })
    }

    /// An endpoint beaconer: each emission snapshots `telemetry` (counters,
    /// metric octaves, trace events) plus whatever gauges the caller
    /// passes to [`Beaconer::emit`].
    pub fn endpoint(telemetry: Telemetry, dst: SocketAddr, interval_us: u64) -> io::Result<Self> {
        let source = telemetry.node();
        Self::new(Some(telemetry), SourceKind::Endpoint, source, dst, interval_us)
    }

    /// A shard beaconer: the caller supplies a fresh [`ShardSample`] per
    /// [`Beaconer::emit_shard`] (the shard cannot be captured here — it
    /// lives on its own thread).
    pub fn shard(switch_id: u16, dst: SocketAddr, interval_us: u64) -> io::Result<Self> {
        Self::new(None, SourceKind::Shard, switch_id, dst, interval_us)
    }

    pub fn source(&self) -> u16 {
        self.source
    }

    /// True when an interval has elapsed since the last emission. Cheap
    /// enough for a per-`extract` call: 63 of every 64 calls are a counter
    /// increment and a branch.
    #[inline]
    pub fn due(&mut self) -> bool {
        self.calls = self.calls.wrapping_add(1);
        if self.calls & 0x3F != 0 {
            return false;
        }
        Instant::now() >= self.next
    }

    fn send(&mut self, datagram: &[u8]) {
        self.next = Instant::now() + self.interval;
        match self.sock.send_to(datagram, self.dst) {
            Ok(_) => self.stats.sent += 1,
            Err(_) => self.stats.send_errors += 1,
        }
        self.seq = self.seq.wrapping_add(1);
    }

    /// Emit one endpoint beacon now (callers normally gate on
    /// [`Beaconer::due`]; call directly for a final flush so the collector
    /// sees the end-of-run counter state).
    ///
    /// # Panics
    /// If this beaconer was built with [`Beaconer::shard`].
    pub fn emit(&mut self, gauges: &[(&str, u64)]) {
        let t = self.telemetry.as_ref().expect("endpoint beaconer");
        let snap = t.snapshot();
        let counters = Counter::ALL.iter().map(|&c| snap.counter(c)).collect();
        let metrics = Metric::ALL
            .iter()
            .map(|&m| MetricOctaves {
                summary: snap.metric(m),
                octaves: t.metric_octaves(m),
            })
            .collect();
        let body = EndpointBeacon {
            counters,
            metrics,
            gauges: gauges.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            events: {
                let mut evs = t.events();
                if evs.len() > DEFAULT_BEACON_EVENTS {
                    evs.drain(..evs.len() - DEFAULT_BEACON_EVENTS);
                }
                evs
            },
        };
        let datagram = encode(&Beacon {
            source: self.source,
            seq: self.seq,
            sent_micros: unix_micros(),
            body: BeaconBody::Endpoint(body),
        });
        self.send(&datagram);
    }

    /// Emit one shard beacon now from a caller-captured sample.
    pub fn emit_shard(&mut self, sample: &ShardSample) {
        let datagram = encode(&Beacon {
            source: self.source,
            seq: self.seq,
            sent_micros: unix_micros(),
            body: BeaconBody::Shard(sample.clone()),
        });
        self.send(&datagram);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent { tick: 1, node: 3, kind: EventKind::Send { dst: 1, slot: 2, seq: 9 } },
            TraceEvent {
                tick: 2,
                node: 3,
                kind: EventKind::Retransmit { peer: 1, slot: 2, timer: true },
            },
            TraceEvent {
                tick: 3,
                node: 3,
                kind: EventKind::SpanSend { trace: 77, hop: 1, dst: 0 },
            },
            TraceEvent {
                tick: 4,
                node: 3,
                kind: EventKind::CollRoundBegin { coll: 3, epoch: 12, round: 2, peer: 5 },
            },
            TraceEvent { tick: 5, node: 3, kind: EventKind::CollEnd { coll: 3, epoch: 12 } },
            TraceEvent { tick: 6, node: 3, kind: EventKind::PeerDead { peer: 4 } },
        ]
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn endpoint_beacon_round_trips() {
        let b = Beacon {
            source: 7,
            seq: 42,
            sent_micros: 1_700_000_000_000_000,
            body: BeaconBody::Endpoint(EndpointBeacon {
                counters: (0..Counter::COUNT as u64).collect(),
                metrics: vec![
                    MetricOctaves {
                        summary: HistSummary {
                            count: 10,
                            min: 1,
                            max: 900,
                            p50: 40,
                            p90: 600,
                            p99: 880,
                        },
                        octaves: vec![(0, 4), (5, 6)],
                    };
                    Metric::COUNT
                ],
                gauges: vec![("udp_datagrams_out".into(), 123), ("peer_resets".into(), 1)],
                events: sample_events(),
            }),
        };
        let wire = encode(&b);
        assert!(wire.len() <= MAX_BEACON_BYTES);
        let back = decode(&wire).expect("round trip");
        assert_eq!(back, b);
    }

    #[test]
    fn shard_beacon_round_trips() {
        let b = Beacon {
            source: 2,
            seq: 0,
            sent_micros: 5,
            body: BeaconBody::Shard(ShardSample {
                switch_id: 2,
                forwarded: 100,
                stalled: 3,
                dropped: 0,
                timed_out: 1,
                batch: 16,
                occupancy: HistSummary { count: 9, min: 1, max: 64, p50: 8, p90: 32, p99: 64 },
                occupancy_octaves: vec![(0, 5), (1, 4)],
                deficits: vec![0, 228, 114],
                input_forwarded: vec![40, 35, 25],
                output_forwarded: vec![60, 40],
            }),
        };
        let back = decode(&encode(&b)).expect("round trip");
        assert_eq!(back, b);
    }

    #[test]
    fn corruption_is_rejected() {
        let b = Beacon {
            source: 0,
            seq: 1,
            sent_micros: 2,
            body: BeaconBody::Endpoint(EndpointBeacon::default()),
        };
        let mut wire = encode(&b);
        assert!(decode(&wire).is_ok());
        let mid = wire.len() / 2;
        wire[mid] ^= 0x40;
        assert_eq!(decode(&wire), Err(BeaconError::BadCrc));
        wire[mid] ^= 0x40;
        wire[0] = 0xE7; // an fm-core control datagram, not a beacon
        assert_eq!(decode(&wire), Err(BeaconError::BadMagic));
        wire[0] = BEACON_MAGIC;
        wire[1] = 9;
        assert_eq!(decode(&wire), Err(BeaconError::BadVersion(9)));
        assert_eq!(decode(&[0xB3]), Err(BeaconError::TooShort));
    }

    #[test]
    fn truncated_body_is_malformed_not_panic() {
        let b = Beacon {
            source: 0,
            seq: 1,
            sent_micros: 2,
            body: BeaconBody::Endpoint(EndpointBeacon {
                counters: vec![1, 2, 3],
                metrics: vec![],
                gauges: vec![],
                events: sample_events(),
            }),
        };
        let wire = encode(&b);
        // Chop the tail off the body, then re-frame with a valid CRC so
        // only the structural check can reject it.
        let cut = wire.len() - 12;
        let mut short = wire[..cut].to_vec();
        let crc = crc32(&short);
        short.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(decode(&short), Err(BeaconError::Malformed));
    }

    #[test]
    fn oversized_event_window_is_truncated_newest_kept() {
        let mut events = Vec::new();
        for i in 0..2000u64 {
            events.push(TraceEvent {
                tick: i,
                node: 0,
                kind: EventKind::Send { dst: 1, slot: 0, seq: i as u32 },
            });
        }
        let b = Beacon {
            source: 0,
            seq: 0,
            sent_micros: 0,
            body: BeaconBody::Endpoint(EndpointBeacon {
                counters: vec![0; Counter::COUNT],
                metrics: vec![],
                gauges: vec![],
                events,
            }),
        };
        let wire = encode(&b);
        assert!(wire.len() <= MAX_BEACON_BYTES, "capped at {}", wire.len());
        let back = decode(&wire).expect("still well-formed");
        let BeaconBody::Endpoint(e) = back.body else { panic!() };
        assert!(!e.events.is_empty() && e.events.len() < 2000);
        assert_eq!(e.events.last().unwrap().tick, 1999, "newest survive");
    }

    #[test]
    fn beaconer_emits_over_loopback() {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        rx.set_nonblocking(true).unwrap();
        let t = Telemetry::new(4);
        t.add(Counter::Sends, 17);
        t.record(Metric::AckRttTicks, 120);
        t.trace(9, EventKind::Send { dst: 0, slot: 0, seq: 0 });
        let mut b =
            Beaconer::endpoint(t, rx.local_addr().unwrap(), 1000).expect("bind beaconer");
        b.emit(&[("peer_resets", 2)]);
        assert_eq!(b.stats.sent, 1);
        // Loopback delivery is immediate in practice; poll briefly.
        let mut buf = [0u8; MAX_BEACON_BYTES];
        let n = (0..200)
            .find_map(|_| match rx.recv_from(&mut buf) {
                Ok((n, _)) => Some(n),
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(1));
                    None
                }
            })
            .expect("beacon arrives");
        let beacon = decode(&buf[..n]).expect("decodes");
        assert_eq!(beacon.source, 4);
        let BeaconBody::Endpoint(e) = beacon.body else { panic!("endpoint beacon") };
        assert_eq!(e.gauges, vec![("peer_resets".to_string(), 2)]);
        if crate::ENABLED {
            assert_eq!(e.counters[Counter::Sends as usize], 17);
            assert_eq!(e.events.len(), 1);
            assert_eq!(e.metrics[Metric::AckRttTicks as usize].summary.count, 1);
        }
    }

    #[test]
    fn due_paces_by_interval() {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut b = Beaconer::shard(0, rx.local_addr().unwrap(), 50_000).unwrap();
        // First due() crossing the 64-call mask fires immediately...
        let first = (0..256).any(|_| b.due());
        assert!(first, "initial emission is due");
        b.emit_shard(&ShardSample::default());
        // ...then not again inside the interval.
        assert!(!(0..256).any(|_| b.due()), "interval not yet elapsed");
    }
}
