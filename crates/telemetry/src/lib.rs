//! # fm-telemetry — runtime observability for the FM stack
//!
//! The paper's whole evaluation is measurement (Section 4's ablations,
//! Table 2's derived t0 / r_inf / n_1/2), and this crate is the runtime's
//! unified way of producing such numbers: one cloneable [`Telemetry`]
//! handle per endpoint carrying
//!
//! * **lock-free [`Counter`]s** — sends, bounces, retransmits, re-acks,
//!   corrupt frames, dead peers, reassembly aborts, evicted partials, and
//!   the release-mode guard counters (invalid ack slots, sequence-buffer
//!   misuse) — relaxed atomic adds, readable any time via [`Telemetry::snapshot`];
//! * **log-bucketed [`Histogram`]s** keyed by [`Metric`] — send→ack RTT,
//!   handler service time, wire poll batch occupancy — zero-alloc recording
//!   with p50/p90/p99 extraction (see [`hist`]);
//! * a **bounded [`trace::EventRing`]** of typed protocol events
//!   (send / bounce / retransmit / slot-reuse / peer-dead) dumpable as JSON
//!   or chrome-trace for time-axis debugging (see [`trace`]).
//!
//! The handle is an `Arc` around the shared state: the endpoint core, the
//! transport and any external observer all hold clones of the same handle.
//!
//! ## The `telemetry-off` feature
//!
//! Building with `--features telemetry-off` compiles every handle method to
//! a no-op (the handle stores nothing but the node id) — the configuration
//! the `bench_gate` overhead probe compares against to prove the
//! instrumented clean path stays inside the <10% regression budget.
//! [`ENABLED`] tells callers which world they are in. Standalone
//! [`Histogram`]s stay fully functional either way: measurement harnesses
//! (the testbed loss sweep, `bench_gate`'s ping-pong) depend on them.

pub mod aggregate;
pub mod beacon;
pub mod clocksync;
pub mod collector;
pub mod hist;
pub mod merge;
pub mod trace;

pub use aggregate::{FlightDump, MetricsAggregator, TickSample};
pub use beacon::{Beacon, BeaconBody, BeaconError, Beaconer, EndpointBeacon, ShardSample};
pub use clocksync::{ClockEstimate, ClusterClock, OffsetEstimator, RttSample};
pub use collector::{Alarm, Collector, DetectorConfig};
pub use hist::{bucket_index, bucket_lower, bucket_upper, HistSummary, Histogram, BUCKETS, SUB};
pub use merge::{FlowPair, MergeReport, MergedEvent};
pub use trace::{chrome_trace, coll_kind_name, EventKind, EventRing, TraceEvent};

#[cfg(not(feature = "telemetry-off"))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "telemetry-off"))]
use std::sync::{Arc, Mutex};

/// False when the crate was built with `telemetry-off` (every handle method
/// is a no-op and snapshots read all-zero).
pub const ENABLED: bool = cfg!(not(feature = "telemetry-off"));

/// Default [`trace::EventRing`] capacity per endpoint.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// The protocol counters a [`Telemetry`] handle tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Fresh data frames queued for the wire.
    Sends,
    /// Our frames that came back bounced (return-to-sender).
    Bounces,
    /// Frames retransmitted (bounce- and timer-driven together).
    Retransmits,
    /// The timer-driven subset of `Retransmits`.
    TimerRetransmits,
    /// Duplicate data frames re-acknowledged (their ack may have been lost).
    ReAcks,
    /// Frames discarded for a CRC mismatch.
    CorruptFrames,
    /// Peers declared dead after exhausting their retry budget.
    DeadPeers,
    /// Partial large-message reassemblies aborted because their source died.
    ReassemblyAborts,
    /// Partial reassemblies evicted by the per-source cap (a live peer
    /// churning msg_ids without completing them).
    EvictedPartials,
    /// Ack-word packs refused because the slot exceeded the 10-bit range —
    /// the release-mode aliasing bug this counter replaced a `debug_assert!`
    /// for.
    InvalidAckSlots,
    /// `SeqWindow::buffer` misuse caught at runtime (out-of-window or
    /// double-insert), likewise previously only a `debug_assert!`.
    SeqBufferMisuse,
}

impl Counter {
    pub const COUNT: usize = 11;

    /// Every counter, in `repr` order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Sends,
        Counter::Bounces,
        Counter::Retransmits,
        Counter::TimerRetransmits,
        Counter::ReAcks,
        Counter::CorruptFrames,
        Counter::DeadPeers,
        Counter::ReassemblyAborts,
        Counter::EvictedPartials,
        Counter::InvalidAckSlots,
        Counter::SeqBufferMisuse,
    ];

    /// Stable snake_case name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Sends => "sends",
            Counter::Bounces => "bounces",
            Counter::Retransmits => "retransmits",
            Counter::TimerRetransmits => "timer_retransmits",
            Counter::ReAcks => "re_acks",
            Counter::CorruptFrames => "corrupt_frames",
            Counter::DeadPeers => "dead_peers",
            Counter::ReassemblyAborts => "reassembly_aborts",
            Counter::EvictedPartials => "evicted_partials",
            Counter::InvalidAckSlots => "invalid_ack_slots",
            Counter::SeqBufferMisuse => "seq_buffer_misuse",
        }
    }
}

/// The latency/occupancy histograms a [`Telemetry`] handle tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// Send→ack round trip, in endpoint virtual ticks.
    AckRttTicks,
    /// Handler service time, in nanoseconds of wall clock.
    HandlerNs,
    /// Frames drained per non-empty wire poll batch.
    PollBatch,
}

impl Metric {
    pub const COUNT: usize = 3;

    pub const ALL: [Metric; Metric::COUNT] =
        [Metric::AckRttTicks, Metric::HandlerNs, Metric::PollBatch];

    /// Stable snake_case name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Metric::AckRttTicks => "ack_rtt_ticks",
            Metric::HandlerNs => "handler_ns",
            Metric::PollBatch => "poll_batch",
        }
    }
}

#[cfg(not(feature = "telemetry-off"))]
struct Inner {
    counters: [AtomicU64; Counter::COUNT],
    hists: [Histogram; Metric::COUNT],
    ring: Mutex<EventRing>,
}

/// A cloneable per-endpoint observability handle. Cheap to clone (an `Arc`
/// bump); all clones share the same counters, histograms and event ring.
#[derive(Clone)]
pub struct Telemetry {
    node: u16,
    #[cfg(not(feature = "telemetry-off"))]
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("node", &self.node)
            .field("enabled", &ENABLED)
            .finish()
    }
}

impl Telemetry {
    /// A handle for `node` with the default trace-ring capacity.
    pub fn new(node: u16) -> Self {
        Self::with_trace_capacity(node, DEFAULT_TRACE_CAPACITY)
    }

    /// A handle for `node` retaining up to `trace_capacity` events.
    #[cfg_attr(feature = "telemetry-off", allow(unused_variables))]
    pub fn with_trace_capacity(node: u16, trace_capacity: usize) -> Self {
        Telemetry {
            node,
            #[cfg(not(feature = "telemetry-off"))]
            inner: Arc::new(Inner {
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                hists: std::array::from_fn(|_| Histogram::new()),
                ring: Mutex::new(EventRing::new(trace_capacity)),
            }),
        }
    }

    pub fn node(&self) -> u16 {
        self.node
    }

    /// Bump `c` by one.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Bump `c` by `n`.
    #[cfg_attr(feature = "telemetry-off", allow(unused_variables))]
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.inner.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `c`.
    #[cfg_attr(feature = "telemetry-off", allow(unused_variables))]
    pub fn counter(&self, c: Counter) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        return self.inner.counters[c as usize].load(Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        0
    }

    /// Record a sample into metric `m`'s histogram.
    #[cfg_attr(feature = "telemetry-off", allow(unused_variables))]
    #[inline]
    pub fn record(&self, m: Metric, v: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.inner.hists[m as usize].record(v);
    }

    /// Summary (count/min/max/p50/p90/p99) of metric `m`.
    #[cfg_attr(feature = "telemetry-off", allow(unused_variables))]
    pub fn metric(&self, m: Metric) -> HistSummary {
        #[cfg(not(feature = "telemetry-off"))]
        return self.inner.hists[m as usize].summary();
        #[cfg(feature = "telemetry-off")]
        HistSummary::default()
    }

    /// Arbitrary-quantile read of metric `m` (see [`Histogram::quantile`]).
    #[cfg_attr(feature = "telemetry-off", allow(unused_variables))]
    pub fn metric_quantile(&self, m: Metric, q: f64) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        return self.inner.hists[m as usize].quantile(q);
        #[cfg(feature = "telemetry-off")]
        0
    }

    /// Non-empty per-octave counts of metric `m`'s histogram — the compact
    /// form the telemetry beacons ship (see [`Histogram::octave_counts`]).
    #[cfg_attr(feature = "telemetry-off", allow(unused_variables))]
    pub fn metric_octaves(&self, m: Metric) -> Vec<(u8, u64)> {
        #[cfg(not(feature = "telemetry-off"))]
        return self.inner.hists[m as usize].octave_counts();
        #[cfg(feature = "telemetry-off")]
        Vec::new()
    }

    /// Record a trace event at virtual time `tick`.
    #[cfg_attr(feature = "telemetry-off", allow(unused_variables))]
    #[inline]
    pub fn trace(&self, tick: u64, kind: EventKind) {
        #[cfg(not(feature = "telemetry-off"))]
        self.inner.ring.lock().expect("trace ring").push(TraceEvent {
            tick,
            node: self.node,
            kind,
        });
    }

    /// Retained trace events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        #[cfg(not(feature = "telemetry-off"))]
        return self.inner.ring.lock().expect("trace ring").to_vec();
        #[cfg(feature = "telemetry-off")]
        Vec::new()
    }

    /// Total trace events ever recorded (including ones the bounded ring
    /// has since overwritten).
    pub fn events_recorded(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        return self.inner.ring.lock().expect("trace ring").pushed();
        #[cfg(feature = "telemetry-off")]
        0
    }

    /// Point-in-time copy of every counter and histogram summary.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            node: self.node,
            counters: std::array::from_fn(|i| self.counter(Counter::ALL[i])),
            metrics: std::array::from_fn(|i| self.metric(Metric::ALL[i])),
        }
    }

    /// The retained trace as a chrome-trace JSON document.
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&self.events())
    }
}

/// A read-only copy of one endpoint's telemetry at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    pub node: u16,
    counters: [u64; Counter::COUNT],
    metrics: [HistSummary; Metric::COUNT],
}

impl TelemetrySnapshot {
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    pub fn metric(&self, m: Metric) -> HistSummary {
        self.metrics[m as usize]
    }

    /// Render as a JSON object (hand-rolled like the rest of the repo — the
    /// build container has no serde).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\n  \"node\": {},\n  \"counters\": {{", self.node);
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", c.name(), self.counter(*c)));
        }
        out.push_str("\n  },\n  \"metrics\": {");
        for (i, m) in Metric::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = self.metric(*m);
            out.push_str(&format!(
                "\n    \"{}\": {{ \"count\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {} }}",
                m.name(),
                s.count,
                s.min,
                s.max,
                s.p50,
                s.p90,
                s.p99
            ));
        }
        out.push_str("\n  }\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let t = Telemetry::new(7);
        t.incr(Counter::Sends);
        t.add(Counter::Sends, 2);
        t.incr(Counter::Bounces);
        let s = t.snapshot();
        if ENABLED {
            assert_eq!(s.counter(Counter::Sends), 3);
            assert_eq!(s.counter(Counter::Bounces), 1);
        } else {
            assert_eq!(s.counter(Counter::Sends), 0);
        }
        assert_eq!(s.counter(Counter::DeadPeers), 0);
        assert_eq!(s.node, 7);
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::new(0);
        let u = t.clone();
        u.incr(Counter::Retransmits);
        u.record(Metric::AckRttTicks, 5);
        if ENABLED {
            assert_eq!(t.counter(Counter::Retransmits), 1);
            assert_eq!(t.metric(Metric::AckRttTicks).count, 1);
        }
    }

    #[test]
    fn snapshot_json_has_every_key() {
        let t = Telemetry::new(1);
        t.incr(Counter::CorruptFrames);
        let j = t.snapshot().to_json();
        for c in Counter::ALL {
            assert!(j.contains(c.name()), "missing counter {}", c.name());
        }
        for m in Metric::ALL {
            assert!(j.contains(m.name()), "missing metric {}", m.name());
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn trace_ring_is_bounded() {
        let t = Telemetry::with_trace_capacity(0, 8);
        for i in 0..100 {
            t.trace(i, EventKind::SlotReuse { slot: 1, gen: 1 });
        }
        let evs = t.events();
        if ENABLED {
            assert_eq!(evs.len(), 8);
            assert_eq!(evs.first().unwrap().tick, 92);
            assert_eq!(evs.last().unwrap().tick, 99);
            assert_eq!(t.events_recorded(), 100);
        } else {
            assert!(evs.is_empty());
        }
    }
}
