//! The beacon collector: live cluster-wide observability from out-of-band
//! telemetry datagrams.
//!
//! A [`Collector`] binds one UDP socket and ingests [`crate::beacon`]
//! datagrams from any number of endpoints and switch shards — typically
//! across OS processes. From the raw beacons it maintains:
//!
//! * **cumulative counters and deltas** per endpoint (beacons carry
//!   cumulative values, so a lost beacon merely widens one delta window);
//! * **health detectors** over those deltas, firing typed [`Alarm`]s:
//!   *retransmit storm* (an endpoint's retransmit delta dwarfing its fresh
//!   sends), *incast capture* (a shard's per-input forwarding fairness —
//!   Jain's index — collapsing, the failure mode the DRR scheduler
//!   exists to prevent), and *dead peer* (a `DeadPeers` counter advance).
//!   Detectors are edge-triggered with calm-rearm hysteresis, so one
//!   sustained episode fires exactly one alarm;
//! * **clock alignment** from the beacon timestamps themselves: the
//!   minimum observed `recv − sent` skew per source (NTP's minimum-delay
//!   filter, the same idea `clocksync` applies to traced RTT quadruples)
//!   plus the full PR-4 span merge over the collected trace events
//!   ([`Collector::merged`]);
//! * **rolling exports**: Prometheus text ([`Collector::prometheus`]) with
//!   per-shard queue-depth/deficit/forwarding series and per-collective
//!   span timings, and merged chrome-trace windows
//!   ([`Collector::chrome_trace`]) with one counter lane per shard.
//!
//! Everything is bounded: per-source event windows, shard sample history
//! and the alarm list all cap out, so a collector can watch a cluster
//! indefinitely.

use crate::beacon::{self, BeaconBody, BeaconError, ShardSample};
use crate::hist::Histogram;
use crate::merge::{self, MergeReport};
use crate::trace::{coll_kind_name, EventKind, TraceEvent};
use crate::Counter;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::{SystemTime, UNIX_EPOCH};

/// Thresholds for the counter-delta health detectors.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Retransmit storm: an endpoint's per-beacon retransmit delta must
    /// reach this floor...
    pub storm_min_retransmits: u64,
    /// ...and this fraction of its fresh-send delta (so a busy-but-clean
    /// endpoint never trips on volume alone).
    pub storm_ratio: f64,
    /// Consecutive calm beacons before a latched storm detector re-arms.
    pub calm_beacons: u32,
    /// Incast capture: Jain's fairness index over a shard's per-input
    /// forwarding deltas below this fires (1.0 = perfectly fair,
    /// 1/n = one input captured the switch).
    pub fairness_min: f64,
    /// ...but only when at least this many inputs forwarded this window,
    pub fairness_min_active: usize,
    /// ...and at least this many frames moved (tiny windows are noise).
    pub fairness_min_frames: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            storm_min_retransmits: 64,
            storm_ratio: 0.25,
            calm_beacons: 3,
            fairness_min: 0.5,
            fairness_min_active: 3,
            fairness_min_frames: 256,
        }
    }
}

/// A typed health alarm raised by the collector's detectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Alarm {
    /// `node`'s retransmit delta crossed the storm threshold.
    RetransmitStorm { node: u16, retransmits: u64, sends: u64 },
    /// `switch`'s per-input forwarding fairness collapsed.
    IncastCapture { switch: u16, fairness: f64, frames: u64 },
    /// `node` declared `dead_peers` peer(s) dead since its last beacon.
    DeadPeer { node: u16, dead_peers: u64 },
}

impl Alarm {
    /// Stable snake_case name (the Prometheus label / log key).
    pub fn name(&self) -> &'static str {
        match self {
            Alarm::RetransmitStorm { .. } => "retransmit_storm",
            Alarm::IncastCapture { .. } => "incast_capture",
            Alarm::DeadPeer { .. } => "dead_peer",
        }
    }

    /// One human-readable line.
    pub fn describe(&self) -> String {
        match self {
            Alarm::RetransmitStorm { node, retransmits, sends } => format!(
                "retransmit storm on endpoint {node}: {retransmits} retransmits \
                 against {sends} fresh sends in one beacon window"
            ),
            Alarm::IncastCapture { switch, fairness, frames } => format!(
                "incast capture on switch {switch}: input fairness {fairness:.3} \
                 over {frames} forwarded frames"
            ),
            Alarm::DeadPeer { node, dead_peers } => {
                format!("endpoint {node} declared {dead_peers} peer(s) dead")
            }
        }
    }
}

/// Ingest statistics for one [`Collector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Datagrams pulled off the socket (or fed to `ingest`).
    pub datagrams: u64,
    /// Beacons accepted.
    pub beacons: u64,
    /// Rejected: CRC mismatch.
    pub crc_rejected: u64,
    /// Rejected: structurally malformed (truncated body, bad tag).
    pub malformed: u64,
    /// Rejected: wrong magic or version (not ours / newer than us).
    pub foreign: u64,
    /// Beacon sequence gaps observed (beacons lost in flight — widens a
    /// delta window, never corrupts totals).
    pub seq_gaps: u64,
}

/// Jain's fairness index over a share vector: `(Σx)² / (n·Σx²)`.
/// 1.0 when all shares are equal, `1/n` when one share has everything.
/// Returns 1.0 for empty/all-zero input (nothing to be unfair about).
pub fn jain_fairness(shares: &[u64]) -> f64 {
    let n = shares.len();
    let sum: u128 = shares.iter().map(|&x| x as u128).sum();
    if n == 0 || sum == 0 {
        return 1.0;
    }
    let sum_sq: u128 = shares.iter().map(|&x| (x as u128) * (x as u128)).sum();
    (sum as f64) * (sum as f64) / (n as f64 * sum_sq as f64)
}

/// Per-endpoint ingest state.
struct EndpointState {
    /// Latest cumulative counters (padded/truncated to `Counter::COUNT`).
    totals: [u64; Counter::COUNT],
    /// Latest per-metric octave summaries.
    metrics: Vec<beacon::MetricOctaves>,
    /// Latest named gauges.
    gauges: Vec<(String, u64)>,
    /// Deduplicated trace events (successive beacons overlap), bounded.
    events: Vec<TraceEvent>,
    seen: HashSet<TraceEvent>,
    /// Open collective spans: (coll, epoch) → begin tick.
    open_colls: HashMap<(u8, u32), u64>,
    beacons: u64,
    last_seq: Option<u32>,
    /// Minimum observed `recv − sent` micros: sender-to-collector clock
    /// offset plus minimum network delay (the NTP minimum filter).
    min_skew_us: i64,
    storm_latched: bool,
    calm: u32,
}

impl EndpointState {
    fn new() -> Self {
        EndpointState {
            totals: [0; Counter::COUNT],
            metrics: Vec::new(),
            gauges: Vec::new(),
            events: Vec::new(),
            seen: HashSet::new(),
            open_colls: HashMap::new(),
            beacons: 0,
            last_seq: None,
            min_skew_us: i64::MAX,
            storm_latched: false,
            calm: 0,
        }
    }
}

/// Per-shard ingest state.
struct ShardState {
    last: Option<ShardSample>,
    /// `(recv_micros_since_collector_start, sample)` history, bounded.
    history: Vec<(u64, ShardSample)>,
    beacons: u64,
    min_skew_us: i64,
    /// Latest fairness index over the per-input forwarding deltas.
    fairness: f64,
    capture_latched: bool,
    calm: u32,
}

impl ShardState {
    fn new() -> Self {
        ShardState {
            last: None,
            history: Vec::new(),
            beacons: 0,
            min_skew_us: i64::MAX,
            fairness: 1.0,
            capture_latched: false,
            calm: 0,
        }
    }
}

/// Bound on deduplicated trace events retained per endpoint.
const EVENT_CAP: usize = 8192;
/// Bound on shard samples retained per shard.
const SHARD_HISTORY_CAP: usize = 512;
/// Bound on retained alarms (counts keep accumulating past it).
const ALARM_CAP: usize = 1024;

/// Ingests telemetry beacons and serves rolling Prometheus text, merged
/// chrome-trace windows, and typed health alarms. See the module docs.
pub struct Collector {
    sock: Option<UdpSocket>,
    endpoints: BTreeMap<u16, EndpointState>,
    shards: BTreeMap<u16, ShardState>,
    config: DetectorConfig,
    alarms: Vec<Alarm>,
    storm_alarms: u64,
    incast_alarms: u64,
    dead_peer_alarms: u64,
    /// Collective durations (end tick − begin tick) per collective kind.
    coll_durations: BTreeMap<u8, Histogram>,
    pub stats: CollectorStats,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A socketless collector (feed it with [`Collector::ingest`] — the
    /// deterministic path tests use).
    pub fn new() -> Self {
        Self::with_config(DetectorConfig::default())
    }

    pub fn with_config(config: DetectorConfig) -> Self {
        Collector {
            sock: None,
            endpoints: BTreeMap::new(),
            shards: BTreeMap::new(),
            config,
            alarms: Vec::new(),
            storm_alarms: 0,
            incast_alarms: 0,
            dead_peer_alarms: 0,
            coll_durations: BTreeMap::new(),
            stats: CollectorStats::default(),
        }
    }

    /// Bind the ingest socket (nonblocking) — `"127.0.0.1:0"` for an
    /// ephemeral loopback port, then read it back with
    /// [`Collector::local_addr`] and hand it to the beaconers.
    pub fn bind(addr: &str) -> io::Result<Self> {
        let mut c = Self::new();
        let sock = UdpSocket::bind(addr)?;
        sock.set_nonblocking(true)?;
        c.sock = Some(sock);
        Ok(c)
    }

    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.sock.as_ref().and_then(|s| s.local_addr().ok())
    }

    fn unix_micros() -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
    }

    /// Drain the socket, ingesting every waiting datagram. Returns how
    /// many beacons were accepted this call.
    pub fn poll(&mut self) -> usize {
        let Some(sock) = self.sock.take() else { return 0 };
        let mut buf = [0u8; beacon::MAX_BEACON_BYTES];
        let mut accepted = 0;
        loop {
            match sock.recv_from(&mut buf) {
                Ok((n, _)) => {
                    if self.ingest(&buf[..n], Self::unix_micros()).is_ok() {
                        accepted += 1;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        self.sock = Some(sock);
        accepted
    }

    /// Ingest one datagram received at `recv_micros` (Unix micros — the
    /// same clock the beacon timestamps use). Public so tests and
    /// single-process harnesses can bypass the socket.
    pub fn ingest(&mut self, datagram: &[u8], recv_micros: u64) -> Result<(), BeaconError> {
        self.stats.datagrams += 1;
        let b = match beacon::decode(datagram) {
            Ok(b) => b,
            Err(e) => {
                match e {
                    BeaconError::BadCrc => self.stats.crc_rejected += 1,
                    BeaconError::BadMagic | BeaconError::BadVersion(_) => self.stats.foreign += 1,
                    _ => self.stats.malformed += 1,
                }
                return Err(e);
            }
        };
        self.stats.beacons += 1;
        let skew = recv_micros as i64 - b.sent_micros as i64;
        match b.body {
            BeaconBody::Endpoint(body) => self.ingest_endpoint(b.source, b.seq, skew, body),
            BeaconBody::Shard(body) => self.ingest_shard(b.source, b.seq, skew, recv_micros, body),
        }
        Ok(())
    }

    fn push_alarm(&mut self, a: Alarm) {
        match a {
            Alarm::RetransmitStorm { .. } => self.storm_alarms += 1,
            Alarm::IncastCapture { .. } => self.incast_alarms += 1,
            Alarm::DeadPeer { .. } => self.dead_peer_alarms += 1,
        }
        if self.alarms.len() < ALARM_CAP {
            self.alarms.push(a);
        }
    }

    fn ingest_endpoint(&mut self, source: u16, seq: u32, skew: i64, body: beacon::EndpointBeacon) {
        let cfg = self.config;
        let st = self.endpoints.entry(source).or_insert_with(EndpointState::new);
        st.beacons += 1;
        st.min_skew_us = st.min_skew_us.min(skew);
        if let Some(last) = st.last_seq {
            let gap = seq.wrapping_sub(last);
            // A forward gap is lost beacons; a sequence that jumps
            // *backwards* (huge wrapped "gap") is a restarted source —
            // a new beaconer reusing the node id — not a loss signal.
            if gap > 1 && gap < u32::MAX / 2 {
                self.stats.seq_gaps += (gap - 1) as u64;
            }
        }
        st.last_seq = Some(seq);

        // Counter deltas against the previous beacon's cumulative values.
        let mut deltas = [0u64; Counter::COUNT];
        for (i, d) in deltas.iter_mut().enumerate() {
            let new = body.counters.get(i).copied().unwrap_or(st.totals[i]);
            *d = new.saturating_sub(st.totals[i]);
            st.totals[i] = new.max(st.totals[i]);
        }
        st.metrics = body.metrics;
        st.gauges = body.gauges;

        // Deduplicate the overlapping last-N event windows, then fold any
        // fresh collective begin/end pairs into the duration histograms.
        let mut fresh_colls: Vec<(u8, u64)> = Vec::new();
        for ev in body.events {
            if !st.seen.insert(ev) {
                continue;
            }
            match ev.kind {
                EventKind::CollBegin { coll, epoch } => {
                    st.open_colls.insert((coll, epoch), ev.tick);
                }
                EventKind::CollEnd { coll, epoch } => {
                    if let Some(begin) = st.open_colls.remove(&(coll, epoch)) {
                        fresh_colls.push((coll, ev.tick.saturating_sub(begin)));
                    }
                }
                _ => {}
            }
            st.events.push(ev);
        }
        if st.events.len() > EVENT_CAP {
            let cut = st.events.len() - EVENT_CAP;
            st.events.drain(..cut);
        }

        // Detectors.
        let retransmits = deltas[Counter::Retransmits as usize];
        let sends = deltas[Counter::Sends as usize];
        let stormy = retransmits >= cfg.storm_min_retransmits
            && retransmits as f64 >= cfg.storm_ratio * sends as f64;
        let mut fire_storm = false;
        if stormy {
            st.calm = 0;
            if !st.storm_latched {
                st.storm_latched = true;
                fire_storm = true;
            }
        } else if st.storm_latched {
            st.calm += 1;
            if st.calm >= cfg.calm_beacons {
                st.storm_latched = false;
                st.calm = 0;
            }
        }
        let dead = deltas[Counter::DeadPeers as usize];
        if fire_storm {
            self.push_alarm(Alarm::RetransmitStorm { node: source, retransmits, sends });
        }
        if dead > 0 {
            self.push_alarm(Alarm::DeadPeer { node: source, dead_peers: dead });
        }
        for (coll, dur) in fresh_colls {
            self.coll_durations.entry(coll).or_default().record(dur);
        }
    }

    fn ingest_shard(
        &mut self,
        source: u16,
        _seq: u32,
        skew: i64,
        recv_micros: u64,
        body: ShardSample,
    ) {
        let cfg = self.config;
        let st = self.shards.entry(source).or_insert_with(ShardState::new);
        st.beacons += 1;
        st.min_skew_us = st.min_skew_us.min(skew);

        // Per-input forwarding deltas since the last beacon drive the
        // fairness detector; the first beacon only sets the baseline.
        let mut fire = None;
        if let Some(prev) = &st.last {
            let n = body.input_forwarded.len().max(prev.input_forwarded.len());
            let mut deltas = Vec::with_capacity(n);
            for i in 0..n {
                let new = body.input_forwarded.get(i).copied().unwrap_or(0);
                let old = prev.input_forwarded.get(i).copied().unwrap_or(0);
                deltas.push(new.saturating_sub(old));
            }
            let frames: u64 = deltas.iter().sum();
            let active = deltas.iter().filter(|&&d| d > 0).count();
            // Fairness over the inputs that *could* have forwarded: every
            // input that has ever carried traffic on this shard. Idle-
            // since-boot ports (an unused trunk) don't count against it.
            let ever_active: Vec<u64> = deltas
                .iter()
                .enumerate()
                .filter(|(i, _)| body.input_forwarded.get(*i).copied().unwrap_or(0) > 0)
                .map(|(_, &d)| d)
                .collect();
            let fairness = jain_fairness(&ever_active);
            st.fairness = fairness;
            let captured = frames >= cfg.fairness_min_frames
                && active.max(ever_active.len()) >= cfg.fairness_min_active
                && fairness < cfg.fairness_min;
            if captured {
                st.calm = 0;
                if !st.capture_latched {
                    st.capture_latched = true;
                    fire = Some(Alarm::IncastCapture { switch: source, fairness, frames });
                }
            } else if st.capture_latched {
                st.calm += 1;
                if st.calm >= cfg.calm_beacons {
                    st.capture_latched = false;
                    st.calm = 0;
                }
            }
        }
        st.last = Some(body.clone());
        if st.history.len() >= SHARD_HISTORY_CAP {
            st.history.remove(0);
        }
        st.history.push((recv_micros, body));
        if let Some(a) = fire {
            self.push_alarm(a);
        }
    }

    // ---- reads -------------------------------------------------------------

    /// Every alarm raised so far, in ingest order (bounded; the counts
    /// keep going past the bound).
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// `(retransmit_storm, incast_capture, dead_peer)` alarm totals.
    pub fn alarm_counts(&self) -> (u64, u64, u64) {
        (self.storm_alarms, self.incast_alarms, self.dead_peer_alarms)
    }

    /// Distinct endpoint sources seen.
    pub fn endpoint_sources(&self) -> Vec<u16> {
        self.endpoints.keys().copied().collect()
    }

    /// Distinct shard sources seen.
    pub fn shard_sources(&self) -> Vec<u16> {
        self.shards.keys().copied().collect()
    }

    /// Beacons accepted from endpoint `node`.
    pub fn endpoint_beacons(&self, node: u16) -> u64 {
        self.endpoints.get(&node).map_or(0, |s| s.beacons)
    }

    /// Latest cumulative value of `c` on `node`.
    pub fn counter(&self, node: u16, c: Counter) -> u64 {
        self.endpoints.get(&node).map_or(0, |s| s.totals[c as usize])
    }

    /// Minimum observed sender→collector skew for an endpoint, micros
    /// (clock offset plus minimum network delay — the beacon-timestamp
    /// clock sync). `None` before the first beacon.
    pub fn endpoint_skew_us(&self, node: u16) -> Option<i64> {
        self.endpoints
            .get(&node)
            .filter(|s| s.min_skew_us != i64::MAX)
            .map(|s| s.min_skew_us)
    }

    /// Latest per-input forwarding fairness for a shard (1.0 before two
    /// beacons have arrived).
    pub fn shard_fairness(&self, switch: u16) -> f64 {
        self.shards.get(&switch).map_or(1.0, |s| s.fairness)
    }

    /// Merge every endpoint's collected trace events into one aligned
    /// cluster timeline (the PR-4 machinery, fed from beacons instead of
    /// in-process rings).
    pub fn merged(&self) -> MergeReport {
        let per_node: Vec<Vec<TraceEvent>> =
            self.endpoints.values().map(|s| s.events.clone()).collect();
        merge::merge(&per_node)
    }

    /// The merged timeline as a chrome-trace document, with one counter
    /// lane per switch shard (queue-depth quantiles and per-window
    /// forwarding rate) spliced in.
    pub fn chrome_trace(&self) -> String {
        let mut lanes = Vec::new();
        for (&switch, st) in &self.shards {
            lanes.extend(shard_lane_fragments(switch, &st.history));
        }
        self.merged().chrome_trace_with(&lanes)
    }

    /// Prometheus text exposition of everything the collector knows. All
    /// values are finite by construction (counters are integers; the only
    /// float, fairness, is clamped into `[0, 1]` by its formula) — no NaN
    /// can appear.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        // Ingest meta.
        out.push_str(
            "# HELP fm_beacons_total Beacons accepted, by source kind.\n\
             # TYPE fm_beacons_total counter\n",
        );
        for (&n, st) in &self.endpoints {
            out.push_str(&format!(
                "fm_beacons_total{{kind=\"endpoint\",source=\"{n}\"}} {}\n",
                st.beacons
            ));
        }
        for (&sw, st) in &self.shards {
            out.push_str(&format!(
                "fm_beacons_total{{kind=\"shard\",source=\"{sw}\"}} {}\n",
                st.beacons
            ));
        }
        for (name, v) in [
            ("crc_rejected", self.stats.crc_rejected),
            ("malformed", self.stats.malformed),
            ("foreign", self.stats.foreign),
            ("seq_gaps", self.stats.seq_gaps),
        ] {
            out.push_str(&format!(
                "# TYPE fm_beacon_{name}_total counter\nfm_beacon_{name}_total {v}\n"
            ));
        }
        // Endpoint counters (cumulative, as shipped).
        for c in Counter::ALL {
            out.push_str(&format!(
                "# HELP fm_{name}_total Total {name} reported by beacons.\n\
                 # TYPE fm_{name}_total counter\n",
                name = c.name()
            ));
            for (&n, st) in &self.endpoints {
                out.push_str(&format!(
                    "fm_{}_total{{node=\"{n}\"}} {}\n",
                    c.name(),
                    st.totals[c as usize]
                ));
            }
        }
        // Metric summaries.
        for (i, m) in crate::Metric::ALL.iter().enumerate() {
            out.push_str(&format!(
                "# HELP fm_{name} {name} distribution summary (from beacons).\n\
                 # TYPE fm_{name} summary\n",
                name = m.name()
            ));
            for (&n, st) in &self.endpoints {
                let Some(mo) = st.metrics.get(i) else { continue };
                let s = mo.summary;
                for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                    out.push_str(&format!(
                        "fm_{}{{node=\"{n}\",quantile=\"{q}\"}} {v}\n",
                        m.name()
                    ));
                }
                out.push_str(&format!("fm_{}_count{{node=\"{n}\"}} {}\n", m.name(), s.count));
            }
        }
        // Named transport gauges (UdpStats, peer_resets, ...).
        let mut gauge_names: Vec<String> = self
            .endpoints
            .values()
            .flat_map(|s| s.gauges.iter().map(|(n, _)| n.clone()))
            .collect();
        gauge_names.sort();
        gauge_names.dedup();
        for g in &gauge_names {
            let san = sanitize_metric_name(g);
            out.push_str(&format!("# TYPE fm_{san} gauge\n"));
            for (&n, st) in &self.endpoints {
                if let Some((_, v)) = st.gauges.iter().find(|(name, _)| name == g) {
                    out.push_str(&format!("fm_{san}{{node=\"{n}\"}} {v}\n"));
                }
            }
        }
        // Clock skew per source.
        out.push_str(
            "# HELP fm_beacon_skew_us Minimum observed sender-to-collector skew \
             (clock offset + min delay), micros.\n# TYPE fm_beacon_skew_us gauge\n",
        );
        for (&n, st) in &self.endpoints {
            if st.min_skew_us != i64::MAX {
                out.push_str(&format!(
                    "fm_beacon_skew_us{{kind=\"endpoint\",source=\"{n}\"}} {}\n",
                    st.min_skew_us
                ));
            }
        }
        for (&sw, st) in &self.shards {
            if st.min_skew_us != i64::MAX {
                out.push_str(&format!(
                    "fm_beacon_skew_us{{kind=\"shard\",source=\"{sw}\"}} {}\n",
                    st.min_skew_us
                ));
            }
        }
        // Shard lanes.
        out.push_str(&shard_prometheus(&self.shards));
        // Collective span timings.
        out.push_str(
            "# HELP fm_collective_duration_ticks Collective call duration \
             (rank-local ticks), from collective spans.\n\
             # TYPE fm_collective_duration_ticks summary\n",
        );
        for (&coll, h) in &self.coll_durations {
            let name = coll_kind_name(coll);
            for (q, v) in
                [("0.5", h.quantile(0.5)), ("0.9", h.quantile(0.9)), ("0.99", h.quantile(0.99))]
            {
                out.push_str(&format!(
                    "fm_collective_duration_ticks{{coll=\"{name}\",quantile=\"{q}\"}} {v}\n"
                ));
            }
            out.push_str(&format!(
                "fm_collective_duration_ticks_count{{coll=\"{name}\"}} {}\n",
                h.count()
            ));
        }
        // Alarms.
        out.push_str(
            "# HELP fm_alarms_total Health-detector alarms raised.\n\
             # TYPE fm_alarms_total counter\n",
        );
        for (name, v) in [
            ("retransmit_storm", self.storm_alarms),
            ("incast_capture", self.incast_alarms),
            ("dead_peer", self.dead_peer_alarms),
        ] {
            out.push_str(&format!("fm_alarms_total{{detector=\"{name}\"}} {v}\n"));
        }
        // Shard fairness (latest window).
        out.push_str("# TYPE fm_shard_fairness gauge\n");
        for (&sw, st) in &self.shards {
            out.push_str(&format!("fm_shard_fairness{{switch=\"{sw}\"}} {:.4}\n", st.fairness));
        }
        out
    }
}

/// Sanitize a wire-supplied gauge name into a Prometheus metric-name
/// fragment (`[a-zA-Z0-9_]`, anything else becomes `_`).
fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect()
}

/// Render the per-shard series every scrape surface shares: queue-depth
/// quantiles, DRR deficits, per-port forwarding totals, drop/stall
/// counters. `latest` maps switch id → its newest sample.
pub(crate) fn shard_series_prometheus<'a>(
    latest: impl Iterator<Item = (u16, &'a ShardSample)>,
) -> String {
    let samples: Vec<(u16, &ShardSample)> = latest.collect();
    let mut out = String::new();
    out.push_str(
        "# HELP fm_shard_queue_depth Switch shard poll-occupancy (frames per \
         sampled service turn).\n# TYPE fm_shard_queue_depth summary\n",
    );
    for (sw, s) in &samples {
        for (q, v) in
            [("0.5", s.occupancy.p50), ("0.9", s.occupancy.p90), ("0.99", s.occupancy.p99)]
        {
            out.push_str(&format!(
                "fm_shard_queue_depth{{switch=\"{sw}\",quantile=\"{q}\"}} {v}\n"
            ));
        }
        out.push_str(&format!(
            "fm_shard_queue_depth_count{{switch=\"{sw}\"}} {}\n",
            s.occupancy.count
        ));
    }
    out.push_str(
        "# HELP fm_shard_deficit DRR deficit per input port, bytes.\n\
         # TYPE fm_shard_deficit gauge\n",
    );
    for (sw, s) in &samples {
        for (i, d) in s.deficits.iter().enumerate() {
            out.push_str(&format!("fm_shard_deficit{{switch=\"{sw}\",input=\"{i}\"}} {d}\n"));
        }
    }
    out.push_str("# TYPE fm_shard_input_forwarded_total counter\n");
    for (sw, s) in &samples {
        for (i, v) in s.input_forwarded.iter().enumerate() {
            out.push_str(&format!(
                "fm_shard_input_forwarded_total{{switch=\"{sw}\",input=\"{i}\"}} {v}\n"
            ));
        }
    }
    out.push_str("# TYPE fm_shard_output_forwarded_total counter\n");
    for (sw, s) in &samples {
        for (i, v) in s.output_forwarded.iter().enumerate() {
            out.push_str(&format!(
                "fm_shard_output_forwarded_total{{switch=\"{sw}\",output=\"{i}\"}} {v}\n"
            ));
        }
    }
    for (name, get) in [
        ("forwarded", &(|s: &ShardSample| s.forwarded) as &dyn Fn(&ShardSample) -> u64),
        ("stalled", &|s: &ShardSample| s.stalled),
        ("dropped", &|s: &ShardSample| s.dropped),
        ("timed_out", &|s: &ShardSample| s.timed_out),
    ] {
        out.push_str(&format!("# TYPE fm_shard_{name}_total counter\n"));
        for (sw, s) in &samples {
            out.push_str(&format!("fm_shard_{name}_total{{switch=\"{sw}\"}} {}\n", get(s)));
        }
    }
    out.push_str("# TYPE fm_shard_batch gauge\n");
    for (sw, s) in &samples {
        out.push_str(&format!("fm_shard_batch{{switch=\"{sw}\"}} {}\n", s.batch));
    }
    out
}

fn shard_prometheus(shards: &BTreeMap<u16, ShardState>) -> String {
    shard_series_prometheus(
        shards
            .iter()
            .filter_map(|(&sw, st)| st.last.as_ref().map(|s| (sw, s))),
    )
}

/// Chrome-trace counter-lane fragments for one shard's sample history:
/// a `queue_depth` counter track (p50/p99) and a `forwarded` rate track
/// (delta per window), on a dedicated pid so Perfetto draws them as lanes
/// under "switch N". `history` is `(ts, sample)` with `ts` in the
/// document's time unit.
pub fn shard_lane_fragments(switch: u16, history: &[(u64, ShardSample)]) -> Vec<String> {
    if history.is_empty() {
        return Vec::new();
    }
    // Shard lanes sit far above any endpoint pid (node ids are u16).
    let pid = 100_000 + switch as u64;
    let t0 = history[0].0;
    let mut out = vec![format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"switch {switch}\"}}}}"
    )];
    let mut prev_fwd = None;
    for (at, s) in history {
        let ts = at - t0;
        out.push(format!(
            "{{\"name\":\"queue_depth\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"p50\":{},\"p99\":{}}}}}",
            s.occupancy.p50, s.occupancy.p99
        ));
        let fwd = s.forwarded;
        let delta = prev_fwd.map_or(0, |p: u64| fwd.saturating_sub(p));
        prev_fwd = Some(fwd);
        out.push(format!(
            "{{\"name\":\"forwarded\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"frames\":{delta}}}}}"
        ));
        let max_deficit = s.deficits.iter().copied().max().unwrap_or(0);
        out.push(format!(
            "{{\"name\":\"max_deficit\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"bytes\":{max_deficit}}}}}"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beacon::{encode, Beacon, BeaconBody, EndpointBeacon};
    use crate::hist::HistSummary;

    fn endpoint_beacon(
        source: u16,
        seq: u32,
        sent: u64,
        counters: Vec<u64>,
        events: Vec<TraceEvent>,
    ) -> Vec<u8> {
        encode(&Beacon {
            source,
            seq,
            sent_micros: sent,
            body: BeaconBody::Endpoint(EndpointBeacon {
                counters,
                metrics: vec![],
                gauges: vec![("udp_datagrams_out".into(), 5)],
                events,
            }),
        })
    }

    fn counters(sends: u64, retransmits: u64, dead: u64) -> Vec<u64> {
        let mut c = vec![0u64; Counter::COUNT];
        c[Counter::Sends as usize] = sends;
        c[Counter::Retransmits as usize] = retransmits;
        c[Counter::DeadPeers as usize] = dead;
        c
    }

    fn shard_beacon(switch: u16, seq: u32, input_forwarded: Vec<u64>) -> Vec<u8> {
        let forwarded = input_forwarded.iter().sum();
        encode(&Beacon {
            source: switch,
            seq,
            sent_micros: 1_000 + seq as u64,
            body: BeaconBody::Shard(ShardSample {
                switch_id: switch,
                forwarded,
                stalled: 0,
                dropped: 0,
                timed_out: 0,
                batch: 8,
                occupancy: HistSummary { count: 4, min: 1, max: 8, p50: 2, p90: 6, p99: 8 },
                occupancy_octaves: vec![(0, 4)],
                deficits: vec![0; input_forwarded.len()],
                input_forwarded,
                output_forwarded: vec![forwarded],
            }),
        })
    }

    #[test]
    fn jain_fairness_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0, 0, 0]), 1.0);
        assert!((jain_fairness(&[5, 5, 5, 5]) - 1.0).abs() < 1e-9);
        let captured = jain_fairness(&[1000, 0, 0, 0]);
        assert!((captured - 0.25).abs() < 1e-9, "1/n when one input has all");
    }

    #[test]
    fn counters_delta_across_beacons_and_survive_loss() {
        let mut c = Collector::new();
        c.ingest(&endpoint_beacon(3, 0, 100, counters(10, 0, 0), vec![]), 150).unwrap();
        // Beacon seq 1 lost; seq 2 arrives with a bigger cumulative count.
        c.ingest(&endpoint_beacon(3, 2, 300, counters(50, 0, 0), vec![]), 350).unwrap();
        assert_eq!(c.counter(3, Counter::Sends), 50, "cumulative, not doubled");
        assert_eq!(c.stats.seq_gaps, 1);
        assert_eq!(c.endpoint_beacons(3), 2);
        assert_eq!(c.endpoint_skew_us(3), Some(50), "min recv-sent skew");
        // A restarted beaconer (seq back at 0) is not a giant loss gap.
        c.ingest(&endpoint_beacon(3, 0, 400, counters(50, 0, 0), vec![]), 450).unwrap();
        assert_eq!(c.stats.seq_gaps, 1, "backwards seq means restart, not loss");
    }

    #[test]
    fn storm_detector_fires_once_per_episode() {
        let mut c = Collector::new();
        // Baseline.
        c.ingest(&endpoint_beacon(0, 0, 0, counters(100, 0, 0), vec![]), 1).unwrap();
        // Three consecutive stormy windows: one alarm.
        c.ingest(&endpoint_beacon(0, 1, 10, counters(300, 150, 0), vec![]), 11).unwrap();
        c.ingest(&endpoint_beacon(0, 2, 20, counters(500, 300, 0), vec![]), 21).unwrap();
        c.ingest(&endpoint_beacon(0, 3, 30, counters(700, 450, 0), vec![]), 31).unwrap();
        assert_eq!(c.alarm_counts().0, 1, "latched while the storm persists");
        // Calm re-arm, then a second episode: second alarm.
        for s in 4..8 {
            c.ingest(
                &endpoint_beacon(0, s, s as u64 * 10, counters(700 + s as u64, 450, 0), vec![]),
                s as u64 * 10 + 1,
            )
            .unwrap();
        }
        c.ingest(&endpoint_beacon(0, 8, 80, counters(1200, 800, 0), vec![]), 81).unwrap();
        assert_eq!(c.alarm_counts().0, 2, "re-armed after calm");
        assert!(matches!(
            c.alarms()[0],
            Alarm::RetransmitStorm { node: 0, retransmits: 150, sends: 200 }
        ));
    }

    #[test]
    fn quiet_endpoint_never_storms() {
        let mut c = Collector::new();
        c.ingest(&endpoint_beacon(1, 0, 0, counters(0, 0, 0), vec![]), 1).unwrap();
        // Busy but clean, and lightly lossy below both thresholds.
        c.ingest(&endpoint_beacon(1, 1, 10, counters(10_000, 30, 0), vec![]), 11).unwrap();
        c.ingest(&endpoint_beacon(1, 2, 20, counters(20_000, 600, 0), vec![]), 21).unwrap();
        assert_eq!(c.alarm_counts().0, 0, "ratio guard holds");
    }

    #[test]
    fn dead_peer_fires_exactly_once_per_advance() {
        let mut c = Collector::new();
        c.ingest(&endpoint_beacon(5, 0, 0, counters(10, 0, 0), vec![]), 1).unwrap();
        c.ingest(&endpoint_beacon(5, 1, 10, counters(10, 0, 1), vec![]), 11).unwrap();
        // Same cumulative value repeated: no re-fire.
        c.ingest(&endpoint_beacon(5, 2, 20, counters(10, 0, 1), vec![]), 21).unwrap();
        c.ingest(&endpoint_beacon(5, 3, 30, counters(10, 0, 1), vec![]), 31).unwrap();
        assert_eq!(c.alarm_counts().2, 1);
        assert!(matches!(c.alarms()[0], Alarm::DeadPeer { node: 5, dead_peers: 1 }));
    }

    #[test]
    fn incast_capture_fires_on_fairness_collapse() {
        let mut c = Collector::new();
        // Fair baseline and a fair window: no alarm.
        c.ingest(&shard_beacon(2, 0, vec![100, 100, 100, 100]), 1).unwrap();
        c.ingest(&shard_beacon(2, 1, vec![200, 200, 200, 200]), 2).unwrap();
        assert_eq!(c.alarm_counts().1, 0);
        assert!(c.shard_fairness(2) > 0.99);
        // One input hogs the next window: alarm, exactly once while latched.
        c.ingest(&shard_beacon(2, 2, vec![1200, 201, 201, 201]), 3).unwrap();
        c.ingest(&shard_beacon(2, 3, vec![2200, 202, 202, 202]), 4).unwrap();
        assert_eq!(c.alarm_counts().1, 1);
        assert!(c.shard_fairness(2) < 0.5);
        let Alarm::IncastCapture { switch, fairness, .. } = c.alarms()[0] else {
            panic!("incast alarm")
        };
        assert_eq!(switch, 2);
        assert!(fairness < 0.5);
    }

    #[test]
    fn events_dedup_across_overlapping_beacons_and_merge() {
        let mut c = Collector::new();
        let send = TraceEvent {
            tick: 100,
            node: 0,
            kind: EventKind::SpanSend { trace: 7, hop: 0, dst: 1 },
        };
        let recv = TraceEvent {
            tick: 160,
            node: 1,
            kind: EventKind::SpanWireIn { trace: 7, hop: 0, src: 0 },
        };
        // The same send ships in two overlapping beacon windows.
        c.ingest(&endpoint_beacon(0, 0, 0, counters(1, 0, 0), vec![send]), 1).unwrap();
        c.ingest(&endpoint_beacon(0, 1, 10, counters(2, 0, 0), vec![send]), 11).unwrap();
        c.ingest(&endpoint_beacon(1, 0, 5, counters(0, 0, 0), vec![recv]), 15).unwrap();
        let report = c.merged();
        assert_eq!(report.flow_pairs(), 1, "deduped to one flow");
        assert_eq!(report.causal_violations, 0);
    }

    #[test]
    fn collective_spans_become_duration_series() {
        let mut c = Collector::new();
        let evs = vec![
            TraceEvent { tick: 1000, node: 0, kind: EventKind::CollBegin { coll: 0, epoch: 1 } },
            TraceEvent {
                tick: 1010,
                node: 0,
                kind: EventKind::CollRoundBegin { coll: 0, epoch: 1, round: 0, peer: 1 },
            },
            TraceEvent {
                tick: 1050,
                node: 0,
                kind: EventKind::CollRoundEnd { coll: 0, epoch: 1, round: 0 },
            },
            TraceEvent { tick: 1100, node: 0, kind: EventKind::CollEnd { coll: 0, epoch: 1 } },
            TraceEvent { tick: 2000, node: 0, kind: EventKind::CollBegin { coll: 3, epoch: 1 } },
            TraceEvent { tick: 2500, node: 0, kind: EventKind::CollEnd { coll: 3, epoch: 1 } },
        ];
        c.ingest(&endpoint_beacon(0, 0, 0, counters(0, 0, 0), evs), 1).unwrap();
        let prom = c.prometheus();
        assert!(prom.contains("fm_collective_duration_ticks{coll=\"barrier\",quantile=\"0.5\"}"));
        assert!(prom.contains("fm_collective_duration_ticks_count{coll=\"barrier\"} 1"));
        assert!(prom.contains("fm_collective_duration_ticks_count{coll=\"allreduce\"} 1"));
    }

    #[test]
    fn prometheus_has_shard_lanes_gauges_and_no_nan() {
        let mut c = Collector::new();
        c.ingest(&shard_beacon(0, 0, vec![10, 20]), 1).unwrap();
        c.ingest(&shard_beacon(0, 1, vec![30, 40]), 2).unwrap();
        c.ingest(&endpoint_beacon(4, 0, 0, counters(9, 0, 0), vec![]), 3).unwrap();
        let prom = c.prometheus();
        for needle in [
            "fm_shard_queue_depth{switch=\"0\",quantile=\"0.99\"}",
            "fm_shard_deficit{switch=\"0\",input=\"1\"}",
            "fm_shard_input_forwarded_total{switch=\"0\",input=\"0\"} 30",
            "fm_shard_output_forwarded_total{switch=\"0\",output=\"0\"}",
            "fm_shard_fairness{switch=\"0\"}",
            "fm_udp_datagrams_out{node=\"4\"} 5",
            "fm_sends_total{node=\"4\"} 9",
            "fm_alarms_total{detector=\"retransmit_storm\"} 0",
            "fm_alarms_total{detector=\"incast_capture\"} 0",
            "fm_alarms_total{detector=\"dead_peer\"} 0",
            "fm_beacons_total{kind=\"shard\",source=\"0\"} 2",
            "fm_beacon_crc_rejected_total 0",
        ] {
            assert!(prom.contains(needle), "missing {needle} in:\n{prom}");
        }
        assert!(!prom.contains("NaN") && !prom.contains("inf"), "finite values only");
    }

    #[test]
    fn chrome_trace_includes_shard_lanes() {
        let mut c = Collector::new();
        c.ingest(&shard_beacon(1, 0, vec![10, 10]), 100).unwrap();
        c.ingest(&shard_beacon(1, 1, vec![60, 60]), 200).unwrap();
        let send = TraceEvent {
            tick: 5,
            node: 0,
            kind: EventKind::SpanSend { trace: 1, hop: 0, dst: 1 },
        };
        c.ingest(&endpoint_beacon(0, 0, 0, counters(1, 0, 0), vec![send]), 150).unwrap();
        let doc = c.chrome_trace();
        assert!(doc.contains("\"name\":\"switch 1\""), "shard lane labeled");
        assert!(doc.contains("\"name\":\"queue_depth\"") && doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"args\":{\"frames\":100}"), "forwarding delta lane");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn rejects_are_counted_not_fatal() {
        let mut c = Collector::new();
        assert!(c.ingest(b"not a beacon at all........", 0).is_err());
        let mut wire = endpoint_beacon(0, 0, 0, counters(1, 0, 0), vec![]);
        let mid = wire.len() / 2;
        wire[mid] ^= 1;
        assert!(c.ingest(&wire, 0).is_err());
        assert_eq!(c.stats.crc_rejected, 1);
        assert_eq!(c.stats.foreign, 1);
        assert_eq!(c.stats.beacons, 0);
    }

    #[test]
    fn socket_poll_end_to_end() {
        let mut c = Collector::bind("127.0.0.1:0").expect("bind collector");
        let addr = c.local_addr().expect("bound");
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        tx.send_to(&endpoint_beacon(9, 0, 0, counters(3, 0, 0), vec![]), addr).unwrap();
        tx.send_to(&shard_beacon(0, 0, vec![1, 2]), addr).unwrap();
        let mut got = 0;
        for _ in 0..500 {
            got += c.poll();
            if got >= 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, 2, "both beacons ingested");
        assert_eq!(c.endpoint_sources(), vec![9]);
        assert_eq!(c.shard_sources(), vec![0]);
    }
}
