//! Merge per-endpoint trace rings into one clock-aligned cluster timeline.
//!
//! Input: each endpoint's retained [`TraceEvent`]s (its bounded ring,
//! stamped with its own virtual clock). Output: a [`MergeReport`] holding
//! every event on one shared time axis (offsets estimated by
//! [`crate::clocksync`]), plus the cross-endpoint *flow pairing* — each
//! traced `(trace, hop)` send matched to the wire-in event it produced on
//! the receiving node. Dropped frames, overwritten ring entries and
//! messages still in flight leave *orphan* spans; they are counted, never
//! panicked over, because a lossy fabric makes them a fact of life.
//!
//! [`MergeReport::chrome_trace`] renders the timeline as a chrome-trace
//! JSON document (`chrome://tracing` / Perfetto): one process lane per
//! endpoint, short duration slices for the send / wire-in / handler spans,
//! instants for the rest, and `s`/`f` flow arrows tying each message's
//! send slice to its receive slice across lanes.

use crate::clocksync::ClusterClock;
use crate::trace::{EventKind, TraceEvent};
use std::collections::HashMap;

/// One event on the merged cluster timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergedEvent {
    /// Clock-aligned timestamp (reference-node ticks, shifted so the
    /// earliest merged event sits at 0).
    pub ts: i64,
    /// The endpoint that recorded the event.
    pub node: u16,
    /// The endpoint's own clock reading (pre-alignment), for debugging
    /// the alignment itself.
    pub raw_tick: u64,
    pub kind: EventKind,
}

/// One cross-endpoint flow arrow: a traced send paired with the wire-in
/// it caused on the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowPair {
    pub trace: u32,
    pub hop: u16,
    pub src: u16,
    pub dst: u16,
    /// Aligned send / receive timestamps. `recv_ts < send_ts` is an
    /// alignment failure, counted in [`MergeReport::causal_violations`].
    pub send_ts: i64,
    pub recv_ts: i64,
}

/// The merged timeline plus pairing statistics.
#[derive(Debug, Clone)]
pub struct MergeReport {
    /// The per-node clock alignment used.
    pub clock: ClusterClock,
    /// All events, sorted by aligned timestamp.
    pub events: Vec<MergedEvent>,
    /// Every traced send matched to exactly one receive.
    pub flows: Vec<FlowPair>,
    /// Traced sends with no surviving wire-in (frame dropped, peer dead,
    /// in flight, or receiver ring overwrote it).
    pub orphan_sends: usize,
    /// Wire-ins whose send span did not survive (sender ring overwrote
    /// it).
    pub orphan_receives: usize,
    /// Flow pairs whose aligned receive precedes their aligned send.
    /// Paired flows feed [`ClusterClock::constrain`] before alignment, so
    /// this stays zero unless a flow touches an unaligned node.
    pub causal_violations: usize,
}

impl MergeReport {
    pub fn flow_pairs(&self) -> usize {
        self.flows.len()
    }

    /// Render as a chrome-trace JSON document.
    pub fn chrome_trace(&self) -> String {
        self.chrome_trace_with(&[])
    }

    /// Render as a chrome-trace JSON document, splicing `extra` event
    /// fragments (already-serialized JSON objects, e.g. the per-shard
    /// counter lanes from [`crate::collector::shard_lane_fragments`]) into
    /// the `traceEvents` array.
    pub fn chrome_trace_with(&self, extra: &[String]) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
        };
        // One process lane per endpoint, labeled.
        let mut nodes: Vec<u16> = self.events.iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        for n in &nodes {
            push(
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{n},\"tid\":0,\
                     \"args\":{{\"name\":\"endpoint {n}\"}}}}"
                ),
                &mut first,
            );
        }
        // Handler start→end combine into one duration slice; starts with
        // no surviving end fall back to instants below.
        let mut handler_ends: HashMap<(u32, u16, u16), i64> = HashMap::new();
        // Collective begin→end and round begin→end fold the same way,
        // keyed by (coll, epoch[, round]) per node.
        let mut coll_ends: HashMap<(u8, u32, u16), i64> = HashMap::new();
        let mut round_ends: HashMap<(u8, u32, u16, u16), i64> = HashMap::new();
        for e in &self.events {
            match e.kind {
                EventKind::SpanHandlerEnd { trace, hop } => {
                    handler_ends.entry((trace, hop, e.node)).or_insert(e.ts);
                }
                EventKind::CollEnd { coll, epoch } => {
                    coll_ends.entry((coll, epoch, e.node)).or_insert(e.ts);
                }
                EventKind::CollRoundEnd { coll, epoch, round } => {
                    round_ends.entry((coll, epoch, round, e.node)).or_insert(e.ts);
                }
                _ => {}
            }
        }
        for e in &self.events {
            let ts = e.ts;
            let args = e.kind.args_json();
            match e.kind {
                // Anchor slices for the flow arrows: chrome binds s/f
                // events to the slice enclosing their timestamp.
                EventKind::SpanSend { .. } | EventKind::SpanWireIn { .. } => {
                    push(
                        format!(
                            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":1,\
                             \"pid\":{},\"tid\":0,\"args\":{args}}}",
                            e.kind.name(),
                            e.node
                        ),
                        &mut first,
                    );
                }
                EventKind::SpanHandlerStart { trace, hop, .. } => {
                    if let Some(&end) = handler_ends.get(&(trace, hop, e.node)) {
                        let dur = (end - ts).max(1);
                        push(
                            format!(
                                "{{\"name\":\"handler\",\"ph\":\"X\",\"ts\":{ts},\
                                 \"dur\":{dur},\"pid\":{},\"tid\":0,\"args\":{args}}}",
                                e.node
                            ),
                            &mut first,
                        );
                    } else {
                        push(instant(e, ts, &args), &mut first);
                    }
                }
                EventKind::SpanHandlerEnd { .. } => { /* folded into the slice */ }
                // Collectives: one slice per call on tid 1, one per round
                // on tid 2, so each endpoint lane shows the collective bar
                // with its rounds nested beneath it.
                EventKind::CollBegin { coll, epoch } => {
                    if let Some(&end) = coll_ends.get(&(coll, epoch, e.node)) {
                        let dur = (end - ts).max(1);
                        push(
                            format!(
                                "{{\"name\":\"{}\",\"cat\":\"coll\",\"ph\":\"X\",\
                                 \"ts\":{ts},\"dur\":{dur},\"pid\":{},\"tid\":1,\
                                 \"args\":{args}}}",
                                crate::trace::coll_kind_name(coll),
                                e.node
                            ),
                            &mut first,
                        );
                    } else {
                        push(instant(e, ts, &args), &mut first);
                    }
                }
                EventKind::CollEnd { .. } => { /* folded into the slice */ }
                EventKind::CollRoundBegin { coll, epoch, round, .. } => {
                    if let Some(&end) = round_ends.get(&(coll, epoch, round, e.node)) {
                        let dur = (end - ts).max(1);
                        push(
                            format!(
                                "{{\"name\":\"{} r{round}\",\"cat\":\"coll\",\
                                 \"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":{},\
                                 \"tid\":2,\"args\":{args}}}",
                                crate::trace::coll_kind_name(coll),
                                e.node
                            ),
                            &mut first,
                        );
                    } else {
                        push(instant(e, ts, &args), &mut first);
                    }
                }
                EventKind::CollRoundEnd { .. } => { /* folded into the slice */ }
                _ => push(instant(e, ts, &args), &mut first),
            }
        }
        // Flow arrows: same id on the s (start) and f (finish) ends.
        for f in &self.flows {
            let id = ((f.trace as u64) << 16) | f.hop as u64;
            push(
                format!(
                    "{{\"name\":\"msg\",\"cat\":\"flow\",\"id\":{id},\"ph\":\"s\",\
                     \"ts\":{},\"pid\":{},\"tid\":0}}",
                    f.send_ts, f.src
                ),
                &mut first,
            );
            push(
                format!(
                    "{{\"name\":\"msg\",\"cat\":\"flow\",\"id\":{id},\"ph\":\"f\",\
                     \"bp\":\"e\",\"ts\":{},\"pid\":{},\"tid\":0}}",
                    f.recv_ts, f.dst
                ),
                &mut first,
            );
        }
        for frag in extra {
            push(frag.clone(), &mut first);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

fn instant(e: &MergedEvent, ts: i64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{},\"tid\":0,\
         \"args\":{args}}}",
        e.kind.name(),
        e.node
    )
}

/// Merge every endpoint's retained events into one aligned timeline.
pub fn merge(per_node: &[Vec<TraceEvent>]) -> MergeReport {
    let all: Vec<TraceEvent> = per_node.iter().flatten().copied().collect();
    let mut clock = ClusterClock::from_events(&all);
    // Pair sends with receives per (trace, hop) on *raw* ticks first. The
    // first surviving event of each kind wins; acceptance-side duplicate
    // suppression guarantees at most one wire-in per crossing, so
    // "exactly one receive" holds whenever both ends survived their rings.
    #[derive(Default)]
    struct Ends {
        send: Option<(u16, u64)>, // node, raw tick
        recv: Option<(u16, u64)>,
    }
    let mut ends: HashMap<(u32, u16), Ends> = HashMap::new();
    for e in &all {
        match e.kind {
            EventKind::SpanSend { trace, hop, .. } => {
                ends.entry((trace, hop))
                    .or_default()
                    .send
                    .get_or_insert((e.node, e.tick));
            }
            EventKind::SpanWireIn { trace, hop, .. } => {
                ends.entry((trace, hop))
                    .or_default()
                    .recv
                    .get_or_insert((e.node, e.tick));
            }
            _ => {}
        }
    }
    // Every paired flow is a happens-before witness; feed them back into
    // the clock so midpoint-estimation error (≤ RTT/2 per link) cannot
    // leave a receive earlier than its send on the merged axis.
    let edges: Vec<(u16, u16, i64)> = ends
        .values()
        .filter_map(|e| match (e.send, e.recv) {
            (Some((a, ts)), Some((b, tr))) if a != b => Some((a, b, tr as i64 - ts as i64)),
            _ => None,
        })
        .collect();
    clock.constrain(&edges);

    let mut events: Vec<MergedEvent> = all
        .iter()
        .map(|e| MergedEvent {
            ts: clock.align(e.node, e.tick),
            node: e.node,
            raw_tick: e.tick,
            kind: e.kind,
        })
        .collect();
    // Shift the whole timeline so it starts at 0 (chrome dislikes
    // negative timestamps).
    let shift = events.iter().map(|e| e.ts).min().unwrap_or(0);
    for e in &mut events {
        e.ts -= shift;
    }
    events.sort_by_key(|e| (e.ts, e.node));

    let mut flows = Vec::new();
    let mut orphan_sends = 0;
    let mut orphan_receives = 0;
    let mut causal_violations = 0;
    for ((trace, hop), e) in ends {
        match (e.send, e.recv) {
            (Some((src, send_raw)), Some((dst, recv_raw))) => {
                if src == dst {
                    continue; // loopback: no cross-endpoint arrow
                }
                let send_ts = clock.align(src, send_raw) - shift;
                let recv_ts = clock.align(dst, recv_raw) - shift;
                if recv_ts < send_ts {
                    // Only reachable when a flow touches an unaligned node
                    // (constrain() skips those edges).
                    causal_violations += 1;
                }
                flows.push(FlowPair {
                    trace,
                    hop,
                    src,
                    dst,
                    send_ts,
                    recv_ts,
                });
            }
            (Some(_), None) => orphan_sends += 1,
            (None, Some(_)) => orphan_receives += 1,
            (None, None) => {}
        }
    }
    flows.sort_by_key(|f| (f.send_ts, f.trace, f.hop));
    MergeReport {
        clock,
        events,
        flows,
        orphan_sends,
        orphan_receives,
        causal_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: u16, tick: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { tick, node, kind }
    }

    /// A full traced crossing from `snd` to `rcv` with offset `off` on the
    /// receiver's clock and one-way delay `d`.
    fn crossing(snd: u16, rcv: u16, trace: u32, t0: u64, off: i64, d: u64) -> Vec<TraceEvent> {
        let a = |t: u64| t;
        let b = |t: u64| (t as i64 + off) as u64;
        vec![
            ev(snd, a(t0), EventKind::SpanSend { trace, hop: 0, dst: rcv }),
            ev(rcv, b(t0 + d), EventKind::SpanWireIn { trace, hop: 0, src: snd }),
            ev(rcv, b(t0 + d), EventKind::SpanAckOut { trace, hop: 0, dst: snd }),
            ev(snd, a(t0 + 2 * d), EventKind::SpanAckIn { trace, hop: 0, peer: rcv }),
            ev(rcv, b(t0 + d + 1), EventKind::SpanHandlerStart { trace, hop: 0, src: snd }),
            ev(rcv, b(t0 + d + 2), EventKind::SpanHandlerEnd { trace, hop: 0 }),
        ]
    }

    #[test]
    fn merge_pairs_flows_and_aligns() {
        let a = crossing(0, 1, 11, 100, 5000, 3);
        let b = crossing(1, 0, 22, 200, -5000, 3); // reverse direction
        let report = merge(&[a, b]);
        assert_eq!(report.flow_pairs(), 2);
        assert_eq!(report.orphan_sends, 0);
        assert_eq!(report.orphan_receives, 0);
        assert_eq!(report.causal_violations, 0, "aligned recv >= send");
        for f in &report.flows {
            assert!(f.recv_ts >= f.send_ts);
            assert_eq!(f.recv_ts - f.send_ts, 3, "one-way delay recovered");
        }
        // Timeline starts at zero.
        assert_eq!(report.events.first().unwrap().ts, 0);
    }

    #[test]
    fn orphans_counted_not_panicked() {
        // A send whose frame was dropped (no wire-in anywhere), and a
        // wire-in whose send was overwritten.
        let evs = vec![
            ev(0, 10, EventKind::SpanSend { trace: 1, hop: 0, dst: 1 }),
            ev(1, 99, EventKind::SpanWireIn { trace: 2, hop: 0, src: 0 }),
        ];
        let report = merge(&[evs]);
        assert_eq!(report.flow_pairs(), 0);
        assert_eq!(report.orphan_sends, 1);
        assert_eq!(report.orphan_receives, 1);
    }

    #[test]
    fn chrome_trace_has_lanes_slices_and_flow_arrows() {
        let report = merge(&[crossing(0, 1, 7, 50, 1000, 2)]);
        let doc = report.chrome_trace();
        assert!(doc.contains("\"process_name\""), "process lanes labeled");
        assert!(doc.contains("\"pid\":0") && doc.contains("\"pid\":1"));
        assert!(doc.contains("\"ph\":\"s\"") && doc.contains("\"ph\":\"f\""));
        assert!(doc.contains("\"ph\":\"X\""), "anchor slices present");
        assert!(doc.contains("\"name\":\"handler\""), "handler span folded");
        // The s and f arrows share an id.
        let id = 7u64 << 16; // hop 0: the low 16 bits stay clear
        assert_eq!(doc.matches(&format!("\"id\":{id}")).count(), 2);
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn collective_spans_render_as_nested_slices() {
        let evs = vec![
            ev(0, 100, EventKind::CollBegin { coll: 3, epoch: 9 }),
            ev(0, 110, EventKind::CollRoundBegin { coll: 3, epoch: 9, round: 0, peer: 1 }),
            ev(0, 150, EventKind::CollRoundEnd { coll: 3, epoch: 9, round: 0 }),
            ev(0, 160, EventKind::CollRoundBegin { coll: 3, epoch: 9, round: 1, peer: 2 }),
            ev(0, 190, EventKind::CollRoundEnd { coll: 3, epoch: 9, round: 1 }),
            ev(0, 200, EventKind::CollEnd { coll: 3, epoch: 9 }),
        ];
        let report = merge(&[evs]);
        let doc = report.chrome_trace();
        assert!(doc.contains("\"name\":\"allreduce\"") && doc.contains("\"dur\":100"));
        assert!(doc.contains("\"name\":\"allreduce r0\"") && doc.contains("\"dur\":40"));
        assert!(doc.contains("\"name\":\"allreduce r1\"") && doc.contains("\"dur\":30"));
        assert!(!doc.contains("coll_end"), "ends folded into slices");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn chrome_trace_with_splices_extra_fragments() {
        let report = merge(&[crossing(0, 1, 7, 50, 0, 2)]);
        let lane = "{\"name\":\"queue_depth\",\"ph\":\"C\",\"ts\":0,\"pid\":100000,\
                    \"tid\":0,\"args\":{\"p50\":3}}"
            .to_string();
        let doc = report.chrome_trace_with(&[lane]);
        assert!(doc.contains("\"pid\":100000"), "extra fragment spliced");
        assert!(doc.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn duplicate_ring_entries_pair_once() {
        // The same (trace, hop) appearing twice (e.g. two endpoints'
        // rings merged twice by a caller) must still pair exactly once.
        let mut evs = crossing(0, 1, 3, 10, 0, 1);
        evs.extend(crossing(0, 1, 3, 10, 0, 1));
        let report = merge(&[evs]);
        assert_eq!(report.flow_pairs(), 1);
    }
}
