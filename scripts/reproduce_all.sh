#!/usr/bin/env bash
# Regenerate every artifact of the reproduction from scratch.
# Usage: scripts/reproduce_all.sh [quick]
#   quick: use 8000-packet streams instead of the paper's 65535.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "quick" ]; then
  export FM_STREAM_COUNT=8000
  echo "(quick mode: FM_STREAM_COUNT=$FM_STREAM_COUNT)"
fi

echo "== tests =="
cargo test --workspace

echo "== figures and tables =="
cargo build --release -p fm-bench
for bin in fig3 fig4 fig7 fig8 fig9 table4 appendix-a headline overload scaling ablation tables; do
  echo "--- $bin"
  ./target/release/$bin | tee "results/$bin.txt"
done

echo "== microbenches =="
cargo bench --workspace

echo "done; outputs in results/ and target/criterion/"
