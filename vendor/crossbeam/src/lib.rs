//! Offline stand-in for `crossbeam`: just the `channel` subset this
//! workspace uses (`unbounded`, `Sender`, `Receiver`, `TryRecvError`),
//! implemented over `std::sync::mpsc`.
//!
//! Performance note: this is the *baseline* wire for the in-memory FM
//! runtime — every send allocates a queue node and crosses a lock, which
//! is exactly the general-purpose-buffering cost the paper's design rules
//! argue against. `fm-core::fabric` replaces it with counter-coordinated
//! SPSC rings; `benches/mem_fabric.rs` and `scripts/bench_gate` measure
//! the difference.

pub mod channel {
    use std::sync::mpsc;

    /// Disconnected-or-empty status for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Errors only when the receiver was dropped; the value rides back.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Returned value from a send to a dropped receiver.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(5).unwrap();
            let tx2 = tx.clone();
            tx2.send(6).unwrap();
            assert_eq!(rx.try_recv(), Ok(5));
            assert_eq!(rx.try_recv(), Ok(6));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop((tx, tx2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_to_dropped_receiver_returns_value() {
            let (tx, rx) = unbounded();
            drop(rx);
            let err = tx.send(9).unwrap_err();
            assert_eq!(err.0, 9);
        }
    }
}
