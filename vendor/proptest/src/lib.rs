//! Offline stand-in for `proptest`.
//!
//! The container cannot reach crates.io, so this crate reimplements the
//! subset of proptest the workspace's property tests use:
//!
//! * the `proptest! { #[test] fn name(x in strategy, ...) { ... } }` macro;
//! * integer range strategies (`0u8..3`, `1usize..=16`), `any::<T>()`,
//!   and `proptest::collection::vec(strategy, size_strategy)`;
//! * `prop_assert!` / `prop_assert_eq!` (with optional format args).
//!
//! Differences from real proptest, on purpose small:
//!
//! * **No shrinking.** On failure the panic message carries the case
//!   number and the seed; rerun with `PROPTEST_SEED=<seed>` to replay the
//!   exact sequence.
//! * Cases per test default to 64 (`PROPTEST_CASES` overrides). Seeds are
//!   derived deterministically from the test name, so runs are
//!   reproducible without any wall-clock or OS entropy.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// SplitMix64 — small, fast, full-period; good enough for test-case
/// generation and fully deterministic.
pub struct TestRng(u64);

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection-free multiply-shift is fine at test scale.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Something that can generate values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    type Value: Debug;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                // span == 0 means the full 2^64 domain; take raw bits.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A collection-size bound: concrete (not generic) so untyped literals
/// like `0..=4` infer `usize`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Full-domain strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generate any value of `T` (implemented for the integer types + bool).
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! any_ints {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// `vec(elements, sizes)` — a vector whose length is drawn from
    /// `sizes` and whose elements are drawn from `elements`.
    pub fn vec<E: Strategy>(elements: E, sizes: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            elements,
            sizes: sizes.into(),
        }
    }

    pub struct VecStrategy<E> {
        elements: E,
        sizes: SizeRange,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let n = self.sizes.draw(rng);
            (0..n).map(|_| self.elements.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{any, collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest,
                    Strategy, TestRng};
    /// Namespace alias so `prop::collection::vec(...)` also works.
    pub use crate as prop;
}

/// FNV-1a over the test name: a stable per-test base seed.
pub fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Drive `case` for the configured number of cases. Panics (with a replay
/// seed) on the first failing case.
pub fn run_cases(name: &str, mut case: impl FnMut(&mut TestRng) -> Result<(), String>) {
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let forced: Option<u64> = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok());
    let base = forced.unwrap_or_else(|| name_seed(name));
    let n = if forced.is_some() { 1 } else { cases };
    for i in 0..n {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(msg) = case(&mut rng) {
            panic!(
                "proptest `{name}` failed on case {i}/{n}: {msg}\n\
                 replay with PROPTEST_SEED={seed}"
            );
        }
    }
}

/// The proptest entry macro: each `#[test]` fn's arguments are drawn from
/// their strategies for every generated case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                    let body = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    body()
                });
            }
        )*
    };
}

/// Like `assert!` but reports through the proptest harness (so the failure
/// message carries the case's replay seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond), file!(), line!(), ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Like `assert_eq!` through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(),
                ::std::format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Like `assert_ne!` through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}` ({}:{})\n  both: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seed_from_u64(7);
        let mut b = TestRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (10usize..=12).generate(&mut rng);
            assert!((10..=12).contains(&w));
            let x = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..200 {
            let v = collection::vec(any::<u16>(), 0usize..=4).generate(&mut rng);
            assert!(v.len() <= 4);
        }
    }

    proptest! {
        /// The macro itself: strategies bind, prop_asserts report.
        #[test]
        fn macro_smoke(a in 0u32..100, b in any::<bool>(), v in collection::vec(0u8..10, 1usize..5)) {
            prop_assert!(a < 100);
            prop_assert_eq!(b, b);
            prop_assert!(!v.is_empty() && v.len() < 5, "len was {}", v.len());
            prop_assert_ne!(v.len(), 0);
        }
    }
}
