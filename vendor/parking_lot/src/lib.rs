//! Offline stand-in for `parking_lot`: the `Mutex`/`RwLock` subset used by
//! this workspace, backed by `std::sync`. Poisoning is swallowed (like
//! parking_lot, a panicked critical section does not poison the lock).

use std::fmt;
use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose guards never surface poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn panicked_section_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock still usable");
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
