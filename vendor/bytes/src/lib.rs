//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! provides the exact API subset the workspace uses (`Bytes`, `BytesMut`,
//! `BufMut`). It is *not* a drop-in for all of `bytes` — but it adds one
//! deliberate improvement for this codebase: [`Bytes`] stores payloads up
//! to [`INLINE_CAP`] bytes **inline** (no heap). One FM frame is at most
//! 24 + 128 + 4 = 156 bytes (header + payload + CRC32 trailer), so every
//! frame-sized buffer — payloads, encoded frames, segmentation fragments —
//! lives entirely on the stack / in ring slots, which is what lets the
//! short-message path run with zero steady-state allocations (see
//! `fm-core::fabric` and `BENCH_fabric.json`).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Largest `Bytes` stored without heap allocation: one FM wire frame
/// (24-byte header + 128-byte payload + 4-byte CRC32 trailer).
pub const INLINE_CAP: usize = 156;

#[derive(Clone)]
enum Repr {
    /// Borrowed from static storage; never allocates, slices for free.
    Static(&'static [u8]),
    /// Small buffer stored in place.
    Inline { len: u8, buf: [u8; INLINE_CAP] },
    /// Shared heap storage with a window; clones/slices bump a refcount.
    Shared {
        data: Arc<Vec<u8>>,
        start: usize,
        end: usize,
    },
}

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Wrap a static slice (no allocation, free slicing).
    pub const fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(s),
        }
    }

    /// Copy a slice. Slices up to [`INLINE_CAP`] bytes are stored inline
    /// and never touch the allocator.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        if src.len() <= INLINE_CAP {
            let mut buf = [0u8; INLINE_CAP];
            buf[..src.len()].copy_from_slice(src);
            Bytes {
                repr: Repr::Inline {
                    len: src.len() as u8,
                    buf,
                },
            }
        } else {
            Bytes {
                repr: Repr::Shared {
                    start: 0,
                    end: src.len(),
                    data: Arc::new(src.to_vec()),
                },
            }
        }
    }

    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Static(s) => s.len(),
            Repr::Inline { len, .. } => *len as usize,
            Repr::Shared { start, end, .. } => end - start,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Shared { data, start, end } => &data[*start..*end],
        }
    }

    /// A sub-window of this buffer. Inline and static buffers slice
    /// without allocating; shared buffers bump the refcount.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice {lo}..{hi} out of range 0..{len}");
        match &self.repr {
            Repr::Static(s) => Bytes::from_static(&s[lo..hi]),
            Repr::Inline { .. } => Bytes::copy_from_slice(&self.as_slice()[lo..hi]),
            Repr::Shared { data, start, .. } => Bytes {
                repr: Repr::Shared {
                    data: data.clone(),
                    start: start + lo,
                    end: start + hi,
                },
            },
        }
    }

    /// Copy into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        if v.len() <= INLINE_CAP {
            Bytes::copy_from_slice(&v)
        } else {
            Bytes {
                repr: Repr::Shared {
                    start: 0,
                    end: v.len(),
                    data: Arc::new(v),
                },
            }
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Write-side buffer primitives (the subset of `bytes::BufMut` used here).
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_slice(&mut self, s: &[u8]);
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        // Frame-sized buffers will freeze to inline Bytes anyway; still
        // reserve so larger builders don't reallocate mid-encode.
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn clear(&mut self) {
        self.buf.clear()
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s)
    }

    /// Convert into an immutable [`Bytes`] (inline if frame-sized).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.buf), f)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v)
    }
    fn put_u16_le(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes())
    }
    fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes())
    }
    fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes())
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s)
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v)
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes())
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes())
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes())
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_roundtrip_and_slice() {
        let b = Bytes::copy_from_slice(b"hello fm");
        assert_eq!(b.len(), 8);
        assert_eq!(&b[..], b"hello fm");
        let s = b.slice(2..5);
        assert_eq!(&s[..], b"llo");
        assert!(matches!(s.repr, Repr::Inline { .. }));
    }

    #[test]
    fn large_buffers_share_storage() {
        let v: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        let b = Bytes::from(v.clone());
        assert!(matches!(b.repr, Repr::Shared { .. }));
        let s = b.slice(100..200);
        assert_eq!(&s[..], &v[100..200]);
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn inline_threshold_is_frame_sized() {
        let exact = Bytes::from(vec![7u8; INLINE_CAP]);
        assert!(matches!(exact.repr, Repr::Inline { .. }));
        let over = Bytes::from(vec![7u8; INLINE_CAP + 1]);
        assert!(matches!(over.repr, Repr::Shared { .. }));
    }

    #[test]
    fn bytes_mut_builds_and_freezes() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u8(1);
        m.put_u16_le(0x0203);
        m.put_u32_le(0x04050607);
        m.extend_from_slice(b"xy");
        assert_eq!(m.len(), 9);
        let b = m.freeze();
        assert_eq!(&b[..], &[1, 3, 2, 7, 6, 5, 4, b'x', b'y']);
    }

    #[test]
    fn equality_across_reprs() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert_eq!(a, *b"abc");
        assert_eq!(a, b"abc");
        assert_eq!(a, vec![b'a', b'b', b'c']);
    }

    #[test]
    fn empty_and_static_never_allocate() {
        let e = Bytes::new();
        assert!(e.is_empty());
        let s = Bytes::from_static(b"static data");
        let sub = s.slice(..6);
        assert!(matches!(sub.repr, Repr::Static(_)));
        assert_eq!(&sub[..], b"static");
    }
}
