//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!`/`criterion_main!`
//! macros — over a simple calibrated wall-clock loop:
//!
//! 1. warm up for `CRITERION_WARMUP_MS` (default 200 ms) to estimate the
//!    per-iteration cost;
//! 2. run batches sized to ~10 ms each for `CRITERION_MEASURE_MS`
//!    (default 1000 ms);
//! 3. report the median batch's ns/iteration plus min/max spread and
//!    throughput when configured.
//!
//! There are no plots, no statistics beyond the median, and no saved
//! baselines — but numbers are stable enough to compare fabrics and catch
//! order-of-magnitude regressions, and the harness runs with zero
//! dependencies.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Units for reported throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark's display name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms),
    )
}

/// The measurement loop driver passed to benchmark closures.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    /// Median ns per iteration, filled by `iter`.
    result_ns: f64,
    result_spread: (f64, f64),
}

impl Bencher {
    /// Time `routine`, keeping the median batch as the result.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and per-iteration cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (self.warmup.as_nanos() as f64 / warm_iters.max(1) as f64).max(0.5);
        // Batches of ~10ms so cheap routines are not swamped by clock reads.
        let batch: u64 = ((10_000_000.0 / est_ns).ceil() as u64).clamp(1, 50_000_000);
        let mut samples: Vec<f64> = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure || samples.len() < 5 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
            if samples.len() >= 2000 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = samples[samples.len() / 2];
        self.result_spread = (samples[0], samples[samples.len() - 1]);
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

fn run_one(
    full_name: &str,
    throughput: Option<Throughput>,
    warmup: Duration,
    measure: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        warmup,
        measure,
        result_ns: f64::NAN,
        result_spread: (f64::NAN, f64::NAN),
    };
    f(&mut b);
    let ns = b.result_ns;
    let (lo, hi) = b.result_spread;
    let mut line = format!(
        "{full_name:<50} time: [{} {} {}]",
        human_ns(lo),
        human_ns(ns),
        human_ns(hi)
    );
    if ns.is_finite() && ns > 0.0 {
        match throughput {
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!(
                    "  thrpt: {}",
                    human_rate(n as f64 * 1e9 / ns, "B")
                ));
            }
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!(
                    "  thrpt: {}",
                    human_rate(n as f64 * 1e9 / ns, "elem")
                ));
            }
            None => {}
        }
    }
    println!("{line}");
}

/// The top-level harness handle.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: env_ms("CRITERION_WARMUP_MS", 200),
            measure: env_ms("CRITERION_MEASURE_MS", 1000),
        }
    }
}

impl Criterion {
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, None, self.warmup, self.measure, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (warmup, measure) = (self.warmup, self.measure);
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            warmup,
            measure,
        }
    }
}

/// A named group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    warmup: Duration,
    measure: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self // sampling is time-driven here; accepted for API compatibility
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.throughput, self.warmup, self.measure, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(
            &full,
            self.throughput,
            self.warmup,
            self.measure,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Bundle bench functions into a group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(20),
            result_ns: f64::NAN,
            result_spread: (f64::NAN, f64::NAN),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert!(b.result_ns.is_finite() && b.result_ns > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("CRITERION_WARMUP_MS", "1");
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("id", 3), &3u32, |b, &v| {
            b.iter(|| black_box(v * 2));
        });
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        c.bench_function("top", |b| b.iter(|| black_box(2 + 2)));
    }
}
