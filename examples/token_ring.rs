//! A token circulating around a ring of nodes — handlers sending from
//! handlers, the Active-Messages-style idiom FM supports without
//! request/reply coupling.
//!
//! ```sh
//! cargo run --release --example token_ring
//! ```

use fm_repro::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const NODES: usize = 6;
const LAPS: u64 = 50;

fn main() {
    let nodes = MemCluster::new(NODES);
    let hops_target = LAPS * NODES as u64;
    let counter = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = nodes
        .into_iter()
        .map(|mut ep| {
            let counter = counter.clone();
            std::thread::spawn(move || {
                let me = ep.node_id();
                let next = NodeId(((me.0 as usize + 1) % NODES) as u16);
                let c = counter.clone();
                // Handler 1 on every node: bump the hop count and forward.
                ep.register_handler_at(HandlerId(1), move |outbox, _src, data| {
                    let hops = u64::from_le_bytes(data.try_into().expect("8 bytes"));
                    c.store(hops, Ordering::SeqCst);
                    if hops < LAPS * NODES as u64 {
                        outbox.send(next, HandlerId(1), (hops + 1).to_le_bytes().to_vec());
                    }
                });
                if me.0 == 0 {
                    ep.send(next, HandlerId(1), &1u64.to_le_bytes());
                }
                while counter.load(Ordering::SeqCst) < hops_target {
                    ep.extract();
                    std::thread::yield_now();
                }
                // Drain trailing acks so every peer can settle.
                for _ in 0..20 {
                    ep.extract();
                    std::thread::yield_now();
                }
                (me, ep.stats())
            })
        })
        .collect();

    let mut stats: Vec<_> = handles.into_iter().map(|h| h.join().expect("node")).collect();
    stats.sort_by_key(|(id, _)| id.0);

    println!("token ring: {NODES} nodes, {LAPS} laps = {hops_target} hops\n");
    for (id, s) in &stats {
        println!(
            "{id}: forwarded {} tokens, delivered {}, acks {}",
            s.sent, s.delivered, s.acks_received
        );
    }
    let total: u64 = stats.iter().map(|(_, s)| s.delivered).sum();
    assert_eq!(total, hops_target, "every hop delivered exactly once");
    println!("\ntoken completed {LAPS} laps; {total} handler invocations total");
}
