//! UDP pair: the real-network fabric at work, two OS processes deep.
//!
//! ```sh
//! cargo run --example udp_pair
//! ```
//!
//! Everything else in this repo exchanges frames through shared memory —
//! even the "lossy" soaks run both endpoints in one address space. This
//! example runs the same FM protocol across a *process* boundary: it
//! re-executes itself as an echo server on an ephemeral UDP port, learns
//! the port from the child's stdout, and then drives a pingpong over
//! kernel loopback sockets with a seeded 2% fault injector composed over
//! the wire (drop, duplicate, corrupt — loopback alone never misbehaves).
//!
//! Discovery works the way the `bench_udp` harness and a real deployment
//! would: the echo child binds with an *empty* roster and learns the
//! driver's address from the hello handshake; only the driver needs a
//! roster entry. At the end the driver prints its telemetry snapshot
//! (the same counters/histograms `observed_cluster` shows for the
//! in-memory fabric), the adaptive RTT estimate the wall-clock timers
//! converged to, and the round-trip percentiles.

use fm_repro::fm_core::{
    EndpointConfig, FaultConfig, HandlerId, NodeId, Roster, TelemetryCounter, UdpConfig,
};
use fm_repro::prelude::*;
use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Round trips driven by the parent.
const ROUNDS: u32 = 2_000;
/// Per-category injected fault rate on the driver's outgoing frames.
const FAULT_RATE: f64 = 0.02;
/// Shared run seed: retransmit jitter derives from (seed, node id), so
/// both processes' backoff schedules are reproducible.
const SEED: u64 = 0x0DDB_A115;

fn config() -> EndpointConfig {
    EndpointConfig {
        window: 32,
        recv_ring: 64,
        // Wall-clock timers tuned for two processes sharing a CPU: the
        // adaptive floor (rto_initial / 4) must outlast a scheduler
        // timeslice or retransmissions fire before the peer ever runs.
        rto_initial: 20_000,
        rto_max: 1 << 17,
        retry_budget: 64,
        adaptive_rto: true,
        seed: SEED,
        ..Default::default()
    }
}

fn wait_established(ep: &mut MemEndpoint, peer: NodeId, deadline: Instant) {
    while ep.udp_established(peer) != Some(true) {
        assert!(Instant::now() < deadline, "handshake wedged");
        ep.extract();
        std::thread::yield_now();
    }
}

/// Echo role (`--echo`): bind an ephemeral port with an empty roster,
/// announce it, and echo every frame until the line goes quiet.
fn run_echo() {
    let mut ep = MemEndpoint::bind_udp(
        NodeId(1),
        UdpConfig::new("127.0.0.1:0".parse().unwrap(), Roster::new(2)),
        config(),
    )
    .expect("bind echo endpoint");
    // Register before pumping the wire: the driver's first ping can land
    // right behind the hello-ack.
    let h = ep.register_handler(|out, src, data| {
        out.send_copy(src, HandlerId(1), data);
    });
    assert_eq!(h, HandlerId(1));
    println!("PORT {}", ep.udp_local_addr().expect("bound socket"));

    let deadline = Instant::now() + Duration::from_secs(60);
    wait_established(&mut ep, NodeId(0), deadline);
    let mut last_in = 0u64;
    let mut last_activity = Instant::now();
    loop {
        ep.extract();
        let now_in = ep.udp_stats().expect("udp wiring").datagrams_in;
        if now_in != last_in {
            last_in = now_in;
            last_activity = Instant::now();
        } else if ep.stats().delivered > 0 && last_activity.elapsed() > Duration::from_millis(800)
        {
            return; // driver hung up; nothing in flight for a while
        }
        assert!(Instant::now() < deadline, "echo side wedged");
        std::thread::yield_now();
    }
}

fn main() {
    if std::env::args().any(|a| a == "--echo") {
        return run_echo();
    }

    // -- spawn the echo process and learn its port ------------------------
    let exe = std::env::current_exe().expect("own path");
    let mut child = Command::new(exe)
        .arg("--echo")
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn echo process");
    let mut port_line = String::new();
    BufReader::new(child.stdout.take().expect("child stdout"))
        .read_line(&mut port_line)
        .expect("read port announcement");
    let addr = port_line
        .trim()
        .strip_prefix("PORT ")
        .expect("PORT line")
        .parse()
        .expect("socket address");
    println!("echo process listening on {addr}");

    // -- bind the driver and make the wire lie ----------------------------
    let mut roster = Roster::new(2);
    roster.set(NodeId(1), addr);
    let mut ep = MemEndpoint::bind_udp(
        NodeId(0),
        UdpConfig::new("127.0.0.1:0".parse().unwrap(), roster),
        config(),
    )
    .expect("bind driver endpoint");
    ep.inject_faults(&FaultConfig::uniform(SEED, FAULT_RATE));

    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    let pongs = Arc::new(AtomicU32::new(0));
    let p = pongs.clone();
    ep.register_handler(move |_, _, _| {
        p.fetch_add(1, Ordering::Relaxed);
    });

    let deadline = Instant::now() + Duration::from_secs(60);
    wait_established(&mut ep, NodeId(1), deadline);

    // -- pingpong ---------------------------------------------------------
    let payload = [0xABu8; 64];
    let mut rtts_us: Vec<f64> = Vec::with_capacity(ROUNDS as usize);
    for round in 0..ROUNDS {
        let t = Instant::now();
        ep.send(NodeId(1), HandlerId(1), &payload);
        while pongs.load(Ordering::Relaxed) <= round {
            assert!(Instant::now() < deadline, "pingpong wedged at round {round}");
            if ep.extract() == 0 {
                std::thread::yield_now(); // the echo process needs the CPU
            }
        }
        rtts_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    // Let trailing acks land so the echo side can quiesce and exit.
    let drain = Instant::now() + Duration::from_millis(300);
    while Instant::now() < drain {
        ep.extract();
        std::thread::yield_now();
    }

    rtts_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| rtts_us[((rtts_us.len() - 1) as f64 * p) as usize];
    println!(
        "\n{ROUNDS} round trips through a {:.0}% lossy wire: p50 {:.1} us  p99 {:.1} us",
        FAULT_RATE * 100.0,
        pct(0.50),
        pct(0.99),
    );

    // -- telemetry: same snapshot observed_cluster prints -----------------
    println!(
        "\ntelemetry snapshot, driver:\n{}\n",
        ep.telemetry().snapshot().to_json()
    );
    let t = ep.telemetry();
    let rtt = ep.rtt();
    let wire = ep.udp_stats().expect("udp wiring");
    println!(
        "recovered from injected faults: {} retransmits ({} timer-driven), \
         {} datagrams out / {} in",
        t.counter(TelemetryCounter::Retransmits),
        t.counter(TelemetryCounter::TimerRetransmits),
        wire.datagrams_out,
        wire.datagrams_in,
    );
    println!(
        "adaptive timers: srtt {} us, rto {} us (wall-clock, Karn-filtered)",
        rtt.srtt().unwrap_or(0),
        rtt.rto(),
    );

    let status = child.wait().expect("reap echo process");
    assert!(status.success(), "echo process failed: {status}");
    println!("echo process exited cleanly");
}
