//! Drive the calibrated 1995 testbed directly: sweep the complete FM layer
//! and print its latency/bandwidth profile — a miniature of the paper's
//! Figure 8 without the full bench harness.
//!
//! ```sh
//! cargo run --release --example simulated_cluster
//! ```

use fm_repro::fm_metrics::Table;
use fm_repro::fm_testbed::{run_pingpong, run_stream, Layer, TestbedConfig};

fn main() {
    let cfg = TestbedConfig::default();
    let mut t = Table::new([
        "packet bytes",
        "one-way latency (us)",
        "bandwidth (MB/s)",
        "ack frames",
        "delivery bursts",
    ])
    .with_title("Fast Messages 1.0 on the simulated SPARCstation/Myrinet testbed");

    for n in [16usize, 32, 64, 128, 256, 512] {
        let lat = run_pingpong(Layer::FullFm, &cfg, n, 50);
        let stream = run_stream(Layer::FullFm, &cfg, n, 10_000);
        t.row([
            n.to_string(),
            format!("{:.2}", lat.as_us_f64()),
            format!("{:.2}", stream.mbs),
            stream.ack_frames.to_string(),
            stream.delivery_bursts.to_string(),
        ]);
    }
    println!("{}", t.render());

    // The ablation story in one line each.
    println!("the same testbed, layer by layer (128 B packets):");
    for layer in Layer::ALL {
        let lat = run_pingpong(layer, &cfg, 128, 50);
        let bw = run_stream(layer, &cfg, 128, 10_000).mbs;
        println!(
            "  {:<44} {:>7.2} us   {:>6.2} MB/s",
            layer.name(),
            lat.as_us_f64(),
            bw
        );
    }
}
