//! A 1-D heat-diffusion stencil on fm-mpi — the kind of tightly-coupled
//! parallel computation the paper argues workstation clusters could not
//! run over TCP/PVM but can over a low-latency layer like FM.
//!
//! ```sh
//! cargo run --release --example stencil
//! ```
//!
//! Each rank owns a slab of the rod and exchanges one-cell halos with its
//! neighbours every timestep (two small messages per step — exactly the
//! short-message traffic FM optimizes for), then the ranks allreduce the
//! total heat to verify conservation.

use fm_repro::fm_mpi::{MpiCluster, ReduceOp, Tag};

const RANKS: usize = 4;
const CELLS_PER_RANK: usize = 64;
const STEPS: usize = 200;
const ALPHA: f64 = 0.25;

const HALO_LEFT: Tag = Tag(1);
const HALO_RIGHT: Tag = Tag(2);

fn main() {
    let comms = MpiCluster::new(RANKS);
    let handles: Vec<_> = comms
        .into_iter()
        .map(|mut comm| {
            std::thread::spawn(move || {
                let me = comm.rank() as usize;
                let n = comm.size();
                // Initial condition: a hot spike in rank 0's first cell.
                let mut u = vec![0.0f64; CELLS_PER_RANK + 2]; // +2 ghost cells
                if me == 0 {
                    u[1] = 1000.0;
                }

                for _step in 0..STEPS {
                    // Halo exchange with neighbours (non-periodic rod).
                    if me + 1 < n {
                        comm.send(
                            (me + 1) as u16,
                            HALO_RIGHT,
                            &u[CELLS_PER_RANK].to_le_bytes(),
                        );
                    }
                    if me > 0 {
                        comm.send((me - 1) as u16, HALO_LEFT, &u[1].to_le_bytes());
                    }
                    if me > 0 {
                        let (_, _, d) = comm.recv(Some((me - 1) as u16), Some(HALO_RIGHT));
                        u[0] = f64::from_le_bytes(d.try_into().expect("8 bytes"));
                    }
                    if me + 1 < n {
                        let (_, _, d) = comm.recv(Some((me + 1) as u16), Some(HALO_LEFT));
                        u[CELLS_PER_RANK + 1] =
                            f64::from_le_bytes(d.try_into().expect("8 bytes"));
                    }
                    // Explicit diffusion update on the interior.
                    let prev = u.clone();
                    for i in 1..=CELLS_PER_RANK {
                        u[i] = prev[i] + ALPHA * (prev[i - 1] - 2.0 * prev[i] + prev[i + 1]);
                    }
                    // Boundary cells at the rod's ends reflect (insulated).
                    if me == 0 {
                        u[1] = prev[1] + ALPHA * (prev[2] - prev[1]);
                    }
                    if me + 1 == n {
                        u[CELLS_PER_RANK] =
                            prev[CELLS_PER_RANK] + ALPHA * (prev[CELLS_PER_RANK - 1] - prev[CELLS_PER_RANK]);
                    }
                }

                let local: f64 = u[1..=CELLS_PER_RANK].iter().sum();
                let total = comm.allreduce(&[local], ReduceOp::Sum)[0];
                let peak = comm.allreduce(
                    &[u[1..=CELLS_PER_RANK].iter().cloned().fold(0.0, f64::max)],
                    ReduceOp::Max,
                )[0];
                comm.barrier();
                (me, local, total, peak, comm.fm_stats())
            })
        })
        .collect();

    let mut results: Vec<_> = handles.into_iter().map(|h| h.join().expect("rank")).collect();
    results.sort_by_key(|r| r.0);

    println!("1-D heat diffusion: {RANKS} ranks x {CELLS_PER_RANK} cells, {STEPS} steps\n");
    for &(me, local, _, _, stats) in &results {
        println!(
            "rank {me}: local heat {local:>9.3}   ({} frames sent, {} delivered)",
            stats.sent, stats.delivered
        );
    }
    let (_, _, total, peak, _) = results[0];
    println!("\nglobal heat  = {total:.6} (conserved: initial spike was 1000)");
    println!("global peak  = {peak:.3}");
    assert!(
        (total - 1000.0).abs() < 1e-6,
        "diffusion must conserve heat"
    );
    println!("heat conservation verified across {RANKS} ranks");
}
