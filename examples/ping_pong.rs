//! Ping-pong on the *real* library, measured the way the paper measures it
//! (Section 4.1): bounce a message back and forth, divide total time by the
//! number of one-way trips.
//!
//! ```sh
//! cargo run --release --example ping_pong
//! ```
//!
//! Two measurements:
//!
//! 1. **software path** — both endpoints driven from one thread, so the
//!    number is the pure per-message cost of this implementation (send +
//!    codec + wire channel + extract + handler + ack), the moral
//!    equivalent of the paper's t0;
//! 2. **two threads** — a real concurrent run; on machines with few cores
//!    this mostly measures the OS scheduler, which is exactly the kind of
//!    overhead 1995 user-level messaging was designed to avoid.
//!
//! The reproduction of the paper's 1995 hardware numbers lives in the
//! simulated testbed (`cargo run -p fm-bench --bin fig8`).

use fm_repro::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    software_path();
    two_threads();
    println!("\n(the paper's SPARCstation testbed: 25 us @ 16 B, 32 us @ 128 B one-way)");
}

/// Single-threaded: the per-message software cost without scheduler noise.
fn software_path() {
    const ROUNDS: u64 = 20_000;
    println!("software path (single thread, {ROUNDS} round trips):");
    for &size in &[16usize, 64, 128] {
        let mut nodes = MemCluster::new(2);
        let mut b = nodes.pop().expect("node 1");
        let mut a = nodes.pop().expect("node 0");
        let echo = b.register_handler(|outbox, src, data| {
            outbox.send(src, HandlerId(1), data.to_vec());
        });
        let got = Arc::new(AtomicU64::new(0));
        let g = got.clone();
        let pong = a.register_handler(move |_, _, _| {
            g.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(pong, HandlerId(1));

        let payload = vec![0x5Au8; size];
        let start = Instant::now();
        for i in 0..ROUNDS {
            a.send(NodeId(1), echo, &payload);
            while b.extract() == 0 {}
            while got.load(Ordering::Relaxed) <= i {
                a.extract();
            }
        }
        let elapsed = start.elapsed();
        println!(
            "  {size:>4} B payload: {:>8.0} ns one-way",
            elapsed.as_nanos() as f64 / (2 * ROUNDS) as f64
        );
    }
}

/// Two OS threads: a genuinely concurrent exchange.
fn two_threads() {
    const ROUNDS: u64 = 300;
    let mut nodes = MemCluster::new(2);
    let mut b = nodes.pop().expect("node 1");
    let mut a = nodes.pop().expect("node 0");
    let echo = b.register_handler(|outbox, src, data| {
        outbox.send(src, HandlerId(1), data.to_vec());
    });
    let got = Arc::new(AtomicU64::new(0));
    let g = got.clone();
    let pong = a.register_handler(move |_, _, _| {
        g.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(pong, HandlerId(1));

    let stop = Arc::new(AtomicU64::new(0));
    let s2 = stop.clone();
    let tb = std::thread::spawn(move || {
        while s2.load(Ordering::Relaxed) == 0 {
            b.extract();
            std::thread::yield_now();
        }
    });

    let start = Instant::now();
    for i in 0..ROUNDS {
        a.send(NodeId(1), echo, &[1u8; 64]);
        while got.load(Ordering::Relaxed) <= i {
            a.extract();
            std::thread::yield_now();
        }
    }
    let elapsed = start.elapsed();
    stop.store(1, Ordering::Relaxed);
    tb.join().expect("echo thread");
    println!(
        "\ntwo threads ({} cores visible): {:>8.0} ns one-way over {ROUNDS} round trips",
        std::thread::available_parallelism().map_or(0, |n| n.get()),
        elapsed.as_nanos() as f64 / (2 * ROUNDS) as f64
    );
}
