//! Quickstart: the three FM 1.0 calls on a two-node in-memory cluster.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! FM's entire interface is `FM_send_4`, `FM_send` and `FM_extract`
//! (paper Table 1). Each message names a *handler* — a function id the
//! receiver registered — and `FM_extract` runs the handlers for whatever
//! has arrived. There is no connection setup, no recv call, no blocking
//! on the receive side.

use fm_repro::prelude::*;

fn main() {
    // Two endpoints wired back-to-back (node 0 and node 1).
    let mut nodes = MemCluster::new(2);
    let mut receiver = nodes.pop().expect("node 1");
    let mut sender = nodes.pop().expect("node 0");

    // The receiver registers a handler; the id is what senders name.
    // (Real FM shipped a function *pointer*; here every node registers the
    // same table, exactly like linking the same binary on every
    // workstation.)
    let print_handler = receiver.register_handler(|_outbox, src, data| {
        println!(
            "handler on node 1: {} bytes from {src}: {:?}",
            data.len(),
            std::str::from_utf8(data).unwrap_or("<binary>")
        );
    });

    // FM_send: up to 128 bytes, fire-and-forget, guaranteed delivery.
    sender.send(NodeId(1), print_handler, b"hello, fast messages");

    // FM_send_4: the four-word special case for tiny control messages.
    sender.send_4(NodeId(1), print_handler, [0xDEAD, 0xBEEF, 42, 7]);

    // FM_extract: the receiver processes everything pending.
    let delivered = receiver.extract();
    println!("extract() delivered {delivered} messages");

    // Acknowledgements flow back and release the sender's window slots.
    sender.extract();
    assert_eq!(sender.outstanding(), 0, "all sends acknowledged");

    let s = sender.stats();
    println!(
        "sender stats: {} sent, {} acks received, window clean",
        s.sent, s.acks_received
    );
}
