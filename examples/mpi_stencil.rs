//! The 1-D heat stencil scaled onto the switch-routed cluster: 64 ranks
//! across a fat tree (11 leaf switches, 4 spines), halo exchanges with
//! neighbours every step, and a topology-aware allreduce checking heat
//! conservation — the `examples/stencil.rs` workload grown from a
//! 4-rank pairwise mesh to the cluster the paper's Section 7 aims FM at.
//!
//! ```sh
//! cargo run --release --example mpi_stencil            # 200 steps
//! cargo run --release --example mpi_stencil -- --smoke # CI-sized
//! ```

use fm_repro::fm_core::SwitchTopology;
use fm_repro::fm_mpi::{MpiCluster, ReduceOp, Tag};

const RANKS: usize = 64;
const CELLS_PER_RANK: usize = 16;
const ALPHA: f64 = 0.25;

const HALO_LEFT: Tag = Tag(1);
const HALO_RIGHT: Tag = Tag(2);

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let steps: usize = if smoke { 10 } else { 200 };

    let topo = SwitchTopology::for_cluster_wide(RANKS);
    println!(
        "mpi_stencil: {RANKS} ranks x {CELLS_PER_RANK} cells over {} switches, {steps} steps",
        topo.switches()
    );

    let comms = MpiCluster::switched_wide(RANKS);
    let handles: Vec<_> = comms
        .into_iter()
        .map(|mut comm| {
            std::thread::spawn(move || {
                let me = comm.rank() as usize;
                let n = comm.size();
                let mut u = vec![0.0f64; CELLS_PER_RANK + 2]; // +2 ghost cells
                if me == 0 {
                    u[1] = 1000.0;
                }

                for _step in 0..steps {
                    // Halo exchange with rank-space neighbours. Adjacent
                    // ranks usually share a leaf switch; at slab borders
                    // the halo crosses a trunk — the traffic mix the
                    // fat-tree wiring is built for.
                    if me + 1 < n {
                        comm.send(
                            (me + 1) as u16,
                            HALO_RIGHT,
                            &u[CELLS_PER_RANK].to_le_bytes(),
                        );
                    }
                    if me > 0 {
                        comm.send((me - 1) as u16, HALO_LEFT, &u[1].to_le_bytes());
                    }
                    if me > 0 {
                        let (_, _, d) = comm.recv(Some((me - 1) as u16), Some(HALO_RIGHT));
                        u[0] = f64::from_le_bytes(d.try_into().expect("8 bytes"));
                    }
                    if me + 1 < n {
                        let (_, _, d) = comm.recv(Some((me + 1) as u16), Some(HALO_LEFT));
                        u[CELLS_PER_RANK + 1] =
                            f64::from_le_bytes(d.try_into().expect("8 bytes"));
                    }
                    let prev = u.clone();
                    for i in 1..=CELLS_PER_RANK {
                        u[i] = prev[i] + ALPHA * (prev[i - 1] - 2.0 * prev[i] + prev[i + 1]);
                    }
                    // Insulated rod ends.
                    if me == 0 {
                        u[1] = prev[1] + ALPHA * (prev[2] - prev[1]);
                    }
                    if me + 1 == n {
                        u[CELLS_PER_RANK] = prev[CELLS_PER_RANK]
                            + ALPHA * (prev[CELLS_PER_RANK - 1] - prev[CELLS_PER_RANK]);
                    }
                }

                let local: f64 = u[1..=CELLS_PER_RANK].iter().sum();
                // Both allreduces ride the spanning tree / recursive
                // doubling over the fat tree (64 is a power of two).
                let total = comm
                    .allreduce(&[local], ReduceOp::Sum)
                    .expect("aligned contributions")[0];
                let peak = comm
                    .allreduce(
                        &[u[1..=CELLS_PER_RANK].iter().cloned().fold(0.0, f64::max)],
                        ReduceOp::Max,
                    )
                    .expect("aligned contributions")[0];
                comm.barrier();
                for _ in 0..10 {
                    comm.progress();
                    std::thread::yield_now();
                }
                (me, local, total, peak, comm.fm_stats())
            })
        })
        .collect();

    let mut results: Vec<_> = handles.into_iter().map(|h| h.join().expect("rank")).collect();
    results.sort_by_key(|r| r.0);

    let (_, _, total, peak, _) = results[0];
    for &(_, _, t, p, _) in &results {
        assert_eq!(t.to_bits(), total.to_bits(), "allreduce must agree bit-exactly");
        assert_eq!(p.to_bits(), peak.to_bits(), "allreduce must agree bit-exactly");
    }
    let sent: u64 = results.iter().map(|r| r.4.sent).sum();
    let retransmitted: u64 = results.iter().map(|r| r.4.retransmitted).sum();
    println!("global heat  = {total:.6} (initial spike was 1000)");
    println!("global peak  = {peak:.3}");
    println!("frames sent  = {sent} ({retransmitted} retransmitted)");
    assert!(
        (total - 1000.0).abs() < 1e-6,
        "diffusion must conserve heat"
    );
    println!("heat conservation verified across {RANKS} ranks and {} switches", topo.switches());
}
