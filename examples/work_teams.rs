//! Communicator splitting and second-tier collectives: six ranks divide
//! into two teams (`comm_split` by color), each team reduces its own
//! partial result, then the team leaders exchange results and broadcast
//! the final answer cluster-wide.
//!
//! ```sh
//! cargo run --release --example work_teams
//! ```

use fm_repro::fm_mpi::{MpiCluster, ReduceOp, Tag};

const RANKS: usize = 6;

fn main() {
    let comms = MpiCluster::new(RANKS);
    let handles: Vec<_> = comms
        .into_iter()
        .map(|mut c| {
            std::thread::spawn(move || {
                let me = c.rank();
                // Teams: evens compute a sum of squares, odds a sum of cubes.
                let color = (me % 2) as u32;
                let team = c.split(color, 0);

                let x = (me as f64) + 1.0;
                let mine = if color == 0 { x * x } else { x * x * x };
                let team_total = team
                    .allreduce(&mut c, &[mine], ReduceOp::Sum)
                    .expect("aligned contributions")[0];

                // Team leaders (group rank 0) swap totals.
                let other_total = if team.rank() == 0 {
                    let peer = if me == team.global(0) && color == 0 { 1 } else { 0 };
                    let got = c.sendrecv(peer, peer, Tag(40), &team_total.to_le_bytes());
                    f64::from_le_bytes(got.try_into().expect("8B"))
                } else {
                    0.0
                };
                // Leaders broadcast the other team's total within their team.
                let other_total = {
                    let bytes = team.bcast(&mut c, 0, &other_total.to_le_bytes());
                    f64::from_le_bytes(bytes.try_into().expect("8B"))
                };

                c.barrier();
                (me, color, team_total, other_total, c.reordered_messages())
            })
        })
        .collect();

    let mut rows: Vec<_> = handles.into_iter().map(|h| h.join().expect("rank")).collect();
    rows.sort_by_key(|r| r.0);

    // Ground truth: evens 1,3,5 -> squares of 1,3,5? No: x = rank+1, so
    // evens have x in {1,3,5} and odds x in {2,4,6}.
    let squares: f64 = [1.0f64, 3.0, 5.0].iter().map(|x| x * x).sum();
    let cubes: f64 = [2.0f64, 4.0, 6.0].iter().map(|x| x * x * x).sum();

    println!("two teams over {RANKS} ranks (evens: sum of squares, odds: sum of cubes)\n");
    for &(me, color, team_total, other_total, reordered) in &rows {
        let (expect_mine, expect_other) = if color == 0 {
            (squares, cubes)
        } else {
            (cubes, squares)
        };
        assert_eq!(team_total, expect_mine, "rank {me} team total");
        assert_eq!(other_total, expect_other, "rank {me} other-team total");
        println!(
            "rank {me} (team {color}): team total {team_total:>6.1}, other team {other_total:>6.1}, reordered msgs {reordered}"
        );
    }
    println!("\nteam totals verified: squares = {squares}, cubes = {cubes}");
}
