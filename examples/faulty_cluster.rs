//! Faulty cluster: the beyond-paper reliability layer at work.
//!
//! ```sh
//! cargo run --example faulty_cluster
//! ```
//!
//! The paper's Myrinet was a reliable network — FM 1.0 could assume the
//! wire never lost or corrupted a packet, so its only recovery mechanism
//! is return-to-sender flow control. This repository adds a reliability
//! layer (CRC32 trailers, per-source sequence windows, retransmission
//! timers, dead-peer detection) and a seeded fault injector to prove it:
//! here we run a two-node cluster over a wire that drops, duplicates,
//! corrupts and delays 5% of frames per category, and every message still
//! arrives exactly once and in order.
//!
//! Act two stalls a peer entirely: sends to it burn the bounded retry
//! budget, fail fast with `SendError::PeerUnreachable`, and the rest of
//! the cluster keeps flowing.

use fm_repro::fm_core::{EndpointConfig, FabricKind, FaultConfig, SendError};
use fm_repro::prelude::*;

/// Messages per direction in the lossy-wire soak.
const MSGS: u32 = 1_000;

fn lossy_wire() {
    println!("== act 1: 5% drop + dup + corrupt + delay per link ==");

    // Tight timers suit the single-threaded drive loop below (each loop
    // iteration is one virtual tick per endpoint); the defaults are sized
    // for free-running threads instead.
    let config = EndpointConfig {
        window: 32,
        recv_ring: 32,
        rto_initial: 64,
        retry_budget: 32,
        ..Default::default()
    };
    // One seed fixes the entire fault schedule: rerunning this example
    // replays byte-identical drops, duplicates, corruptions and delays.
    let faults = FaultConfig::uniform(0xF00D_CAFE, 0.05);
    let mut nodes = MemCluster::with_faulty_fabric(2, config, FabricKind::Ring, faults);
    let mut b = nodes.pop().expect("node 1");
    let mut a = nodes.pop().expect("node 0");

    // The receiver's handler asserts it sees 0, 1, 2, ... with no gaps,
    // repeats or reordering — despite what the injector does below.
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    let received = Arc::new(AtomicU32::new(0));
    let count = |expected: Arc<AtomicU32>| {
        move |_outbox: &mut fm_repro::fm_core::Outbox, _src: NodeId, data: &[u8]| {
            let v = u32::from_le_bytes(data.try_into().expect("4-byte payload"));
            let want = expected.fetch_add(1, Ordering::Relaxed);
            assert_eq!(v, want, "delivery out of order or duplicated");
        }
    };
    // Both nodes register the same table so handler ids line up (like
    // linking the same binary on every workstation); only b's instance
    // runs, since all traffic flows a -> b.
    let ha = a.register_handler(count(Arc::new(AtomicU32::new(0))));
    let hb = b.register_handler(count(received.clone()));
    assert_eq!(ha, hb, "symmetric registration gives symmetric ids");

    // a streams MSGS messages at b; try_send + extract in a round-robin
    // keeps both sides' timers ticking.
    let mut sent = 0u32;
    while sent < MSGS
        || received.load(Ordering::Relaxed) < MSGS
        || !a.is_quiescent()
        || !b.is_quiescent()
    {
        if sent < MSGS && a.try_send(NodeId(1), hb, &sent.to_le_bytes()).is_ok() {
            sent += 1;
        }
        a.extract();
        b.extract();
    }

    let (sa, sb) = (a.stats(), b.stats());
    let inj = a.fault_stats().expect("injector attached");
    println!(
        "  injected : {} dropped, {} duplicated, {} corrupted, {} delayed ({} passed clean)",
        inj.dropped, inj.duplicated, inj.corrupted, inj.delayed, inj.passed
    );
    println!(
        "  recovered: {} timer retransmits, {} duplicates suppressed, {} CRC rejects",
        sa.timer_retransmits, sb.duplicates, sb.corrupt
    );
    println!(
        "  delivered: {}/{MSGS} exactly once, in order",
        received.load(Ordering::Relaxed)
    );
}

fn stalled_peer() {
    println!("== act 2: peer 2 stalls; the cluster degrades gracefully ==");

    let config = EndpointConfig {
        rto_initial: 8, // fail fast for the demo
        retry_budget: 4,
        ..Default::default()
    };
    // Node 2 is blackholed: every frame to or from it vanishes.
    let faults = FaultConfig::new(0xDEAD).stall(NodeId(2));
    let mut nodes = MemCluster::with_faulty_fabric(3, config, FabricKind::Ring, faults);
    let mut dead = nodes.pop().expect("node 2 (stalled)");
    let mut live = nodes.pop().expect("node 1");
    let mut origin = nodes.pop().expect("node 0");

    let h = origin.register_handler(|_, _, _| {});
    assert_eq!(h, live.register_handler(|_, _, _| {}));
    assert_eq!(h, dead.register_handler(|_, _, _| {}));

    // Sends to the stalled node are accepted until the retransmission
    // timers burn the retry budget and declare it dead...
    let _ = origin.try_send(NodeId(2), h, b"anyone home?");
    let verdict = loop {
        origin.extract();
        live.extract();
        match origin.try_send(NodeId(2), h, b"hello?") {
            Ok(()) | Err(SendError::WouldBlock) => continue,
            Err(e) => break e,
        }
    };
    println!("  send to stalled peer: {verdict}");
    assert!(matches!(verdict, SendError::PeerUnreachable(NodeId(2))));
    println!(
        "  frames purged for the dead peer: {}",
        origin.stats().unreachable_drops
    );

    // ...while traffic to the live peer is unaffected:
    origin.send(NodeId(1), h, b"still flowing");
    while live.extract() == 0 {}
    println!("  live peer still receiving: ok");

    // Operators can re-arm a link once the peer recovers.
    origin.revive_peer(NodeId(2));
    assert!(origin.try_send(NodeId(2), h, b"welcome back").is_ok());
    println!("  after revive_peer: sends accepted again");
}

fn main() {
    lossy_wire();
    stalled_peer();
}
