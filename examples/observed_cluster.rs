//! Observed cluster: the telemetry subsystem at work.
//!
//! ```sh
//! cargo run --example observed_cluster
//! ```
//!
//! Every endpoint carries an `fm_telemetry::Telemetry` handle: lock-free
//! counters for each protocol event (sends, bounces, retransmits,
//! re-acks, CRC rejects, dead peers...), log-bucketed latency histograms
//! (send→ack RTT, handler service time, poll batch occupancy), and a
//! bounded ring of typed trace events. This example runs a lossy two-node
//! exchange, prints the JSON snapshot of both endpoints, and exports the
//! sender's event ring as `observed_trace.json` — load it at
//! `chrome://tracing` (or <https://ui.perfetto.dev>) to scrub through the
//! protocol's life frame by frame.
//!
//! Build with `--features fm-core/telemetry-off` and the same program
//! still runs; every counter reads zero and the trace is empty, because
//! the instrumentation compiles to no-ops.

use fm_repro::fm_core::{EndpointConfig, FabricKind, FaultConfig, TelemetryCounter};
use fm_repro::prelude::*;

/// Messages pushed through the lossy wire.
const MSGS: u32 = 500;

fn main() {
    // Tight timers for the single-threaded drive loop, and a lossy wire
    // so the telemetry has retransmissions and CRC rejects to count.
    let config = EndpointConfig {
        window: 32,
        recv_ring: 32,
        rto_initial: 64,
        retry_budget: 32,
        ..Default::default()
    };
    let faults = FaultConfig::uniform(0x0B5E_87ED, 0.05);
    let mut nodes = MemCluster::with_faulty_fabric(2, config, FabricKind::Ring, faults);
    let mut b = nodes.pop().expect("node 1");
    let mut a = nodes.pop().expect("node 0");

    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    let received = Arc::new(AtomicU32::new(0));
    let r2 = received.clone();
    let ha = a.register_handler(|_, _, _| {});
    let hb = b.register_handler(move |_, _, _| {
        r2.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(ha, hb, "symmetric registration gives symmetric ids");

    let mut sent = 0u32;
    while sent < MSGS
        || received.load(Ordering::Relaxed) < MSGS
        || !a.is_quiescent()
        || !b.is_quiescent()
    {
        if sent < MSGS && a.try_send(NodeId(1), hb, &sent.to_le_bytes()).is_ok() {
            sent += 1;
        }
        a.extract();
        b.extract();
    }
    println!(
        "delivered {}/{MSGS} through a 5% lossy wire\n",
        received.load(Ordering::Relaxed)
    );

    // -- counters + histograms: one JSON snapshot per endpoint ------------
    for (name, ep) in [("node 0 (sender)", &a), ("node 1 (receiver)", &b)] {
        println!("telemetry snapshot, {name}:\n{}\n", ep.telemetry().snapshot().to_json());
    }
    let t = a.telemetry();
    println!(
        "sender recovered from loss: {} retransmits ({} timer-driven), {} re-acks seen by peer",
        t.counter(TelemetryCounter::Retransmits),
        t.counter(TelemetryCounter::TimerRetransmits),
        b.telemetry().counter(TelemetryCounter::ReAcks),
    );

    // -- event ring: chrome://tracing export ------------------------------
    let trace = t.chrome_trace();
    let events = t.events().len();
    std::fs::write("observed_trace.json", &trace).expect("write observed_trace.json");
    println!(
        "wrote observed_trace.json ({events} events, {} recorded in total) — \
         open it at chrome://tracing",
        t.events_recorded()
    );
}
