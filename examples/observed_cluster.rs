//! Observed cluster: the telemetry subsystem at work.
//!
//! ```sh
//! cargo run --example observed_cluster
//! ```
//!
//! Every endpoint carries an `fm_telemetry::Telemetry` handle: lock-free
//! counters for each protocol event (sends, bounces, retransmits,
//! re-acks, CRC rejects, dead peers...), log-bucketed latency histograms
//! (send→ack RTT, handler service time, poll batch occupancy), and a
//! bounded ring of typed trace events. This example runs a lossy two-node
//! exchange, prints the JSON snapshot of both endpoints, and exports the
//! sender's event ring as `observed_trace.json` — load it at
//! `chrome://tracing` (or <https://ui.perfetto.dev>) to scrub through the
//! protocol's life frame by frame.
//!
//! It then feeds both endpoints to a [`MetricsAggregator`] and dumps the
//! *merged* cluster view: every ring clock-aligned onto one timeline
//! (`observed_merged.json`, one process lane per endpoint with flow
//! arrows tying each traced send to its receive) plus a Prometheus text
//! scrape (`observed_metrics.prom`). For a bigger version of the same
//! pipeline — four endpoints, multi-hop causal chains — see the
//! `trace_merge` binary in `fm-bench`.
//!
//! Build with `--features fm-core/telemetry-off` and the same program
//! still runs; every counter reads zero and the trace is empty, because
//! the instrumentation compiles to no-ops.

use fm_repro::fm_core::{EndpointConfig, FabricKind, FaultConfig, TelemetryCounter};
use fm_repro::fm_telemetry::MetricsAggregator;
use fm_repro::prelude::*;

/// Messages pushed through the lossy wire.
const MSGS: u32 = 500;

fn main() {
    // Tight timers for the single-threaded drive loop, and a lossy wire
    // so the telemetry has retransmissions and CRC rejects to count.
    let config = EndpointConfig {
        window: 32,
        recv_ring: 32,
        rto_initial: 64,
        retry_budget: 32,
        // Sample 1 in 8 sends for causal tracing so the merged view has a
        // healthy population of flow arrows (the production default, 64,
        // would trace only ~8 of the 500 messages here).
        trace_one_in: 8,
        ..Default::default()
    };
    let faults = FaultConfig::uniform(0x0B5E_87ED, 0.05);
    let mut nodes = MemCluster::with_faulty_fabric(2, config, FabricKind::Ring, faults);
    let mut b = nodes.pop().expect("node 1");
    let mut a = nodes.pop().expect("node 0");

    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    let received = Arc::new(AtomicU32::new(0));
    let r2 = received.clone();
    let ha = a.register_handler(|_, _, _| {});
    let hb = b.register_handler(move |_, _, _| {
        r2.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(ha, hb, "symmetric registration gives symmetric ids");

    let mut sent = 0u32;
    while sent < MSGS
        || received.load(Ordering::Relaxed) < MSGS
        || !a.is_quiescent()
        || !b.is_quiescent()
    {
        if sent < MSGS && a.try_send(NodeId(1), hb, &sent.to_le_bytes()).is_ok() {
            sent += 1;
        }
        a.extract();
        b.extract();
    }
    println!(
        "delivered {}/{MSGS} through a 5% lossy wire\n",
        received.load(Ordering::Relaxed)
    );

    // -- counters + histograms: one JSON snapshot per endpoint ------------
    for (name, ep) in [("node 0 (sender)", &a), ("node 1 (receiver)", &b)] {
        println!("telemetry snapshot, {name}:\n{}\n", ep.telemetry().snapshot().to_json());
    }
    let t = a.telemetry();
    println!(
        "sender recovered from loss: {} retransmits ({} timer-driven), {} re-acks seen by peer",
        t.counter(TelemetryCounter::Retransmits),
        t.counter(TelemetryCounter::TimerRetransmits),
        b.telemetry().counter(TelemetryCounter::ReAcks),
    );

    // -- event ring: chrome://tracing export ------------------------------
    let trace = t.chrome_trace();
    let events = t.events().len();
    std::fs::write("observed_trace.json", &trace).expect("write observed_trace.json");
    println!(
        "wrote observed_trace.json ({events} events, {} recorded in total) — \
         open it at chrome://tracing",
        t.events_recorded()
    );

    // -- merged cluster view: aggregate + clock-align both endpoints ------
    let mut agg = MetricsAggregator::new();
    agg.register(a.telemetry().clone());
    agg.register(b.telemetry().clone());
    agg.tick(1); // one scrape: the delta baseline for the Prometheus export
    let report = agg.merged();
    std::fs::write("observed_merged.json", report.chrome_trace())
        .expect("write observed_merged.json");
    std::fs::write("observed_metrics.prom", agg.prometheus())
        .expect("write observed_metrics.prom");
    println!(
        "\nmerged cluster timeline: {} events, {} flow pairs \
         ({} orphan sends, {} orphan receives, {} causal violations)",
        report.events.len(),
        report.flow_pairs(),
        report.orphan_sends,
        report.orphan_receives,
        report.causal_violations,
    );
    println!(
        "wrote observed_merged.json (one lane per endpoint, flow arrows \
         between them) and observed_metrics.prom (Prometheus text format)"
    );
}
