//! Bulk transfer over the FM byte-stream layer (the paper's TCP-over-FM
//! direction): node 0 streams a "file" to node 1 over one port while a
//! record-oriented control conversation runs on another — two streams
//! multiplexed over one FM endpoint pair.
//!
//! ```sh
//! cargo run --release --example file_transfer
//! ```

use fm_repro::fm_core::stream::StreamMux;
use fm_repro::prelude::*;
use std::time::Instant;

const FILE_BYTES: usize = 2 * 1024 * 1024;
const DATA_PORT: u16 = 20;
const CTRL_PORT: u16 = 21;

fn main() {
    let mut nodes = MemCluster::new(2);
    let mut receiver_ep = nodes.pop().expect("node 1");
    let mut sender_ep = nodes.pop().expect("node 0");
    let sender_mux = StreamMux::attach(&mut sender_ep);
    let receiver_mux = StreamMux::attach(&mut receiver_ep);

    // The "file": pseudo-random but reproducible bytes.
    let file: Vec<u8> = {
        let mut rng = fm_repro::fm_des::rng::Xoshiro256::seed_from_u64(2026);
        let mut buf = vec![0u8; FILE_BYTES];
        rng.fill_bytes(&mut buf);
        buf
    };
    let checksum: u64 = file.iter().map(|&b| b as u64).sum();

    // Receiver thread: reads the file, then reports its checksum on the
    // control stream.
    let receiver = std::thread::spawn(move || {
        let mut data_rx = receiver_mux.open(NodeId(0), DATA_PORT);
        let mut ctrl_tx = receiver_mux.open(NodeId(0), CTRL_PORT);
        let mut got = Vec::with_capacity(FILE_BYTES);
        data_rx.read_to_end(&mut receiver_ep, &mut got);
        let sum: u64 = got.iter().map(|&b| b as u64).sum();
        ctrl_tx.write_record(&mut receiver_ep, &sum.to_le_bytes());
        ctrl_tx.finish(&mut receiver_ep);
        // Drain trailing acks.
        for _ in 0..20 {
            receiver_ep.extract();
            std::thread::yield_now();
        }
        (got.len(), data_rx.reordered_chunks())
    });

    // Sender: stream the file, then await the checksum report.
    let mut data_tx = sender_mux.open(NodeId(1), DATA_PORT);
    let mut ctrl_rx = sender_mux.open(NodeId(1), CTRL_PORT);
    let start = Instant::now();
    data_tx.write(&mut sender_ep, &file);
    data_tx.finish(&mut sender_ep);
    let report = ctrl_rx
        .read_record(&mut sender_ep)
        .expect("checksum report");
    let elapsed = start.elapsed();

    let (bytes, reordered) = receiver.join().expect("receiver");
    let remote_sum = u64::from_le_bytes(report[..8].try_into().expect("8B"));
    assert_eq!(bytes, FILE_BYTES);
    assert_eq!(remote_sum, checksum, "checksums must agree");

    let mbs = FILE_BYTES as f64 / elapsed.as_secs_f64() / (1 << 20) as f64;
    println!("transferred {FILE_BYTES} bytes in {:.1} ms = {mbs:.1} MB/s", elapsed.as_secs_f64() * 1e3);
    println!("checksum verified remotely: {checksum:#018x}");
    println!("chunks that arrived out of order and were resequenced: {reordered}");
    let s = sender_ep.stats();
    println!(
        "FM frames under the hood: {} sent ({} retransmitted after bounces)",
        s.sent, s.retransmitted
    );
}
